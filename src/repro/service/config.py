"""Serving-tier configuration.

:class:`ServiceConfig` mirrors the conventions of
:class:`~repro.engine.config.EngineConfig`: one frozen dataclass carries every
knob of the serving tier, validates itself in ``__post_init__`` with
:class:`~repro.exceptions.ConstructionError`, and round-trips through
``as_dict``/``from_dict``.  On top of that it is **env-driven** (the service
idiom): :meth:`ServiceConfig.from_env` reads ``REPRO_SERVE_*`` environment
variables as defaults, with explicit keyword arguments (the CLI's flags)
taking precedence, so a deployment can be reconfigured without touching the
command line.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, fields

from ..exceptions import ConstructionError

#: Prefix of the environment variables :meth:`ServiceConfig.from_env` reads.
ENV_PREFIX = "REPRO_SERVE_"

#: Config fields that may be configured through the environment, mapped to
#: the parser applied to the raw string value.
_ENV_FIELDS: dict[str, type | object] = {
    "host": str,
    "port": int,
    "batch_window_ms": float,
    "max_batch_size": int,
    "max_queue_depth": int,
    "default_deadline": float,
    "worker_threads": int,
    "drain_timeout": float,
}


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving tier (:mod:`repro.service`).

    Parameters
    ----------
    host:
        Interface the HTTP server binds (default loopback).
    port:
        TCP port to listen on.  ``0`` asks the OS for a free port — the
        bound port is reported by :attr:`TrajectoryService.port` (used by
        tests and benchmarks).
    batch_window_ms:
        Length of one micro-batch window in milliseconds.  The first request
        to arrive opens a window; every request submitted before it closes
        joins the same engine ``run_many`` batch.  ``0`` closes the window
        as soon as the event loop drains the submissions already queued on
        it (coalescing then only merges genuinely simultaneous arrivals).
    max_batch_size:
        Requests per micro-batch; a window closes early once it holds this
        many.  ``1`` disables coalescing (every request is its own engine
        batch) — the benchmark's control configuration.
    max_queue_depth:
        Admission bound on requests inside the service (waiting in the open
        window plus executing on worker threads).  A request that would
        exceed it is shed immediately with
        :class:`~repro.exceptions.ServiceOverloadError` instead of queuing
        unboundedly.
    default_deadline:
        Per-request deadline in **seconds**, applied when a request does not
        carry its own ``deadline_ms``.  A request whose deadline would
        expire before the current window can close is shed immediately with
        :class:`~repro.exceptions.DeadlineExceededError`; one whose deadline
        lapses while waiting in the window is shed at dispatch.  ``None``
        (default) disables deadline enforcement.
    worker_threads:
        Threads executing engine batches.  Each closed window runs as one
        ``engine.run_many`` call on one of these threads, so the asyncio
        event loop never blocks on index work; ``>1`` lets a new window
        execute while the previous one is still running (the engine's
        result cache is thread-safe for exactly this).
    drain_timeout:
        Seconds the graceful shutdown waits for in-flight batches to finish
        before giving up on them.
    """

    host: str = "127.0.0.1"
    port: int = 8123
    batch_window_ms: float = 5.0
    max_batch_size: int = 64
    max_queue_depth: int = 1024
    default_deadline: float | None = None
    worker_threads: int = 2
    drain_timeout: float = 10.0

    def __post_init__(self) -> None:
        if not self.host or not str(self.host).strip():
            raise ConstructionError("the service host must be a non-empty string")
        if not 0 <= self.port <= 65535:
            raise ConstructionError(
                f"port must be in [0, 65535] (0 = ephemeral), got {self.port}"
            )
        if self.batch_window_ms < 0:
            raise ConstructionError(
                f"batch_window_ms must be non-negative, got {self.batch_window_ms}"
            )
        if self.max_batch_size < 1:
            raise ConstructionError(
                f"max_batch_size must be at least 1, got {self.max_batch_size}"
            )
        if self.max_queue_depth < 1:
            raise ConstructionError(
                f"max_queue_depth must be at least 1, got {self.max_queue_depth}"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ConstructionError(
                f"default_deadline must be positive when given, got {self.default_deadline}"
            )
        if self.worker_threads < 1:
            raise ConstructionError(
                f"worker_threads must be at least 1, got {self.worker_threads}"
            )
        if self.drain_timeout < 0:
            raise ConstructionError(
                f"drain_timeout must be non-negative, got {self.drain_timeout}"
            )

    @classmethod
    def from_env(cls, **overrides: object) -> "ServiceConfig":
        """Build a config from ``REPRO_SERVE_*`` env vars plus overrides.

        Precedence: explicit keyword arguments (pass ``None`` to mean "not
        given") > environment variables > dataclass defaults.  Environment
        values are parsed with the field's type; a malformed value raises
        :class:`~repro.exceptions.ConstructionError` naming the variable.
        """
        values: dict[str, object] = {}
        for name, parser in _ENV_FIELDS.items():
            variable = ENV_PREFIX + name.upper()
            raw = os.environ.get(variable)
            if raw is None or not raw.strip():
                continue
            try:
                values[name] = parser(raw)  # type: ignore[operator]
            except ValueError as error:
                raise ConstructionError(
                    f"malformed {variable}={raw!r}: {error}"
                ) from error
        for name, value in overrides.items():
            if value is not None:
                values[name] = value
        return cls(**values)  # type: ignore[arg-type]

    def as_dict(self) -> dict[str, object]:
        """JSON-safe representation (echoed by ``/health`` and ``/stats``)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ServiceConfig":
        """Rebuild a config from :meth:`as_dict` output (unknown keys rejected)."""
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConstructionError(f"unknown ServiceConfig fields: {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]


__all__ = ["ENV_PREFIX", "ServiceConfig"]
