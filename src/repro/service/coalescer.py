"""Micro-batch coalescing front-end over one engine.

:class:`MicroBatchCoalescer` is the asyncio heart of the serving tier: many
concurrent small requests become few large ``engine.run_many`` batches.

* **Windows.**  The first :meth:`submit` opens a micro-batch window that
  closes after ``ServiceConfig.batch_window_ms`` (or early, once it holds
  ``max_batch_size`` requests).  Every request arriving while the window is
  open joins the same batch, so the engine's optimize stage — dedupe plus
  (type x capability) grouping — turns N client round-trips into one
  vectorized pass.  When the window closes, the whole batch runs as **one**
  ``engine.run_many`` call on a worker thread (the event loop never blocks
  on index work) and each request's future is resolved from the batch
  results.  Answers are bit-identical to direct ``run`` calls — including
  ``degraded``/``failed_shards`` flags — because the batch path *is* the
  engine's ordinary pipeline.

* **Admission control.**  A request that would push the service past
  ``max_queue_depth`` (waiting + executing) is shed immediately with the
  canonical :class:`~repro.exceptions.ServiceOverloadError`; one whose
  deadline would expire before the open window can close is shed with
  :class:`~repro.exceptions.DeadlineExceededError` (and a deadline that
  lapses while waiting in the window sheds at dispatch).  Nothing is ever
  queued unboundedly, and every shed increments a per-reason counter
  (``queue_full`` / ``deadline`` / ``shutdown``) surfaced by :meth:`stats`.

* **Failure isolation.**  ``run_many`` plans the whole batch up front, so
  one malformed query (unknown segment, bad window) would fail every
  coalesced neighbour; on a batch-level error the coalescer falls back to
  per-request ``run`` calls on the same worker thread, so each request gets
  its own answer or its own canonical error.

* **Graceful drain.**  :meth:`aclose` stops admission (new submits shed as
  retriable ``shutdown``), shed the requests still waiting in the open
  window with the same retriable status, and waits up to ``drain_timeout``
  for in-flight batches to finish — their clients get real answers.

All mutable state lives on the event loop thread: :meth:`submit` runs on the
loop, window flushes are loop callbacks, and batch completions re-enter the
loop via future callbacks.  Only ``engine.run_many`` itself executes on the
worker threads — which is why ``worker_threads > 1`` requires the engine's
result cache to be thread-safe (it is; see
:class:`~repro.engine.executor.ResultCache`).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from ..exceptions import DeadlineExceededError, ServiceOverloadError
from ..engine.queries import EngineQuery, EngineResult
from .config import ServiceConfig


class _PendingRequest:
    """One submitted query waiting in the current micro-batch window."""

    __slots__ = ("query", "future", "deadline")

    def __init__(
        self,
        query: EngineQuery,
        future: "asyncio.Future[EngineResult]",
        deadline: float | None,
    ):
        self.query = query
        self.future = future
        self.deadline = deadline  # absolute loop time, None = no deadline


class MicroBatchCoalescer:
    """Coalesce concurrent typed queries into micro-batched ``run_many`` calls.

    One coalescer fronts one engine (either engine class).  Use it from
    asyncio code::

        coalescer = MicroBatchCoalescer(engine, ServiceConfig())
        result = await coalescer.submit(CountQuery(["e1", "e2"]))

    and close it with :meth:`aclose` when done.  Not thread-safe by design:
    every call must come from the event loop that first used it (the HTTP
    server guarantees this; tests use ``asyncio.run``).
    """

    def __init__(self, engine, config: ServiceConfig | None = None):
        self._engine = engine
        self._config = config or ServiceConfig()
        self._pending: list[_PendingRequest] = []
        self._window_handle: asyncio.TimerHandle | None = None
        self._window_closes_at: float | None = None
        self._in_flight = 0
        self._closing = False
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.worker_threads,
            thread_name_prefix="repro-serve",
        )
        # Counters (read by stats(); all mutated on the event loop thread).
        self._submitted = 0
        self._served = 0
        self._failed = 0
        self._batches = 0
        self._executed = 0
        self._coalesced = 0
        self._largest_batch = 0
        self._shed: dict[str, int] = {"queue_full": 0, "deadline": 0, "shutdown": 0}

    @property
    def config(self) -> ServiceConfig:
        """The service configuration this coalescer enforces."""
        return self._config

    @property
    def engine(self):
        """The engine every micro-batch executes against."""
        return self._engine

    @property
    def queue_depth(self) -> int:
        """Requests currently inside the service (waiting + executing)."""
        return len(self._pending) + self._in_flight

    @property
    def draining(self) -> bool:
        """True once :meth:`aclose` has started; new submits are shed."""
        return self._closing

    # ------------------------------------------------------------------ #
    # submission (admission control lives here)
    # ------------------------------------------------------------------ #
    async def submit(
        self, query: EngineQuery, timeout: float | None = None
    ) -> EngineResult:
        """Join the current micro-batch window and await the answer.

        ``timeout`` is this request's deadline in seconds from now
        (``None`` falls back to the config's ``default_deadline``).  Raises
        :class:`~repro.exceptions.ServiceOverloadError` /
        :class:`~repro.exceptions.DeadlineExceededError` when admission
        control sheds the request, and whatever canonical error the engine
        raises for the query itself otherwise.
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        if timeout is None:
            timeout = self._config.default_deadline
        deadline = None if timeout is None else now + timeout
        if self._closing:
            self._shed["shutdown"] += 1
            raise ServiceOverloadError("shutdown", "service is draining; retry later")
        if self.queue_depth >= self._config.max_queue_depth:
            self._shed["queue_full"] += 1
            raise ServiceOverloadError(
                "queue_full",
                f"queue depth {self.queue_depth} at max_queue_depth="
                f"{self._config.max_queue_depth}; retry later",
            )
        window_closes_at = (
            self._window_closes_at
            if self._pending
            else now + self._config.batch_window_ms / 1000.0
        )
        if deadline is not None and deadline < window_closes_at:
            self._shed["deadline"] += 1
            raise DeadlineExceededError(
                "deadline expires before the current micro-batch window closes"
            )
        self._submitted += 1
        future: "asyncio.Future[EngineResult]" = loop.create_future()
        self._pending.append(_PendingRequest(query, future, deadline))
        if len(self._pending) == 1:
            self._window_closes_at = window_closes_at
            self._window_handle = loop.call_later(
                self._config.batch_window_ms / 1000.0, self._flush
            )
        if len(self._pending) >= self._config.max_batch_size:
            self._flush()
        return await future

    # ------------------------------------------------------------------ #
    # window flush and batch execution
    # ------------------------------------------------------------------ #
    def _flush(self) -> None:
        """Close the open window and dispatch its batch to a worker thread."""
        if self._window_handle is not None:
            self._window_handle.cancel()
            self._window_handle = None
        self._window_closes_at = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        loop = asyncio.get_event_loop()
        now = loop.time()
        ready: list[_PendingRequest] = []
        for request in batch:
            if request.future.done():  # client gave up (cancelled) while queued
                continue
            if request.deadline is not None and request.deadline <= now:
                self._shed["deadline"] += 1
                request.future.set_exception(
                    DeadlineExceededError(
                        "request deadline expired while waiting in the micro-batch window"
                    )
                )
                continue
            ready.append(request)
        if not ready:
            return
        self._in_flight += len(ready)
        self._batches += 1
        self._executed += len(ready)
        if len(ready) > 1:
            self._coalesced += len(ready)
        self._largest_batch = max(self._largest_batch, len(ready))
        task = loop.run_in_executor(
            self._executor, self._run_batch, [request.query for request in ready]
        )
        task.add_done_callback(lambda done: self._resolve(ready, done))

    def _run_batch(
        self, queries: Sequence[EngineQuery]
    ) -> list[tuple[str, object]]:
        """Execute one micro-batch on a worker thread.

        Returns one ``("ok", result)`` / ``("error", exception)`` outcome per
        query.  The happy path is a single ``run_many``; if the batch-level
        call raises (planning rejects the whole batch on the first invalid
        query), each query re-runs individually so one bad request cannot
        fail its coalesced neighbours.
        """
        try:
            results = self._engine.run_many(list(queries))
            return [("ok", result) for result in results]
        except Exception:
            outcomes: list[tuple[str, object]] = []
            for query in queries:
                try:
                    outcomes.append(("ok", self._engine.run(query)))
                except Exception as error:
                    outcomes.append(("error", error))
            return outcomes

    def _resolve(
        self, ready: list[_PendingRequest], done: "asyncio.Future"
    ) -> None:
        """Resolve per-request futures from a finished batch (loop thread)."""
        self._in_flight -= len(ready)
        try:
            outcomes = done.result()
        except Exception as error:  # executor torn down mid-batch
            for request in ready:
                if not request.future.done():
                    self._failed += 1
                    request.future.set_exception(error)
            return
        for request, (status, payload) in zip(ready, outcomes):
            if request.future.done():
                continue
            if status == "ok":
                self._served += 1
                request.future.set_result(payload)
            else:
                self._failed += 1
                request.future.set_exception(payload)

    # ------------------------------------------------------------------ #
    # observability and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, object]:
        """Service counters: load shedding, coalescing effectiveness, depth.

        ``coalesced`` counts requests that shared a batch with at least one
        other; ``mean_batch_size`` is executed requests over engine batches
        — the coalescing ratio the benchmark tracks.
        """
        shed = dict(self._shed)
        return {
            "submitted": self._submitted,
            "served": self._served,
            "failed": self._failed,
            "shed": shed,
            "shed_total": sum(shed.values()),
            "batches": self._batches,
            "executed": self._executed,
            "coalesced": self._coalesced,
            "largest_batch": self._largest_batch,
            "mean_batch_size": (
                self._executed / self._batches if self._batches else 0.0
            ),
            "queue_depth": self.queue_depth,
            "in_flight": self._in_flight,
            "draining": self._closing,
        }

    async def aclose(self) -> None:
        """Graceful drain: shed the queued, finish the in-flight, shut down.

        Requests still waiting in the open window are shed with a
        *retriable* :class:`~repro.exceptions.ServiceOverloadError`
        (``reason="shutdown"``) — they never reached the engine, so a client
        can safely resubmit elsewhere.  Batches already executing finish and
        resolve their futures normally, waited on for up to
        ``drain_timeout`` seconds.
        """
        if self._closing:
            return
        self._closing = True
        if self._window_handle is not None:
            self._window_handle.cancel()
            self._window_handle = None
        self._window_closes_at = None
        queued, self._pending = self._pending, []
        for request in queued:
            if not request.future.done():
                self._shed["shutdown"] += 1
                request.future.set_exception(
                    ServiceOverloadError(
                        "shutdown", "service shut down before execution; retry"
                    )
                )
        loop = asyncio.get_running_loop()
        drain_deadline = loop.time() + self._config.drain_timeout
        while self._in_flight and loop.time() < drain_deadline:
            await asyncio.sleep(0.005)
        self._executor.shutdown(wait=False)


__all__ = ["MicroBatchCoalescer"]
