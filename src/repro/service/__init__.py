"""Serving tier: async front-end with micro-batch coalescing.

The sub-package turns one engine (either
:class:`~repro.engine.TrajectoryEngine` or
:class:`~repro.engine.ShardedTrajectoryEngine`) into a network service:

* :class:`~repro.service.config.ServiceConfig` — the knobs, env-driven via
  ``REPRO_SERVE_*``.
* :class:`~repro.service.coalescer.MicroBatchCoalescer` — admission control
  plus micro-batch windows that merge concurrent requests into single
  ``run_many`` calls.
* :class:`~repro.service.server.TrajectoryService` — the stdlib asyncio HTTP
  surface (``POST /query``, ``POST /ingest``, ``GET /health``,
  ``GET /stats``) with
  :func:`~repro.service.server.run_service` (blocking, CLI) and
  :func:`~repro.service.server.serve_in_background` (daemon thread) runners.
* :mod:`~repro.service.protocol` — the JSON wire protocol.

Deliberately *not* imported from the top-level :mod:`repro` package: the
library API stays import-light, and the serving tier is only paid for by the
processes that serve.
"""

from .config import ENV_PREFIX, ServiceConfig
from .coalescer import MicroBatchCoalescer
from .protocol import QUERY_TYPES, ingest_from_json, query_from_json, result_to_json
from .server import (
    ServiceHandle,
    TrajectoryService,
    run_service,
    serve_in_background,
)

__all__ = [
    "ENV_PREFIX",
    "MicroBatchCoalescer",
    "QUERY_TYPES",
    "ServiceConfig",
    "ServiceHandle",
    "TrajectoryService",
    "ingest_from_json",
    "query_from_json",
    "result_to_json",
    "run_service",
    "serve_in_background",
]
