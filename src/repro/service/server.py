"""Asyncio HTTP surface of the serving tier.

:class:`TrajectoryService` binds a minimal stdlib HTTP/1.1 server in front of
one engine and its :class:`~repro.service.coalescer.MicroBatchCoalescer`:

``POST /query``
    One JSON query document (see :mod:`repro.service.protocol`).  The request
    joins the current micro-batch window and is answered with the serialized
    typed result — bit-identical to a direct ``engine.run``, reliability
    flags included.  Malformed documents get ``400``; shed requests get
    ``503`` (overload / shutdown, with ``Retry-After``) or ``504``
    (deadline); engine failures get ``500``.  Every error body is JSON with
    ``error``/``reason``/``retriable`` fields.
``POST /ingest``
    One JSON batch of trajectories (see
    :func:`~repro.service.protocol.ingest_from_json`).  Admission-controlled
    like ``/query``: shed with a retriable ``503`` while draining or when
    the service is already at ``max_queue_depth``.  Admitted batches run
    ``engine.add_batch`` on a dedicated single-thread executor — ingest is
    serialized (batches apply in arrival order) and never blocks the event
    loop or competes with the query workers.  A ``200`` means the batch is
    indexed and immediately queryable: the response reports the added count,
    the new trajectory total, and the post-ingest engine epoch.
``GET /health``
    Liveness + readiness: the engine's shard health, growth epochs, result
    cache statistics, queue depth, and the per-reason shed counters.  The
    top-level ``status`` echoes the engine's ``"ok"``/``"failing"`` while
    serving and reads ``"draining"`` once shutdown has begun.
``GET /stats``
    The full observability surface: ``engine.stats()`` plus the coalescer's
    counters and the resolved :class:`~repro.service.config.ServiceConfig`.

Every response closes the connection (``Connection: close``) — clients are
expected to be short-lived stdlib ``urllib`` callers, not keep-alive pools.

Two entry points wrap the service:

* :func:`run_service` — blocking runner used by ``python -m repro serve``;
  installs SIGINT/SIGTERM handlers that trigger the graceful drain.
* :func:`serve_in_background` — starts the service on a daemon thread with
  its own event loop and returns a :class:`ServiceHandle` exposing the bound
  port; used by tests, benchmarks, and ``examples/serve_and_query.py``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor

from ..exceptions import (
    ConstructionError,
    DeadlineExceededError,
    QueryError,
    AlphabetError,
    ReproError,
    ServiceOverloadError,
)
from .coalescer import MicroBatchCoalescer
from .config import ServiceConfig
from .protocol import ingest_from_json, query_from_json, result_to_json

_MAX_BODY_BYTES = 1 << 20  # 1 MiB is generous for a single query document
_MAX_HEADER_LINES = 100


class TrajectoryService:
    """One engine behind a coalescing HTTP front-end.

    Lifecycle: :meth:`start` binds the socket (resolving ``port=0`` to the
    OS-chosen port), :meth:`serve_forever` blocks until :meth:`aclose`,
    which stops accepting, drains the coalescer, and closes the listener.
    """

    def __init__(self, engine, config: ServiceConfig | None = None):
        self._config = config or ServiceConfig()
        self._coalescer = MicroBatchCoalescer(engine, self._config)
        self._server: asyncio.AbstractServer | None = None
        self._closed = asyncio.Event()
        # One worker thread serializes add_batch calls in arrival order and
        # keeps index growth off both the event loop and the query workers.
        self._ingest_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-ingest"
        )
        self._ingest_batches = 0
        self._ingest_trajectories = 0
        self._ingest_shed: dict[str, int] = {"queue_full": 0, "shutdown": 0}

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def engine(self):
        return self._coalescer.engine

    @property
    def coalescer(self) -> MicroBatchCoalescer:
        return self._coalescer

    @property
    def port(self) -> int:
        """The bound TCP port (meaningful once :meth:`start` returned)."""
        if self._server is None or not self._server.sockets:
            return self._config.port
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listening socket and begin accepting connections."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._config.host, port=self._config.port
        )

    async def serve_forever(self) -> None:
        """Serve until :meth:`aclose` is called (from a signal or elsewhere)."""
        if self._server is None:
            await self.start()
        await self._closed.wait()

    async def aclose(self) -> None:
        """Graceful shutdown: stop accepting, drain the coalescer, unblock
        :meth:`serve_forever`."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._coalescer.aclose()
        self._ingest_executor.shutdown(wait=True)
        self._closed.set()

    # ------------------------------------------------------------------ #
    # observability payloads (shared by the HTTP routes and tests)
    # ------------------------------------------------------------------ #
    def health_payload(self) -> dict[str, object]:
        """The ``GET /health`` document."""
        engine_stats = self.engine.stats()
        health = engine_stats["health"]
        service = self._coalescer.stats()
        if self._coalescer.draining:
            status = "draining"
        else:
            status = health["status"]  # the engine's "ok" / "failing"
        return {
            "status": status,
            "engine_health": health,
            "epochs": engine_stats["epochs"],
            "cache": engine_stats["cache"],
            "interval_cache": engine_stats["interval_cache"],
            "queue_depth": service["queue_depth"],
            "shed": service["shed"],
            "served": service["served"],
            "coalesced": service["coalesced"],
        }

    def ingest_stats(self) -> dict[str, object]:
        """Service-side ingest counters (engine-side tail/compaction stats
        live under ``engine.stats()["ingest"]``)."""
        return {
            "batches": self._ingest_batches,
            "trajectories": self._ingest_trajectories,
            "shed": dict(self._ingest_shed),
        }

    def stats_payload(self) -> dict[str, object]:
        """The ``GET /stats`` document."""
        return {
            "engine": self.engine.stats(),
            "service": {**self._coalescer.stats(), "ingest": self.ingest_stats()},
            "config": self._config.as_dict(),
        }

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
            await self._write_response(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, object]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return 400, _error_body("malformed request line", "bad_request")
        method, target, _version = parts
        content_length = 0
        for _ in range(_MAX_HEADER_LINES):
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, _error_body("malformed Content-Length", "bad_request")
        else:
            return 431, _error_body("too many request headers", "bad_request")
        if content_length > _MAX_BODY_BYTES:
            return 413, _error_body("request body too large", "bad_request")

        path = target.split("?", 1)[0]
        if method == "GET" and path == "/health":
            return 200, self.health_payload()
        if method == "GET" and path == "/stats":
            return 200, self.stats_payload()
        if path == "/query":
            if method != "POST":
                return 405, _error_body("use POST for /query", "method_not_allowed")
            body = await reader.readexactly(content_length) if content_length else b""
            return await self._handle_query(body)
        if path == "/ingest":
            if method != "POST":
                return 405, _error_body("use POST for /ingest", "method_not_allowed")
            body = await reader.readexactly(content_length) if content_length else b""
            return await self._handle_ingest(body)
        return 404, _error_body(f"no such route: {method} {path}", "not_found")

    async def _handle_query(self, body: bytes) -> tuple[int, dict[str, object]]:
        try:
            document = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            return 400, _error_body("request body is not valid JSON", "bad_request")
        try:
            query, timeout = query_from_json(document)
            result = await self._coalescer.submit(query, timeout=timeout)
        except ServiceOverloadError as error:
            return 503, _error_body(str(error), error.reason, retriable=True)
        except DeadlineExceededError as error:
            return 504, _error_body(str(error), error.reason)
        except (QueryError, AlphabetError) as error:
            return 400, _error_body(str(error), "bad_request")
        except ReproError as error:
            return 500, _error_body(str(error), "engine_error")
        return 200, result_to_json(result)

    async def _handle_ingest(self, body: bytes) -> tuple[int, dict[str, object]]:
        if self._coalescer.draining:
            self._ingest_shed["shutdown"] += 1
            return 503, _error_body(
                "service is draining; retry later", "shutdown", retriable=True
            )
        if self._coalescer.queue_depth >= self._config.max_queue_depth:
            self._ingest_shed["queue_full"] += 1
            return 503, _error_body(
                f"queue depth {self._coalescer.queue_depth} at max_queue_depth="
                f"{self._config.max_queue_depth}; retry later",
                "queue_full",
                retriable=True,
            )
        try:
            document = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            return 400, _error_body("request body is not valid JSON", "bad_request")
        try:
            trajectories = ingest_from_json(document)
            await asyncio.get_running_loop().run_in_executor(
                self._ingest_executor, self.engine.add_batch, trajectories
            )
        except (QueryError, AlphabetError, ConstructionError) as error:
            return 400, _error_body(str(error), "bad_request")
        except ReproError as error:
            return 500, _error_body(str(error), "engine_error")
        except RuntimeError:  # executor shut down while the request was in flight
            self._ingest_shed["shutdown"] += 1
            return 503, _error_body(
                "service is draining; retry later", "shutdown", retriable=True
            )
        self._ingest_batches += 1
        self._ingest_trajectories += len(trajectories)
        return 200, {
            "type": "ingest",
            "added": len(trajectories),
            "n_trajectories": self.engine.n_trajectories,
            "epoch": self.engine.epoch,
        }

    async def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: dict[str, object]
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if status == 503:
            headers.append("Retry-After: 1")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _error_body(
    message: str, reason: str, retriable: bool = False
) -> dict[str, object]:
    return {"error": message, "reason": reason, "retriable": retriable}


# --------------------------------------------------------------------------- #
# blocking runner (CLI)
# --------------------------------------------------------------------------- #
def run_service(engine, config: ServiceConfig | None = None, *, banner=print) -> None:
    """Serve ``engine`` until SIGINT/SIGTERM, then drain gracefully.

    The blocking entry point behind ``python -m repro serve``.  ``banner``
    is called once with a human-readable "listening on host:port" line after
    the socket is bound (tests pass a recorder).
    """

    async def _run() -> None:
        service = TrajectoryService(engine, config)
        await service.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(service.aclose())
            )
        banner(
            f"serving on http://{service.config.host}:{service.port} "
            f"(window {service.config.batch_window_ms} ms, "
            f"batch <= {service.config.max_batch_size}, "
            f"queue <= {service.config.max_queue_depth})"
        )
        await service.serve_forever()
        banner("drained; bye")

    asyncio.run(_run())


# --------------------------------------------------------------------------- #
# background runner (tests, benchmarks, examples)
# --------------------------------------------------------------------------- #
class ServiceHandle:
    """A :class:`TrajectoryService` running on its own daemon thread.

    Exposes the bound :attr:`port` once the listener is up and a blocking
    :meth:`close` that performs the full graceful drain.  Usable as a
    context manager.
    """

    def __init__(self, engine, config: ServiceConfig | None = None):
        self._engine = engine
        self._config = config
        self._service: TrajectoryService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self._service is None:
            raise ReproError("service thread failed to start within 30 s")

    def _run(self) -> None:
        async def _serve() -> None:
            try:
                self._service = TrajectoryService(self._engine, self._config)
                await self._service.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as error:  # surface bind failures to the caller
                self._startup_error = error
                self._ready.set()
                raise
            self._ready.set()
            await self._service.serve_forever()

        try:
            asyncio.run(_serve())
        except BaseException:
            self._ready.set()

    @property
    def port(self) -> int:
        assert self._service is not None
        return self._service.port

    @property
    def url(self) -> str:
        assert self._service is not None
        return f"http://{self._service.config.host}:{self.port}"

    @property
    def service(self) -> TrajectoryService:
        assert self._service is not None
        return self._service

    def close(self) -> None:
        """Trigger the graceful drain and wait for the thread to finish."""
        if self._loop is not None and self._service is not None:
            with contextlib.suppress(RuntimeError):
                asyncio.run_coroutine_threadsafe(
                    self._service.aclose(), self._loop
                ).result(timeout=self._service.config.drain_timeout + 30.0)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_in_background(engine, config: ServiceConfig | None = None) -> ServiceHandle:
    """Start ``engine`` behind the HTTP surface on a daemon thread.

    Returns once the socket is bound; the handle's :attr:`ServiceHandle.url`
    is immediately connectable.  Close the handle (or use it as a context
    manager) to drain and stop.
    """
    return ServiceHandle(engine, config)


__all__ = [
    "ServiceHandle",
    "TrajectoryService",
    "run_service",
    "serve_in_background",
]
