"""JSON wire protocol of the serving tier.

Translates between the HTTP surface's JSON documents and the engine's typed
query/result objects (:mod:`repro.engine.queries`), so the coalescer and the
engine only ever see the same typed values the library API uses — answers
served over HTTP are the same objects :meth:`TrajectoryEngine.run` returns,
serialized.

Request documents carry a ``type`` discriminator::

    {"type": "count",       "path": ["e1", "e2"]}
    {"type": "contains",    "path": ["e1", "e2"]}
    {"type": "locate",      "path": ["e1", "e2"]}
    {"type": "extract",     "row": 4, "length": 3}
    {"type": "strict_path", "path": ["e1", "e2"], "t_start": 0.0, "t_end": 60.0}

plus an optional ``deadline_ms`` (request-scoped deadline, overriding the
service's ``default_deadline``).  Responses echo the ``type`` and always
carry the reliability flags, so a degraded merge is visible to HTTP clients
exactly as it is to library callers::

    {"type": "count", "count": 2, "degraded": false, "failed_shards": []}

``POST /ingest`` documents carry a batch of trajectories (timestamps
optional per trajectory)::

    {"trajectories": [{"edges": ["e1", "e2"], "timestamps": [0.0, 30.0]},
                      {"edges": ["e3", "e4"]}]}

which :func:`ingest_from_json` parses into the same typed
:class:`~repro.trajectories.model.Trajectory` values
:meth:`TrajectoryEngine.add_batch` takes from library callers.

Malformed documents raise the canonical
:class:`~repro.exceptions.QueryError` (mapped to HTTP 400 by the server).
"""

from __future__ import annotations

from typing import Hashable

from ..exceptions import QueryError
from ..queries.strict_path import StrictPathMatch
from ..trajectories.model import Trajectory
from ..engine.queries import (
    ContainsQuery,
    ContainsResult,
    CountQuery,
    CountResult,
    EngineQuery,
    EngineResult,
    ExtractQuery,
    ExtractResult,
    LocateQuery,
    LocateResult,
    StrictPathQuery,
    StrictPathResult,
)

#: Recognised values of the request ``type`` discriminator.
QUERY_TYPES = ("count", "contains", "locate", "extract", "strict_path")


def _require_path(document: dict) -> list[Hashable]:
    path = document.get("path")
    if not isinstance(path, list) or not path:
        raise QueryError('"path" must be a non-empty JSON array of edge ids')
    for edge in path:
        if not isinstance(edge, (str, int)) or isinstance(edge, bool):
            raise QueryError(
                f'"path" entries must be strings or integers, got {edge!r}'
            )
    return path


def _optional_number(document: dict, key: str) -> float | None:
    value = document.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f'"{key}" must be a number, got {value!r}')
    return float(value)


def _require_int(document: dict, key: str) -> int:
    value = document.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise QueryError(f'"{key}" must be an integer, got {value!r}')
    return value


def query_from_json(document: object) -> tuple[EngineQuery, float | None]:
    """Parse one request document into ``(typed query, timeout seconds)``.

    The timeout is the request's ``deadline_ms`` converted to seconds
    (``None`` when absent — the service's ``default_deadline`` then
    applies).  Raises :class:`~repro.exceptions.QueryError` on any malformed
    document; the engine's own planner handles semantic validation (unknown
    segments, missing capabilities) afterwards.
    """
    if not isinstance(document, dict):
        raise QueryError("the request body must be a JSON object")
    kind = document.get("type")
    if kind not in QUERY_TYPES:
        raise QueryError(
            f'"type" must be one of {", ".join(QUERY_TYPES)}, got {kind!r}'
        )
    timeout = _optional_number(document, "deadline_ms")
    if timeout is not None:
        if timeout <= 0:
            raise QueryError(f'"deadline_ms" must be positive, got {timeout}')
        timeout = timeout / 1000.0
    if kind == "count":
        return CountQuery(_require_path(document)), timeout
    if kind == "contains":
        return ContainsQuery(_require_path(document)), timeout
    if kind == "locate":
        return LocateQuery(_require_path(document)), timeout
    if kind == "extract":
        return (
            ExtractQuery(
                row=_require_int(document, "row"),
                length=_require_int(document, "length"),
            ),
            timeout,
        )
    return (
        StrictPathQuery(
            _require_path(document),
            t_start=_optional_number(document, "t_start"),
            t_end=_optional_number(document, "t_end"),
        ),
        timeout,
    )


def _require_edges(entry: dict, position: int) -> list[Hashable]:
    edges = entry.get("edges")
    if not isinstance(edges, list) or not edges:
        raise QueryError(
            f'trajectory {position}: "edges" must be a non-empty JSON array of edge ids'
        )
    for edge in edges:
        if not isinstance(edge, (str, int)) or isinstance(edge, bool):
            raise QueryError(
                f'trajectory {position}: "edges" entries must be strings or '
                f"integers, got {edge!r}"
            )
    return edges


def _optional_timestamps(entry: dict, position: int, n_edges: int) -> list[float] | None:
    timestamps = entry.get("timestamps")
    if timestamps is None:
        return None
    if not isinstance(timestamps, list):
        raise QueryError(
            f'trajectory {position}: "timestamps" must be a JSON array of numbers'
        )
    if len(timestamps) != n_edges:
        raise QueryError(
            f'trajectory {position}: "timestamps" must align with "edges" '
            f"({len(timestamps)} timestamps for {n_edges} edges)"
        )
    for value in timestamps:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise QueryError(
                f'trajectory {position}: "timestamps" entries must be numbers, '
                f"got {value!r}"
            )
    return [float(value) for value in timestamps]


def ingest_from_json(document: object) -> list[Trajectory]:
    """Parse one ``POST /ingest`` body into typed trajectories.

    Raises :class:`~repro.exceptions.QueryError` on any malformed document
    (mapped to HTTP 400 by the server); semantic validation — decreasing
    timestamps, backend growth capability — stays with ``add_batch`` so the
    HTTP surface rejects exactly what the library API rejects.
    """
    if not isinstance(document, dict):
        raise QueryError("the request body must be a JSON object")
    entries = document.get("trajectories")
    if not isinstance(entries, list) or not entries:
        raise QueryError('"trajectories" must be a non-empty JSON array')
    trajectories: list[Trajectory] = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise QueryError(
                f'trajectory {position} must be a JSON object with an "edges" array'
            )
        edges = _require_edges(entry, position)
        timestamps = _optional_timestamps(entry, position, len(edges))
        trajectories.append(Trajectory(edges=edges, timestamps=timestamps))
    return trajectories


def match_to_json(match: StrictPathMatch) -> dict[str, object]:
    """One located occurrence as a JSON-safe dict."""
    return {
        "trajectory_id": match.trajectory_id,
        "start_edge_index": match.start_edge_index,
        "end_edge_index": match.end_edge_index,
        "start_time": match.start_time,
        "end_time": match.end_time,
    }


def result_to_json(result: EngineResult) -> dict[str, object]:
    """Serialize a typed engine result, reliability flags included.

    The mapping is lossless for everything a JSON client can consume:
    counts, booleans, located matches with their timestamps, extracted
    symbols and decoded edges, and the ``degraded``/``failed_shards`` flags
    a degraded fleet merge sets.
    """
    flags: dict[str, object] = {
        "degraded": result.degraded,
        "failed_shards": list(result.failed_shards),
    }
    if isinstance(result, CountResult):
        return {"type": "count", "count": result.count, **flags}
    if isinstance(result, ContainsResult):
        return {"type": "contains", "found": result.found, **flags}
    if isinstance(result, LocateResult):
        return {
            "type": "locate",
            "count": result.count,
            "matches": [match_to_json(match) for match in result.matches],
            **flags,
        }
    if isinstance(result, ExtractResult):
        return {
            "type": "extract",
            "symbols": list(result.symbols),
            "edges": list(result.edges),
            **flags,
        }
    assert isinstance(result, StrictPathResult)
    return {
        "type": "strict_path",
        "count": result.count,
        "matches": [match_to_json(match) for match in result.matches],
        **flags,
    }


__all__ = [
    "QUERY_TYPES",
    "ingest_from_json",
    "match_to_json",
    "query_from_json",
    "result_to_json",
]
