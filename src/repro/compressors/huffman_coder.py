"""Order-0 Huffman coding of integer sequences.

Used as the entropy-coding stage of the MEL baseline (as in the COMPRESS
framework of Han et al.) and as a standalone compressor for comparisons.  The
reported size includes the code table (symbol + code length per distinct
symbol) so that ratios are honest for large alphabets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..succinct import bits_needed, build_huffman_code, frequencies_of


@dataclass
class HuffmanEncodingReport:
    """Sizes of an order-0 Huffman encoding."""

    n_symbols: int
    distinct_symbols: int
    payload_bits: int
    table_bits: int

    @property
    def total_bits(self) -> int:
        """Payload plus code table."""
        return self.payload_bits + self.table_bits

    @property
    def bits_per_symbol(self) -> float:
        """Average encoded bits per input symbol (payload + table)."""
        if self.n_symbols == 0:
            return 0.0
        return self.total_bits / self.n_symbols


def huffman_encoding_report(sequence: Sequence[int] | np.ndarray) -> HuffmanEncodingReport:
    """Compute the exact encoded size of ``sequence`` under a static Huffman code."""
    items = [int(x) for x in sequence]
    if not items:
        return HuffmanEncodingReport(0, 0, 0, 0)
    frequencies = frequencies_of(items)
    distinct = len(frequencies)
    if distinct == 1:
        payload = len(items)
    else:
        code = build_huffman_code(frequencies)
        payload = code.encoded_length(frequencies)
    max_symbol = max(frequencies)
    symbol_bits = bits_needed(max(max_symbol, 1))
    # Canonical Huffman table: each distinct symbol plus its code length
    # (code lengths fit in 6 bits for any realistic alphabet here).
    table = distinct * (symbol_bits + 6)
    return HuffmanEncodingReport(
        n_symbols=len(items),
        distinct_symbols=distinct,
        payload_bits=payload,
        table_bits=table,
    )


def huffman_compressed_bits(sequence: Sequence[int] | np.ndarray) -> int:
    """Total Huffman-encoded size of ``sequence`` in bits (payload + table)."""
    return huffman_encoding_report(sequence).total_bits
