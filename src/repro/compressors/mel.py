"""Minimum entropy labeling (MEL) — the labelling baseline of Han et al.

MEL relabels each road segment ``w`` with a small integer ``psi(w)`` chosen so
that the label sequence can still be decoded: any two segments that can follow
the *same* predecessor must receive distinct labels (otherwise the next
segment would be ambiguous given the current one).  Among all such labellings,
MEL greedily gives small labels to globally frequent segments, minimising the
zeroth-order entropy of the label sequence *subject to using a single,
context-independent label per segment* — which is exactly the restriction the
paper's Theorem 6 exploits to show that RML can never be worse.

The constraint groups ("segments sharing a predecessor") are derived from the
ET-graph so that the implementation works on any dataset, with or without an
explicit road network, just like our RML implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.etgraph import ETGraph
from ..exceptions import ConstructionError
from ..strings.alphabet import FIRST_EDGE_SYMBOL
from .huffman_coder import huffman_encoding_report


@dataclass
class MELResult:
    """A MEL labelling and the encoded size of the labelled dataset."""

    labels: dict[int, int]
    labelled_sequence: np.ndarray
    payload_bits: int
    table_bits: int

    @property
    def total_bits(self) -> int:
        """Huffman-encoded label stream plus the label table."""
        return self.payload_bits + self.table_bits

    @property
    def max_label(self) -> int:
        """Largest label used (size of the label alphabet)."""
        return max(self.labels.values(), default=0)


def build_mel_labels(graph: ETGraph, unigram_counts: np.ndarray) -> dict[int, int]:
    """Assign MEL labels ``psi(w)`` to every road-segment symbol.

    Segments are processed in decreasing order of unigram frequency; each
    receives the smallest positive label not already used by another segment
    that shares at least one ET-graph predecessor with it.
    """
    # For every symbol, the set of contexts (predecessors) it can follow.
    # Only road-segment predecessors constrain the labelling: MEL's
    # decodability requirement comes from the road network (segments leaving
    # the same intersection), not from the artificial trajectory separators,
    # which would otherwise force every trip-start segment to a distinct label.
    contexts_of: dict[int, set[int]] = {}
    for edge in graph.edges():
        if edge.context < FIRST_EDGE_SYMBOL:
            continue
        contexts_of.setdefault(edge.target, set()).add(edge.context)

    symbols = sorted(
        {edge.target for edge in graph.edges() if edge.target >= FIRST_EDGE_SYMBOL}
    )
    for symbol in symbols:
        contexts_of.setdefault(symbol, set())
    symbols.sort(key=lambda s: (-int(unigram_counts[s]) if s < unigram_counts.size else 0, s))

    used_labels_per_context: dict[int, set[int]] = {}
    labels: dict[int, int] = {}
    for symbol in symbols:
        forbidden: set[int] = set()
        for context in contexts_of[symbol]:
            forbidden |= used_labels_per_context.get(context, set())
        label = 1
        while label in forbidden:
            label += 1
        labels[symbol] = label
        for context in contexts_of[symbol]:
            used_labels_per_context.setdefault(context, set()).add(label)
    return labels


def mel_compress(
    trajectories: Sequence[Sequence[int]],
    text: np.ndarray,
    sigma: int,
) -> MELResult:
    """Compress symbol trajectories with MEL + Huffman coding.

    Parameters
    ----------
    trajectories:
        The trajectories as internal symbols (each a sequence of symbols >= 2).
    text:
        The trajectory string of the dataset (used to build the ET-graph so
        that the decodability constraints reflect the observed transitions).
    sigma:
        Alphabet size.
    """
    if not trajectories:
        raise ConstructionError("mel_compress needs at least one trajectory")
    graph = ETGraph(text, sigma=sigma)
    counts = np.bincount(np.asarray(text, dtype=np.int64), minlength=sigma)
    labels = build_mel_labels(graph, counts)

    labelled: list[int] = []
    for trajectory in trajectories:
        for symbol in trajectory:
            labelled.append(labels.get(int(symbol), 0))
    labelled_arr = np.asarray(labelled, dtype=np.int64)

    report = huffman_encoding_report(labelled_arr)
    # The decoder needs psi (one label per segment): sigma entries of
    # ceil(lg max_label) bits.  The road network itself is shared
    # infrastructure and, as in the paper's MEL evaluation, not charged.
    max_label = max(labels.values(), default=1)
    label_bits = max(int(max_label).bit_length(), 1)
    table_bits = len(labels) * label_bits + report.table_bits
    return MELResult(
        labels=labels,
        labelled_sequence=labelled_arr,
        payload_bits=report.payload_bits,
        table_bits=table_bits,
    )


def mel_entropy(result: MELResult) -> float:
    """Zeroth-order entropy of the MEL label stream (Table V comparison)."""
    from ..analysis.entropy import empirical_entropy_h0

    return empirical_entropy_h0(result.labelled_sequence)
