"""General-purpose byte compressors (zip / bzip2 rows of Table IV).

The paper's Table IV compares against ``zip`` and ``bzip2`` applied to the
raw dataset stored as 32-bit integers; these helpers reproduce that protocol
with the standard-library ``zlib`` and ``bz2`` codecs.
"""

from __future__ import annotations

import bz2
import zlib
from typing import Sequence

import numpy as np


def sequence_to_bytes(sequence: Sequence[int] | np.ndarray, bytes_per_symbol: int = 4) -> bytes:
    """Serialise an integer sequence as little-endian fixed-width integers."""
    dtype = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}.get(bytes_per_symbol)
    if dtype is None:
        raise ValueError("bytes_per_symbol must be one of 1, 2, 4, 8")
    arr = np.asarray(sequence, dtype=np.int64)
    return arr.astype(dtype).tobytes()


def zlib_compressed_bits(sequence: Sequence[int] | np.ndarray, level: int = 9) -> int:
    """Size in bits of the zlib (``zip``) compression of the 32-bit serialisation."""
    return len(zlib.compress(sequence_to_bytes(sequence), level)) * 8


def bz2_compressed_bits(sequence: Sequence[int] | np.ndarray, level: int = 9) -> int:
    """Size in bits of the bzip2 compression of the 32-bit serialisation."""
    return len(bz2.compress(sequence_to_bytes(sequence), level)) * 8
