"""Compression baselines: MEL, Re-Pair, PRESS-style SP encoding, zip/bzip2, Huffman."""

from .generic import bz2_compressed_bits, sequence_to_bytes, zlib_compressed_bits
from .huffman_coder import HuffmanEncodingReport, huffman_compressed_bits, huffman_encoding_report
from .mel import MELResult, build_mel_labels, mel_compress, mel_entropy
from .press import PressResult, press_compress
from .repair import RePairResult, repair_compress

__all__ = [
    "huffman_encoding_report",
    "huffman_compressed_bits",
    "HuffmanEncodingReport",
    "MELResult",
    "build_mel_labels",
    "mel_compress",
    "mel_entropy",
    "RePairResult",
    "repair_compress",
    "PressResult",
    "press_compress",
    "sequence_to_bytes",
    "zlib_compressed_bits",
    "bz2_compressed_bits",
]
