"""PRESS-style shortest-path spatial compression (Song et al., PVLDB'14).

PRESS compresses the spatial path of an NCT by exploiting that drivers mostly
follow shortest paths: when the next segment of a trajectory coincides with
the next segment of the shortest path towards the trajectory's destination,
it does not need to be stored — only the deviations do.  The compressed
representation of a trajectory is therefore its first segment, its destination
node and the list of (position, segment) deviations, to which we apply a
Huffman entropy stage as PRESS's FST/entropy coding does.

This compressor requires a road network (shortest paths are computed on it),
so — exactly as in the paper's Table IV — it is only evaluated on datasets
that come with one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..exceptions import ConstructionError, NetworkError
from ..network.road_network import EdgeId, RoadNetwork
from ..succinct import bits_needed
from ..trajectories.model import Trajectory
from .huffman_coder import huffman_encoding_report


@dataclass
class PressResult:
    """Compression outcome of the PRESS-style shortest-path encoder."""

    n_trajectories: int
    total_edges: int
    kept_edges: int
    payload_bits: int
    header_bits: int

    @property
    def total_bits(self) -> int:
        """Headers plus the entropy-coded deviation stream."""
        return self.payload_bits + self.header_bits

    @property
    def kept_fraction(self) -> float:
        """Fraction of segments that had to be stored explicitly."""
        if self.total_edges == 0:
            return 0.0
        return self.kept_edges / self.total_edges


class _ShortestPathOracle:
    """Per-destination "next segment on a shortest path" lookup with caching."""

    def __init__(self, network: RoadNetwork):
        self._network = network
        self._cache: dict[Hashable, dict[Hashable, EdgeId]] = {}

    def next_edge_towards(self, node: Hashable, destination: Hashable) -> EdgeId | None:
        """First segment of a shortest path from ``node`` to ``destination``."""
        table = self._cache.get(destination)
        if table is None:
            table = self._build_table(destination)
            self._cache[destination] = table
        return table.get(node)

    def _build_table(self, destination: Hashable) -> dict[Hashable, EdgeId]:
        """Reverse Dijkstra from the destination: next hop for every node."""
        import heapq

        network = self._network
        distances: dict[Hashable, float] = {destination: 0.0}
        next_edge: dict[Hashable, EdgeId] = {}
        heap: list[tuple[float, int, Hashable]] = [(0.0, 0, destination)]
        counter = 1
        done: set[Hashable] = set()
        while heap:
            distance, _, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            for edge_id in network.in_edges(node):
                segment = network.segment(edge_id)
                candidate = distance + segment.length
                if candidate < distances.get(segment.tail, float("inf")):
                    distances[segment.tail] = candidate
                    next_edge[segment.tail] = edge_id
                    heapq.heappush(heap, (candidate, counter, segment.tail))
                    counter += 1
        return next_edge


def press_compress(
    trajectories: Sequence[Trajectory],
    network: RoadNetwork,
    edge_symbols: dict[EdgeId, int] | None = None,
) -> PressResult:
    """Compress trajectories with shortest-path prediction + Huffman coding.

    Parameters
    ----------
    trajectories:
        The NCTs to compress (their edges must belong to ``network``).
    network:
        The road network used for shortest-path prediction.
    edge_symbols:
        Optional mapping from edge ID to a dense integer; built on the fly
        when omitted (it only affects the entropy stage, not the prediction).
    """
    if not trajectories:
        raise ConstructionError("press_compress needs at least one trajectory")
    oracle = _ShortestPathOracle(network)
    if edge_symbols is None:
        edge_symbols = {}
        for trajectory in trajectories:
            for edge_id in trajectory.edges:
                edge_symbols.setdefault(edge_id, len(edge_symbols))

    deviation_symbols: list[int] = []
    deviation_positions: list[int] = []
    total_edges = 0
    kept = 0
    max_length = 1
    for trajectory in trajectories:
        edges = trajectory.edges
        total_edges += len(edges)
        max_length = max(max_length, len(edges))
        kept += 1  # the first edge is always stored
        destination = network.segment(edges[-1]).head
        for position in range(1, len(edges)):
            previous = edges[position - 1]
            actual = edges[position]
            try:
                predicted = oracle.next_edge_towards(network.segment(previous).head, destination)
            except NetworkError:
                predicted = None
            if predicted == actual:
                continue
            kept += 1
            deviation_symbols.append(edge_symbols[actual])
            deviation_positions.append(position)

    entropy_report = huffman_encoding_report(deviation_symbols) if deviation_symbols else None
    payload_bits = entropy_report.total_bits if entropy_report else 0
    position_bits = bits_needed(max(max_length - 1, 1))
    payload_bits += len(deviation_positions) * position_bits

    sigma_bits = bits_needed(max(len(edge_symbols) - 1, 1))
    node_bits = bits_needed(max(network.n_nodes - 1, 1))
    # Per trajectory: first edge, destination node, deviation count.
    header_bits = len(trajectories) * (sigma_bits + node_bits + 32)
    return PressResult(
        n_trajectories=len(trajectories),
        total_edges=total_edges,
        kept_edges=kept,
        payload_bits=payload_bits,
        header_bits=header_bits,
    )
