"""Re-Pair grammar compression (Larsson & Moffat, DCC'99).

Re-Pair repeatedly replaces the most frequent adjacent symbol pair with a new
non-terminal until no pair occurs twice.  It is the "standard benchmark
compressor in stringology" of Table IV.  The implementation keeps the sequence
in a doubly linked list (numpy index arrays) with a pair-occurrence index and
a lazily invalidated max-heap, so each replacement costs time proportional to
the number of occurrences touched.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConstructionError
from ..succinct import bits_needed


@dataclass
class RePairResult:
    """The grammar produced by Re-Pair plus exact size accounting."""

    rules: list[tuple[int, int]]
    compressed_sequence: list[int]
    original_length: int
    original_sigma: int

    @property
    def n_rules(self) -> int:
        """Number of grammar rules (non-terminals introduced)."""
        return len(self.rules)

    def total_bits(self) -> int:
        """Rules + compressed sequence, each symbol in ``ceil(lg(sigma + rules))`` bits."""
        total_symbols = self.original_sigma + self.n_rules
        symbol_bits = bits_needed(max(total_symbols - 1, 1))
        rule_bits = self.n_rules * 2 * symbol_bits
        sequence_bits = len(self.compressed_sequence) * symbol_bits
        header_bits = 3 * 64
        return rule_bits + sequence_bits + header_bits

    def expand(self) -> list[int]:
        """Decompress back to the original sequence (used by tests)."""
        cache: dict[int, list[int]] = {}

        def expand_symbol(symbol: int) -> list[int]:
            if symbol < self.original_sigma:
                return [symbol]
            if symbol in cache:
                return cache[symbol]
            left, right = self.rules[symbol - self.original_sigma]
            result = expand_symbol(left) + expand_symbol(right)
            cache[symbol] = result
            return result

        output: list[int] = []
        for symbol in self.compressed_sequence:
            output.extend(expand_symbol(symbol))
        return output


def repair_compress(sequence: Sequence[int] | np.ndarray, sigma: int | None = None) -> RePairResult:
    """Run Re-Pair on an integer sequence.

    Parameters
    ----------
    sequence:
        Non-negative integer sequence.
    sigma:
        Size of the terminal alphabet; inferred as ``max + 1`` when omitted.
    """
    seq = [int(x) for x in sequence]
    if not seq:
        raise ConstructionError("cannot Re-Pair an empty sequence")
    max_symbol = max(seq)
    if sigma is None:
        sigma = max_symbol + 1
    elif sigma <= max_symbol:
        raise ConstructionError(f"sigma {sigma} too small for max symbol {max_symbol}")

    n = len(seq)
    symbols = list(seq)
    next_index = list(range(1, n)) + [-1]
    previous_index = [-1] + list(range(n - 1))
    alive = [True] * n

    pair_positions: dict[tuple[int, int], set[int]] = {}
    for i in range(n - 1):
        pair_positions.setdefault((seq[i], seq[i + 1]), set()).add(i)

    heap: list[tuple[int, tuple[int, int]]] = [
        (-len(positions), pair) for pair, positions in pair_positions.items() if len(positions) >= 2
    ]
    heapq.heapify(heap)

    rules: list[tuple[int, int]] = []
    next_symbol = sigma

    def add_pair(position: int) -> None:
        nxt = next_index[position]
        if position < 0 or nxt < 0:
            return
        pair = (symbols[position], symbols[nxt])
        positions = pair_positions.setdefault(pair, set())
        positions.add(position)
        heapq.heappush(heap, (-len(positions), pair))

    def remove_pair(position: int) -> None:
        nxt = next_index[position]
        if position < 0 or nxt < 0:
            return
        pair = (symbols[position], symbols[nxt])
        positions = pair_positions.get(pair)
        if positions is not None:
            positions.discard(position)

    while heap:
        negative_count, pair = heapq.heappop(heap)
        positions = pair_positions.get(pair, set())
        if len(positions) < 2:
            continue
        if -negative_count != len(positions):
            # Stale heap entry; push the corrected count and retry.
            heapq.heappush(heap, (-len(positions), pair))
            if -negative_count > len(positions):
                continue
        a, b = pair
        replacement = next_symbol
        replaced_any = False
        for position in sorted(positions):
            if not alive[position]:
                continue
            nxt = next_index[position]
            if nxt < 0 or not alive[nxt]:
                continue
            if symbols[position] != a or symbols[nxt] != b:
                continue
            # Drop pairs that are about to change.
            prev = previous_index[position]
            after = next_index[nxt]
            if prev >= 0:
                remove_pair(prev)
            remove_pair(nxt)
            remove_pair(position)
            # Merge: position takes the new symbol, nxt dies.
            symbols[position] = replacement
            alive[nxt] = False
            next_index[position] = after
            if after >= 0:
                previous_index[after] = position
            # Register the new neighbouring pairs.
            if prev >= 0:
                add_pair(prev)
            if after >= 0:
                add_pair(position)
            replaced_any = True
        pair_positions.pop(pair, None)
        if replaced_any:
            rules.append((a, b))
            next_symbol += 1

    compressed = [symbols[i] for i in range(n) if alive[i]]
    return RePairResult(
        rules=rules,
        compressed_sequence=compressed,
        original_length=n,
        original_sigma=sigma,
    )
