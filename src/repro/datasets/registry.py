"""Named dataset builders: synthetic analogues of the paper's five datasets.

Every builder is deterministic given its ``seed`` and returns a
:class:`DatasetBundle` holding the trajectories (as internal symbols), the
concatenated trajectory string, and — when the dataset lives on a road
network — the underlying :class:`~repro.trajectories.model.TrajectoryDataset`
so that network-dependent baselines (PRESS) can run.

The ``scale`` parameter multiplies the number of trajectories, so tests run on
small instances while the benchmark harness uses larger ones.  Each builder's
docstring documents how its analogue preserves the property of the original
dataset that matters to CiNCT (ET-graph sparsity, gap density, go-straight
bias).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError
from ..mapmatching import HMMMapMatcher, match_traces
from ..network import grid_network
from ..strings.trajectory_string import TrajectoryString, trajectory_string_from_symbols
from ..trajectories import (
    TrajectoryDataset,
    inject_gaps,
    interpolate_gaps,
    random_walk_symbols,
    shortest_path_trips,
    simulate_gps_trace,
    sparse_state_walks,
    straight_biased_walks,
    symbol_trajectories,
)


@dataclass
class DatasetBundle:
    """A ready-to-index dataset."""

    name: str
    symbol_trajectories: list[list[int]]
    text: np.ndarray
    sigma: int
    dataset: TrajectoryDataset | None = None
    trajectory_string: TrajectoryString | None = None
    description: str = ""

    @property
    def length(self) -> int:
        """Length of the trajectory string ``|T|``."""
        return int(self.text.size)

    @property
    def n_trajectories(self) -> int:
        """Number of trajectories."""
        return len(self.symbol_trajectories)


def _bundle_from_dataset(name: str, dataset: TrajectoryDataset, description: str) -> DatasetBundle:
    trajectory_string = dataset.to_trajectory_string()
    return DatasetBundle(
        name=name,
        symbol_trajectories=symbol_trajectories(dataset),
        text=trajectory_string.text,
        sigma=trajectory_string.sigma,
        dataset=dataset,
        trajectory_string=trajectory_string,
        description=description,
    )


def _scaled(base: int, scale: float) -> int:
    value = int(round(base * scale))
    if value < 1:
        raise DatasetError(f"scale {scale} is too small (would produce {value} trajectories)")
    return value


def singapore_like(scale: float = 1.0, seed: int = 7, gap_probability: float = 0.12) -> DatasetBundle:
    """Noisy taxi dataset analogue: turn-biased walks with disconnected gaps.

    The defining property of the paper's raw Singapore dataset is its large
    fraction of physically disconnected transitions, which makes the ET-graph
    dense (d-bar ~ 27).  ``gap_probability`` controls that density here; the
    grid is kept small relative to the trajectory volume so that every road
    segment is observed many times, as in the real data.
    """
    rng = np.random.default_rng(seed)
    network = grid_network(12, 12)
    trips = straight_biased_walks(
        network,
        n_trajectories=_scaled(1200, scale),
        min_length=15,
        max_length=50,
        rng=rng,
        straight_bias=3.0,
    )
    gapped = inject_gaps(trips, network, gap_probability=gap_probability, rng=rng)
    dataset = TrajectoryDataset(
        name="singapore-like",
        trajectories=gapped,
        network=network,
        description="turn-biased walks with GPS-gap teleports (raw Singapore analogue)",
    )
    return _bundle_from_dataset("Singapore", dataset, dataset.description)


def singapore2_like(scale: float = 1.0, seed: int = 7, gap_probability: float = 0.12) -> DatasetBundle:
    """Gap-interpolated variant of :func:`singapore_like` (Singapore-2 analogue)."""
    rng = np.random.default_rng(seed)
    network = grid_network(12, 12)
    trips = straight_biased_walks(
        network,
        n_trajectories=_scaled(1200, scale),
        min_length=15,
        max_length=50,
        rng=rng,
        straight_bias=3.0,
    )
    gapped = inject_gaps(trips, network, gap_probability=gap_probability, rng=rng)
    repaired = interpolate_gaps(gapped, network)
    dataset = TrajectoryDataset(
        name="singapore2-like",
        trajectories=repaired,
        network=network,
        description="gapped walks repaired with shortest paths (Singapore-2 analogue)",
    )
    return _bundle_from_dataset("Singapore-2", dataset, dataset.description)


def roma_like(scale: float = 1.0, seed: int = 11, gps_noise_std: float = 10.0) -> DatasetBundle:
    """GPS + HMM-map-matching dataset analogue (Roma).

    Trips are generated on a grid, noisy GPS points are emitted along them and
    the HMM map matcher recovers NCTs — exercising the full pipeline the
    paper's Roma dataset went through.
    """
    rng = np.random.default_rng(seed)
    network = grid_network(10, 10)
    trips = straight_biased_walks(
        network,
        n_trajectories=_scaled(700, scale),
        min_length=15,
        max_length=40,
        rng=rng,
        straight_bias=2.5,
    )
    traces = [
        simulate_gps_trace(network, trip, rng, noise_std=gps_noise_std, points_per_edge=1)
        for trip in trips
    ]
    matcher = HMMMapMatcher(
        network,
        gps_noise_std=gps_noise_std,
        transition_beta=60.0,
        candidate_radius=70.0,
    )
    matched = match_traces(matcher, traces)
    dataset = TrajectoryDataset(
        name="roma-like",
        trajectories=matched,
        network=network,
        description="HMM-map-matched noisy GPS traces (Roma analogue)",
    )
    return _bundle_from_dataset("Roma", dataset, dataset.description)


def mogen_like(scale: float = 1.0, seed: int = 13) -> DatasetBundle:
    """Moving-object-generator analogue (MO-gen): shortest-path OD trips."""
    rng = np.random.default_rng(seed)
    network = grid_network(16, 16)
    trips = shortest_path_trips(network, n_trajectories=_scaled(2500, scale), rng=rng, min_hops=6)
    dataset = TrajectoryDataset(
        name="mogen-like",
        trajectories=trips,
        network=network,
        description="random origin/destination shortest-path trips (MO-gen analogue)",
    )
    return _bundle_from_dataset("MO-gen", dataset, dataset.description)


def chess_like(scale: float = 1.0, seed: int = 17) -> DatasetBundle:
    """Sparse symbolic dataset analogue (Chess): d-bar well below 2."""
    rng = np.random.default_rng(seed)
    walks = sparse_state_walks(
        n_states=800,
        n_walks=_scaled(4000, scale),
        walk_length=10,
        rng=rng,
        branching_probability=0.15,
    )
    text = trajectory_string_from_symbols(walks)
    sigma = int(text.max()) + 1
    return DatasetBundle(
        name="Chess",
        symbol_trajectories=walks,
        text=text,
        sigma=sigma,
        description="walks on a deep, very sparse state graph (Chess analogue)",
    )


def randwalk(
    sigma: int = 4096,
    average_out_degree: float = 4.0,
    length_factor: int = 20,
    seed: int = 19,
    walk_length: int = 100,
) -> DatasetBundle:
    """RandWalk dataset (Section VI-E): random walks on a Poisson random graph.

    ``length_factor`` plays the role of the paper's ``|T| = 800 sigma``
    setting (scaled down for pure-Python experiments): the total number of
    generated symbols is ``length_factor * sigma``.
    """
    rng = np.random.default_rng(seed)
    walks = random_walk_symbols(
        sigma=sigma,
        average_out_degree=average_out_degree,
        total_symbols=length_factor * sigma,
        rng=rng,
        walk_length=walk_length,
    )
    text = trajectory_string_from_symbols(walks)
    return DatasetBundle(
        name=f"RandWalk(sigma={sigma}, d={average_out_degree:g})",
        symbol_trajectories=walks,
        text=text,
        sigma=sigma + 2,
        description="uniform random walks on a directed Poisson graph",
    )


_PAPER_DATASETS = {
    "singapore": singapore_like,
    "singapore-2": singapore2_like,
    "roma": roma_like,
    "mo-gen": mogen_like,
    "chess": chess_like,
}


def paper_dataset_names() -> list[str]:
    """The five dataset analogues of Table III, in the paper's order."""
    return ["singapore", "singapore-2", "roma", "mo-gen", "chess"]


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None) -> DatasetBundle:
    """Load one of the paper's dataset analogues by name."""
    key = name.strip().lower()
    builder = _PAPER_DATASETS.get(key)
    if builder is None:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(paper_dataset_names())}"
        )
    if seed is None:
        return builder(scale=scale)
    return builder(scale=scale, seed=seed)
