"""Synthetic analogues of the paper's evaluation datasets."""

from .registry import (
    DatasetBundle,
    chess_like,
    load_dataset,
    mogen_like,
    paper_dataset_names,
    randwalk,
    roma_like,
    singapore2_like,
    singapore_like,
)

__all__ = [
    "DatasetBundle",
    "singapore_like",
    "singapore2_like",
    "roma_like",
    "mogen_like",
    "chess_like",
    "randwalk",
    "load_dataset",
    "paper_dataset_names",
]
