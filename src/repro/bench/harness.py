"""Shared experiment harness used by ``benchmarks/`` and the examples.

The harness builds every index variant on a dataset bundle, samples query
workloads the way the paper does (random separator-free windows of the
trajectory string), measures sizes and query times, and formats result tables
whose rows/series mirror the paper's tables and figures.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.cinct import CiNCT
from ..datasets.registry import DatasetBundle
from ..fmindex.base import FMIndexBase
from ..fmindex.variants import build_baseline, sample_patterns
from ..strings.bwt import BWTResult, burrows_wheeler_transform

IndexLike = FMIndexBase | CiNCT

DEFAULT_VARIANTS = ("CiNCT", "UFMI", "ICB-WM", "ICB-Huff", "FM-GMR", "FM-AP-HYB")


@dataclass
class BuiltIndex:
    """An index variant together with its construction metadata."""

    name: str
    index: IndexLike
    build_seconds: float
    block_size: int | None = None

    def bits_per_symbol(self) -> float:
        """Index size per trajectory-string symbol."""
        return self.index.size_in_bits() / self.index.length


@dataclass
class QueryTiming:
    """Average per-query timing of a workload on one index."""

    name: str
    mean_seconds: float
    n_queries: int

    @property
    def mean_microseconds(self) -> float:
        """Mean query latency in microseconds."""
        return self.mean_seconds * 1e6


@dataclass
class ExperimentRecord:
    """One (dataset, method, parameter) measurement row."""

    dataset: str
    method: str
    block_size: int | None
    bits_per_symbol: float
    search_time_us: float | None = None
    extra: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        """Flatten into a printable row."""
        row: dict[str, object] = {
            "dataset": self.dataset,
            "method": self.method,
            "b": self.block_size if self.block_size is not None else "-",
            "bits/symbol": round(self.bits_per_symbol, 2),
        }
        if self.search_time_us is not None:
            row["search (us)"] = round(self.search_time_us, 1)
        for key, value in self.extra.items():
            row[key] = round(value, 3)
        return row


def bwt_of_bundle(bundle: DatasetBundle) -> BWTResult:
    """Compute (once) the BWT of a dataset bundle's trajectory string."""
    return burrows_wheeler_transform(bundle.text, sigma=bundle.sigma)


def build_index(
    name: str,
    bwt_result: BWTResult,
    block_size: int = 63,
    **cinct_kwargs: object,
) -> BuiltIndex:
    """Build one index variant by name ("CiNCT" or a Table-II baseline)."""
    started = time.perf_counter()
    if name.lower() == "cinct":
        index: IndexLike = CiNCT(bwt_result, block_size=block_size, **cinct_kwargs)  # type: ignore[arg-type]
    else:
        index = build_baseline(name, bwt_result, block_size=block_size)
    elapsed = time.perf_counter() - started
    uses_block = name.lower() in {"cinct", "icb-wm", "icb-huff", "fm-ap-hyb"}
    return BuiltIndex(
        name=name,
        index=index,
        build_seconds=elapsed,
        block_size=block_size if uses_block else None,
    )


def build_all_indexes(
    bwt_result: BWTResult,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    block_size: int = 63,
) -> list[BuiltIndex]:
    """Build every requested index variant over the same BWT."""
    return [build_index(name, bwt_result, block_size=block_size) for name in variants]


def sample_query_workload(
    bwt_result: BWTResult,
    pattern_length: int = 20,
    n_patterns: int = 50,
    seed: int = 0,
) -> list[list[int]]:
    """Sample the paper's query workload (random data windows, travel order)."""
    rng = np.random.default_rng(seed)
    return sample_patterns(bwt_result, pattern_length, n_patterns, rng)


def measure_search_time(index: IndexLike, patterns: Sequence[Sequence[int]]) -> QueryTiming:
    """Average suffix-range-query latency over a pattern workload."""
    if not patterns:
        raise ValueError("the workload must contain at least one pattern")
    started = time.perf_counter()
    for pattern in patterns:
        index.suffix_range(pattern)
    elapsed = time.perf_counter() - started
    return QueryTiming(
        name=getattr(index, "name", type(index).__name__),
        mean_seconds=elapsed / len(patterns),
        n_queries=len(patterns),
    )


def measure_batch_count_time(index: IndexLike, patterns: Sequence[Sequence[int]]) -> QueryTiming:
    """Average per-query latency of a *batched* count workload.

    Uses :meth:`count_many` when the index provides it (all in-repo variants
    do) and falls back to a scalar loop otherwise, so the measurement works on
    any :class:`FMIndexBase`-shaped object.
    """
    if not patterns:
        raise ValueError("the workload must contain at least one pattern")
    batched = getattr(index, "count_many", None)
    started = time.perf_counter()
    if batched is not None:
        batched(patterns)
    else:
        for pattern in patterns:
            index.count(pattern)
    elapsed = time.perf_counter() - started
    return QueryTiming(
        name=getattr(index, "name", type(index).__name__),
        mean_seconds=elapsed / len(patterns),
        n_queries=len(patterns),
    )


def write_bench_baseline(
    name: str,
    payload: Mapping[str, object],
    directory: str | Path = ".",
) -> Path:
    """Persist a benchmark baseline as ``BENCH_<name>.json``.

    The baseline files let a PR prove a speedup against the previous state of
    the code and let future PRs detect regressions: re-run the benchmark,
    reload the stored baseline with :func:`load_bench_baseline` and compare.
    Environment metadata is recorded so cross-machine numbers are not
    mistaken for regressions.
    """
    path = Path(directory) / f"BENCH_{name}.json"
    document = {
        "name": name,
        "schema_version": 1,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
        },
        "results": dict(payload),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_bench_baseline(name: str, directory: str | Path = ".") -> dict[str, object] | None:
    """Load a previously written ``BENCH_<name>.json`` baseline, if present."""
    path = Path(directory) / f"BENCH_{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def assert_at_scale(scale: float, *, min_scale: float = 1.0, min_cpus: int = 1) -> bool:
    """Whether a wall-clock performance assertion should be *enforced*.

    Speedup targets only mean something when the benchmark ran on a workload
    big enough to dominate fixed costs (``scale >= min_scale``) **and** on
    hardware that can actually overlap the work (``os.cpu_count() >=
    min_cpus``).  Below either threshold the benchmark should still run and
    record its table — the numbers remain useful for eyeballing trends — but
    a hard assert would only report the host, not the code.  Callers write::

        if assert_at_scale(BENCH_SCALE, min_cpus=4):
            assert speedup >= 1.5

    so CI smoke runs (scale 0.05) and single-core hosts degrade to
    record-only mode instead of failing.
    """
    if scale < min_scale:
        return False
    return (os.cpu_count() or 1) >= min_cpus


def measure_extraction_time(index: IndexLike, length: int, start_row: int = 0) -> float:
    """Per-symbol extraction time (seconds) for ``extract(start_row, length)``."""
    if length < 1:
        raise ValueError("length must be positive")
    started = time.perf_counter()
    index.extract(start_row, length)
    return (time.perf_counter() - started) / length


def run_size_time_experiment(
    bundle: DatasetBundle,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    block_sizes: Sequence[int] = (63,),
    pattern_length: int = 20,
    n_patterns: int = 50,
    seed: int = 0,
    cinct_kwargs: dict[str, object] | None = None,
) -> list[ExperimentRecord]:
    """The Fig.-10 style experiment: size and search time for every variant.

    Variants that take the RRR block-size parameter are built once per block
    size; parameter-free variants are built once.
    """
    bwt_result = bwt_of_bundle(bundle)
    patterns = sample_query_workload(bwt_result, pattern_length, n_patterns, seed)
    records: list[ExperimentRecord] = []
    for name in variants:
        uses_block = name.lower() in {"cinct", "icb-wm", "icb-huff", "fm-ap-hyb"}
        sizes = block_sizes if uses_block else (63,)
        for block_size in sizes:
            kwargs = dict(cinct_kwargs or {}) if name.lower() == "cinct" else {}
            built = build_index(name, bwt_result, block_size=block_size, **kwargs)
            timing = measure_search_time(built.index, patterns)
            records.append(
                ExperimentRecord(
                    dataset=bundle.name,
                    method=name,
                    block_size=built.block_size,
                    bits_per_symbol=built.bits_per_symbol(),
                    search_time_us=timing.mean_microseconds,
                    extra={"build_seconds": built.build_seconds},
                )
            )
    return records


def format_table(rows: Sequence[dict[str, object]], title: str | None = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {column: len(column) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(" | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def summarise_winner(
    records: Sequence[ExperimentRecord],
    metric: Callable[[ExperimentRecord], float],
) -> ExperimentRecord:
    """Return the record minimising ``metric`` (used for sanity assertions)."""
    if not records:
        raise ValueError("no records to summarise")
    return min(records, key=metric)
