"""Declarative open-loop workload specifications for SLO benchmarking.

A :class:`WorkloadConfig` pins everything about a service-level benchmark run
as data: the query-kind mix, the arrival process (Poisson or uniform), its
mean rate and duration, and the seed.  The benchmark driver
(``benchmarks/bench_service.py``) turns the spec into a paced open-loop run —
requests fire at the spec's arrival offsets whether or not earlier answers
came back, which is the load shape a coalescing front-end actually sees — and
summarises the observed latencies with :func:`latency_summary` (tail
percentiles plus inter-request jitter, the quantities SLOs are written
against).

Everything derived from the spec is deterministic in the seed, so two
configurations measured under the same :class:`WorkloadConfig` saw the same
request sequence at the same offsets and their summaries are directly
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConstructionError

#: Arrival processes a workload can declare.
ARRIVALS = ("poisson", "uniform")


@dataclass(frozen=True)
class WorkloadConfig:
    """One declarative open-loop service workload.

    Parameters
    ----------
    query_mix:
        ``(kind, weight)`` pairs; requests draw their kind with probability
        proportional to weight.  Kinds are free-form strings — the driver maps
        them to concrete query constructors.
    arrival:
        ``"poisson"`` (exponential inter-arrival gaps, the classic open-loop
        model) or ``"uniform"`` (arrival instants uniform over the duration —
        same mean rate, no bursts, which isolates burst-sensitivity when
        compared against the Poisson run).
    rate:
        Mean arrivals per second.
    duration_s:
        Workload length in seconds; together with ``rate`` it fixes the
        request count.
    seed:
        Seeds both the arrival process and the query-kind draw.
    """

    query_mix: tuple[tuple[str, float], ...] = (("count", 1.0),)
    arrival: str = "poisson"
    rate: float = 200.0
    duration_s: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVALS:
            raise ConstructionError(
                f"arrival must be one of {ARRIVALS}, got {self.arrival!r}"
            )
        if not self.query_mix:
            raise ConstructionError("query_mix must name at least one query kind")
        for kind, weight in self.query_mix:
            if not kind or weight <= 0:
                raise ConstructionError(
                    f"query_mix entries need a kind and a positive weight, "
                    f"got ({kind!r}, {weight!r})"
                )
        if self.rate <= 0:
            raise ConstructionError(f"rate must be positive, got {self.rate}")
        if self.duration_s <= 0:
            raise ConstructionError(
                f"duration_s must be positive, got {self.duration_s}"
            )

    @property
    def n_requests(self) -> int:
        """Number of requests the spec generates (at least one)."""
        return max(int(round(self.rate * self.duration_s)), 1)

    def arrival_offsets(self) -> np.ndarray:
        """Sorted request fire times in seconds, starting at 0."""
        rng = np.random.default_rng(self.seed)
        n = self.n_requests
        if self.arrival == "poisson":
            offsets = np.cumsum(rng.exponential(1.0 / self.rate, size=n))
            return offsets - offsets[0]
        offsets = np.sort(rng.uniform(0.0, self.duration_s, size=n))
        return offsets - offsets[0]

    def sample_kinds(self) -> list[str]:
        """One query kind per request, drawn from the declared mix."""
        rng = np.random.default_rng(self.seed + 1)
        kinds = [kind for kind, _ in self.query_mix]
        weights = np.asarray([weight for _, weight in self.query_mix], dtype=np.float64)
        draws = rng.choice(len(kinds), size=self.n_requests, p=weights / weights.sum())
        return [kinds[int(i)] for i in draws]

    def describe(self) -> dict:
        """The spec as a JSON-ready record (for baseline files)."""
        return {
            "query_mix": [[kind, weight] for kind, weight in self.query_mix],
            "arrival": self.arrival,
            "rate": self.rate,
            "duration_s": self.duration_s,
            "requests": self.n_requests,
            "seed": self.seed,
        }


def jitter_ms(latencies) -> float:
    """Mean absolute difference of consecutive request latencies, in ms.

    The RFC 3550-style jitter statistic over the latency series in arrival
    order: percentiles say how slow the tail is, jitter says how *unsteady*
    consecutive answers are — a coalescing window trades a little of the
    former for a lot of the latter, so SLO runs record both.
    """
    lat = np.asarray(latencies, dtype=np.float64)
    if lat.size < 2:
        return 0.0
    return float(np.mean(np.abs(np.diff(lat))) * 1e3)


def latency_summary(latencies) -> dict:
    """p50/p95/p99 and jitter (all ms) for one run's latency series."""
    lat = np.asarray(latencies, dtype=np.float64)
    if lat.size == 0:
        raise ConstructionError("cannot summarise an empty latency series")
    return {
        "requests": int(lat.size),
        "p50_ms": float(np.percentile(lat, 50) * 1e3),
        "p95_ms": float(np.percentile(lat, 95) * 1e3),
        "p99_ms": float(np.percentile(lat, 99) * 1e3),
        "jitter_ms": jitter_ms(lat),
    }


__all__ = ["ARRIVALS", "WorkloadConfig", "jitter_ms", "latency_summary"]
