"""Benchmark harness shared by the ``benchmarks/`` suite and the examples."""

from .harness import (
    DEFAULT_VARIANTS,
    BuiltIndex,
    ExperimentRecord,
    QueryTiming,
    build_all_indexes,
    build_index,
    bwt_of_bundle,
    format_table,
    load_bench_baseline,
    measure_batch_count_time,
    measure_extraction_time,
    measure_search_time,
    run_size_time_experiment,
    sample_query_workload,
    summarise_winner,
    write_bench_baseline,
)

__all__ = [
    "DEFAULT_VARIANTS",
    "BuiltIndex",
    "QueryTiming",
    "ExperimentRecord",
    "bwt_of_bundle",
    "build_index",
    "build_all_indexes",
    "sample_query_workload",
    "measure_search_time",
    "measure_batch_count_time",
    "measure_extraction_time",
    "run_size_time_experiment",
    "format_table",
    "summarise_winner",
    "write_bench_baseline",
    "load_bench_baseline",
]
