"""Empirical entropy measures (Eqs. 3 and 4 of the paper).

``H0`` is the zeroth-order empirical entropy of a sequence; ``Hk`` is the
k-th order empirical entropy of a text, defined over length-``k`` contexts:
``Hk(T) = sum_W (n_W / n) * H0(T_W)`` where ``T_W`` concatenates the symbols
of ``T`` that *precede* each occurrence of the context ``W``.  These are the
quantities reported in Table III and used by Theorems 3, 4 and 6.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable, Sequence

import math

import numpy as np


def empirical_entropy_h0(sequence: Sequence[int] | np.ndarray | Iterable[int]) -> float:
    """Zeroth-order empirical entropy ``H0`` in bits per symbol (Eq. 3)."""
    arr = np.asarray(list(sequence) if not isinstance(sequence, np.ndarray) else sequence)
    n = int(arr.size)
    if n == 0:
        return 0.0
    counts = np.unique(arr, return_counts=True)[1].astype(np.float64)
    probabilities = counts / n
    return float(-(probabilities * np.log2(probabilities)).sum())


def empirical_entropy_hk(text: Sequence[int] | np.ndarray, k: int) -> float:
    """k-th order empirical entropy ``Hk`` in bits per symbol (Eq. 4).

    ``k = 0`` degenerates to :func:`empirical_entropy_h0`.  For ``k >= 1`` the
    context of the symbol at position ``i`` is the ``k`` symbols that follow
    it (``T[i+1 .. i+k]``), matching the BWT convention where a context block
    holds the symbols *preceding* each context occurrence.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    arr = np.asarray(text, dtype=np.int64)
    n = int(arr.size)
    if n == 0:
        return 0.0
    if k == 0:
        return empirical_entropy_h0(arr)
    if n <= k:
        return 0.0

    groups: dict[tuple[int, ...], Counter] = defaultdict(Counter)
    for i in range(n - k):
        context = tuple(int(x) for x in arr[i + 1 : i + 1 + k])
        groups[context][int(arr[i])] += 1

    total = 0.0
    for counter in groups.values():
        block_size = sum(counter.values())
        block_entropy = 0.0
        for count in counter.values():
            p = count / block_size
            block_entropy -= p * math.log2(p)
        total += block_size * block_entropy
    return total / n


def entropy_of_distribution(probabilities: Sequence[float]) -> float:
    """Shannon entropy (bits) of an explicit probability distribution."""
    total = 0.0
    for p in probabilities:
        if p < 0:
            raise ValueError("probabilities must be non-negative")
        if p > 0:
            total -= p * math.log2(p)
    return total


def huffman_encoded_bits(sequence: Sequence[int] | np.ndarray) -> int:
    """Exact size in bits of a static Huffman encoding of ``sequence``."""
    from ..succinct import build_huffman_code, frequencies_of

    items = [int(x) for x in sequence]
    if not items:
        return 0
    frequencies = frequencies_of(items)
    if len(frequencies) == 1:
        return len(items)
    code = build_huffman_code(frequencies)
    return code.encoded_length(frequencies)
