"""Dataset statistics (Table III of the paper).

For every dataset the paper reports the trajectory-string length ``|T|``,
``lg sigma``, the entropies ``H0(T)``, ``H0(phi(Tbwt))`` and ``H1(T)`` and the
average ET-graph out-degree ``d-bar``.  :func:`dataset_statistics` computes
all of them for a trajectory string.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.etgraph import ETGraph
from ..core.rml import build_rml, label_bwt
from ..strings.alphabet import FIRST_EDGE_SYMBOL
from ..strings.bwt import BWTResult, burrows_wheeler_transform
from .entropy import empirical_entropy_h0, empirical_entropy_hk


@dataclass
class DatasetStatistics:
    """The Table-III row for one dataset."""

    name: str
    length: int
    sigma: int
    lg_sigma: float
    h0: float
    h0_labelled: float
    h1: float
    average_out_degree: float
    max_out_degree: int
    n_et_edges: int

    def as_row(self) -> dict[str, float | int | str]:
        """Return the statistics as a flat dict for table printing."""
        return {
            "dataset": self.name,
            "|T|": self.length,
            "lg sigma": round(self.lg_sigma, 1),
            "H0(T)": round(self.h0, 2),
            "H0(phi)": round(self.h0_labelled, 2),
            "H1(T)": round(self.h1, 2),
            "d_bar": round(self.average_out_degree, 1),
        }


def dataset_statistics(
    name: str,
    text: np.ndarray,
    sigma: int | None = None,
    bwt_result: BWTResult | None = None,
) -> DatasetStatistics:
    """Compute the Table-III statistics of a trajectory string.

    Parameters
    ----------
    name:
        Dataset name used in reports.
    text:
        The trajectory string (symbols, ending with ``#``).
    sigma:
        Alphabet size; inferred when omitted.
    bwt_result:
        Optionally pass a precomputed BWT to avoid recomputing it.
    """
    if bwt_result is None:
        bwt_result = burrows_wheeler_transform(text, sigma=sigma)
    graph = ETGraph(bwt_result.text, sigma=bwt_result.sigma)
    rml = build_rml(graph, strategy="bigram")
    labelled = label_bwt(bwt_result.bwt, bwt_result.c_array, rml)
    return DatasetStatistics(
        name=name,
        length=bwt_result.length,
        sigma=bwt_result.sigma,
        lg_sigma=math.log2(bwt_result.sigma),
        h0=empirical_entropy_h0(bwt_result.text),
        h0_labelled=empirical_entropy_h0(labelled),
        h1=empirical_entropy_hk(bwt_result.text, 1),
        average_out_degree=graph.average_out_degree(first_edge_symbol=FIRST_EDGE_SYMBOL),
        max_out_degree=graph.max_out_degree(),
        n_et_edges=graph.n_edges,
    )


def compression_ratio(uncompressed_bits: int, compressed_bits: int) -> float:
    """Uncompressed size divided by compressed size (Table IV convention)."""
    if compressed_bits <= 0:
        raise ValueError("compressed size must be positive")
    return uncompressed_bits / compressed_bits


def raw_size_bits(length: int, bytes_per_symbol: int = 4) -> int:
    """Size of the uncompressed dataset as 32-bit integers (Table IV baseline)."""
    return length * bytes_per_symbol * 8
