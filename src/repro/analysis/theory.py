"""Theoretical size and time models from Section V of the paper.

These functions turn the paper's analytical expressions into executable
predictions so that tests and the ablation benchmarks can compare *measured*
index sizes/search costs against the *predicted* ones:

* :func:`rrr_overhead_per_bit` — the practical-RRR class overhead
  ``h(b) = lg(b + 1) / b`` (Eq. 11);
* :func:`hwt_total_bits` / :func:`hwt_overhead_bits` — the HWT payload and its
  RRR overhead ``|S| (1 + H0(S)) h(b)`` (Eq. 12);
* :func:`predicted_cinct_bits` / :func:`predicted_icb_huff_bits` — the
  Section V-B size models for CiNCT and ICB-Huff, whose ratio explains the
  measured size reduction;
* :func:`predicted_rank_operations` — the expected number of bit-wise rank
  operations per symbol-rank call (Theorem 1), the quantity behind the
  "CiNCT is faster because its HWT is shallower" argument;
* :func:`predicted_search_rank_bound` — the ``O(|P| * delta * b)`` bound of
  Theorem 5 expressed as a concrete operation count.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .entropy import empirical_entropy_h0


def rrr_overhead_per_bit(block_size: int) -> float:
    """The practical-RRR overhead ``h(b) = lg(b + 1) / b`` bits per stored bit."""
    if block_size < 1:
        raise ValueError("block_size must be a positive integer")
    return math.log2(block_size + 1) / block_size


def hwt_payload_bits(length: int, h0: float) -> float:
    """Total bit-vector length of an HWT: ``|S| (1 + H0(S))`` (Huffman bound)."""
    return length * (1.0 + h0)


def hwt_overhead_bits(length: int, h0: float, block_size: int) -> float:
    """RRR class overhead summed over the HWT nodes (Eq. 12)."""
    return hwt_payload_bits(length, h0) * rrr_overhead_per_bit(block_size)


def hwt_total_bits(length: int, h0: float, block_size: int) -> float:
    """Payload plus overhead of an HWT with RRR bit vectors."""
    return hwt_payload_bits(length, h0) + hwt_overhead_bits(length, h0, block_size)


def predicted_cinct_bits(
    length: int,
    labelled_h0: float,
    block_size: int,
    et_graph_bits: int = 0,
) -> float:
    """Section V-B size model for CiNCT.

    The wavelet tree stores the *labelled* BWT, so both the payload and the
    RRR overhead are driven by ``H0(phi(Tbwt))``; the (small) ET-graph cost is
    added explicitly when known.
    """
    return hwt_total_bits(length, labelled_h0, block_size) + et_graph_bits


def predicted_icb_huff_bits(length: int, h0: float, block_size: int) -> float:
    """Section V-B size model for ICB-Huff (HWT + RRR over the raw BWT)."""
    return hwt_total_bits(length, h0, block_size)


def predicted_size_reduction(
    length: int,
    h0_raw: float,
    h0_labelled: float,
    block_size: int,
    et_graph_bits: int = 0,
) -> float:
    """Predicted CiNCT size divided by predicted ICB-Huff size (< 1 when RML wins)."""
    cinct = predicted_cinct_bits(length, h0_labelled, block_size, et_graph_bits)
    icb = predicted_icb_huff_bits(length, h0_raw, block_size)
    return cinct / icb


def predicted_rank_operations(sequence: Sequence[int] | np.ndarray) -> float:
    """Expected bit-wise rank operations per symbol rank on an HWT (Theorem 1).

    For a Huffman-shaped tree the expected depth of a symbol drawn from the
    sequence's empirical distribution is at most ``1 + H0(S)``; this function
    returns that bound, which is what makes the labelled BWT faster to query.
    """
    return 1.0 + empirical_entropy_h0(sequence)


def predicted_search_rank_bound(pattern_length: int, max_out_degree: int, block_size: int) -> int:
    """Concrete form of Theorem 5's ``O(|P| * delta * b)`` bound.

    Every pattern symbol triggers at most two PseudoRank calls; each call
    touches at most ``delta + 2`` Huffman levels and every level costs one
    ``O(b)`` bit-wise rank in the practical RRR.
    """
    if pattern_length < 1:
        raise ValueError("pattern_length must be at least 1")
    return 2 * (pattern_length - 1) * (max_out_degree + 2) * block_size


def measured_vs_predicted_ratio(measured_bits: float, predicted_bits: float) -> float:
    """Measured size divided by predicted size (sanity metric used in tests)."""
    if predicted_bits <= 0:
        raise ValueError("predicted_bits must be positive")
    return measured_bits / predicted_bits
