"""Analysis utilities: empirical entropies, dataset statistics and size models."""

from .entropy import (
    empirical_entropy_h0,
    empirical_entropy_hk,
    entropy_of_distribution,
    huffman_encoded_bits,
)
from .stats import DatasetStatistics, compression_ratio, dataset_statistics, raw_size_bits
from .theory import (
    hwt_overhead_bits,
    hwt_payload_bits,
    hwt_total_bits,
    measured_vs_predicted_ratio,
    predicted_cinct_bits,
    predicted_icb_huff_bits,
    predicted_rank_operations,
    predicted_search_rank_bound,
    predicted_size_reduction,
    rrr_overhead_per_bit,
)

__all__ = [
    "empirical_entropy_h0",
    "empirical_entropy_hk",
    "entropy_of_distribution",
    "huffman_encoded_bits",
    "DatasetStatistics",
    "dataset_statistics",
    "compression_ratio",
    "raw_size_bits",
    "rrr_overhead_per_bit",
    "hwt_payload_bits",
    "hwt_overhead_bits",
    "hwt_total_bits",
    "predicted_cinct_bits",
    "predicted_icb_huff_bits",
    "predicted_size_reduction",
    "predicted_rank_operations",
    "predicted_search_rank_bound",
    "measured_vs_predicted_ratio",
]
