"""Process-per-shard execution: long-lived shard workers behind the fan-out.

The thread-pool fan-out keeps every shard's pure-Python plan/merge/resolve
work under one GIL, so ``num_shards`` never meant real cores
(``BENCH_shard_scaling.json`` measured 0.75x at 4 shards on a 1-CPU host and
no better than ~1x on many).  :class:`ProcessShardExecutor` replaces the
threads with a pool of **long-lived worker processes**:

* one worker per populated shard, created lazily at the first fan-out that
  touches the shard and reused across batches — fork/spawn cost is paid once
  per engine, not per query;
* dispatch is the exact localized sub-batch the thread executor hands to
  ``shard.run_many`` — the typed query records are frozen, hashable
  dataclasses, so they pickle canonically and the parent's merge stage
  (:meth:`~repro.engine.sharding.ShardedTrajectoryEngine.run_many`) is
  untouched, keeping answers bit-identical across executors;
* under the (default) ``fork`` start method the child inherits the parent's
  already-built shard engine copy-on-write; with mmap-loaded artefacts
  (``load_index(..., mmap=True)``) the big immutable index arrays are shared
  *pages*, so N workers cost one copy of the index in RSS;
* growth is rare and epoch-tracked: when the parent's shard engine has a
  newer growth epoch than the worker, the worker receives the updated engine
  once (a ``sync`` message) before the batch is dispatched;
* worker death is a first-class, *retryable* event: a crashed worker
  (broken pipe — the ``worker_crash`` fault, a segfault, an OOM kill) raises
  :class:`~repro.engine.reliability.WorkerCrashError`, a worker that blows
  ``shard_deadline`` is SIGKILLed and raises
  :class:`~repro.engine.reliability.ShardTimeoutError` — both respawn the
  worker immediately, record the pid in the attempt history and the respawn
  in :class:`~repro.engine.reliability.ShardHealth`, and a retry budget
  makes the batch recover on the fresh process.  ``degraded_results``
  semantics are exactly the thread executor's.

Workers are daemon processes and additionally reaped by a ``weakref``
finalizer, so dropping the engine (or interpreter exit) leaves no orphans;
``engine.close()`` performs the polite drain.

``REPRO_SHARD_START_METHOD`` overrides the multiprocessing start method
(``fork`` | ``spawn`` | ``forkserver``) — ``fork`` is preferred where
available (zero-copy inheritance); ``spawn`` re-pickles the shard engines and
exists for platforms and tests that need it.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import weakref
from typing import TYPE_CHECKING

from ..reliability import faults
from .queries import EngineQuery, EngineResult
from .reliability import ShardTimeoutError, WorkerCrashError
from .sharding import ShardExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from .engine import TrajectoryEngine
    from .sharding import ShardedTrajectoryEngine

#: Environment override for the worker start method (fork|spawn|forkserver).
START_METHOD_ENV = "REPRO_SHARD_START_METHOD"

#: Bound on shipping an engine to a worker (sync/startup handshakes).  Kept
#: far above any realistic pickle time — it exists so a worker that dies
#: mid-handshake cannot hang the parent forever, not to police slowness.
_HANDSHAKE_TIMEOUT = 120.0


def _resolve_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context workers are created from.

    ``fork`` is preferred where the platform offers it: the child inherits
    the already-built shard engine without pickling, and mmap-backed index
    arrays stay shared pages.  ``REPRO_SHARD_START_METHOD`` forces a specific
    method (the spawn-mode tests use this).
    """
    method = os.environ.get(START_METHOD_ENV, "").strip()
    if method:
        return multiprocessing.get_context(method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _worker_main(conn: "Connection", shard_id: int, engine: "TrajectoryEngine") -> None:
    """Loop of one shard worker process.

    Protocol (all tuples, pickled over the pipe):

    * ``("run", batch, fault)`` → ``("ok", results)`` | ``("error", exc)``.
      ``fault`` is the fault action the parent claimed for this attempt
      (see :func:`repro.reliability.faults.take_shard_fault`); applying it
      *here* makes ``hang`` a genuinely hung process for the deadline kill
      and ``worker_crash`` a genuine mid-batch death.
    * ``("sync", engine)`` → ``("ok", None)`` — adopt a freshly grown shard
      engine (the parent ships it when epochs diverge).
    * ``("stats",)`` → ``("ok", payload)`` — live worker-side cache counters
      (result cache + interval cache).  The worker owns its own engine copy,
      so the parent's shard counters never see worker-side hits; this
      message lets ``worker_rows()`` / ``/stats`` report them.
    * ``("stop",)`` — exit the loop (no reply).

    A vanished parent (EOF on the pipe) also ends the loop, so an abandoned
    worker never outlives its engine.
    """
    # A fork inherits the parent's signal dispositions.  Under ``repro serve``
    # those are asyncio's graceful-drain handlers, which in a child with no
    # event loop swallow SIGTERM outright — multiprocessing's exit-time
    # ``terminate()`` would then never kill the worker and the parent's final
    # ``join()`` would hang.  Restore defaults so the worker dies on SIGTERM,
    # and ignore SIGINT so a terminal Ctrl-C (delivered to the whole process
    # group) cannot masquerade as a mid-batch worker crash.
    try:
        signal.set_wakeup_fd(-1)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread/platform
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent is gone; nothing to serve
        kind = message[0]
        if kind == "stop":
            conn.close()
            return
        if kind == "sync":
            engine = message[1]
            conn.send(("ok", None))
            continue
        if kind == "stats":
            conn.send(
                (
                    "ok",
                    {
                        "cache": engine.cache_stats(),
                        "interval_cache": engine.interval_cache_stats(),
                    },
                )
            )
            continue
        _, batch, fault = message
        try:
            faults.apply_shard_fault(shard_id, fault)
            results = engine.run_many(batch)
        except BaseException as error:
            try:
                conn.send(("error", error))
            except Exception:
                # The exception itself would not pickle; ship its text.
                conn.send(
                    ("error", RuntimeError(f"{type(error).__name__}: {error}"))
                )
            continue
        conn.send(("ok", results))


def _stop_workers(workers: dict[int, "ShardWorker"]) -> None:
    """Finalizer body: drain every worker (must not reference the executor)."""
    for worker in list(workers.values()):
        worker.stop()
    workers.clear()


class ShardWorker:
    """One long-lived worker process bound to one shard.

    Tracks the pipe, the synced growth epoch, and the restart count; the
    executor serializes access through :attr:`lock` (one dispatch at a time
    per worker — concurrent ``run_many`` callers may target the same shard,
    and interleaving two conversations on one pipe would corrupt both).
    """

    def __init__(self, shard_id: int, ctx: multiprocessing.context.BaseContext):
        self.shard_id = int(shard_id)
        self._ctx = ctx
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn: "Connection | None" = None
        self.restarts = 0
        self.epoch = -1
        self.lock = threading.Lock()

    @property
    def pid(self) -> int | None:
        return None if self.process is None else self.process.pid

    @property
    def exitcode(self) -> int | None:
        return None if self.process is None else self.process.exitcode

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def start(self, engine: "TrajectoryEngine") -> None:
        """Fork/spawn the worker around one shard engine (callers hold lock)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.shard_id, engine),
            name=f"repro-shard-worker-{self.shard_id}",
            daemon=True,  # interpreter exit never leaves orphans behind
        )
        process.start()
        child_conn.close()  # the parent's handle on the child end
        self.process = process
        self.conn = parent_conn
        self.epoch = engine.epoch

    def kill(self) -> None:
        """SIGKILL the worker (hung or already dead) and release the pipe."""
        process = self.process
        if process is not None:
            process.kill()
            process.join(timeout=5.0)
        self._drop()

    def stop(self) -> None:
        """Polite shutdown: ask the loop to exit, reap, escalate to kill."""
        if self.conn is not None:
            try:
                self.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass  # already dead; reaping below still applies
        process = self.process
        if process is not None:
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        self._drop()

    def _drop(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - close on a broken pipe
                pass
        self.process = None
        self.conn = None
        self.epoch = -1


class ProcessShardExecutor(ShardExecutor):
    """Fan-out over long-lived shard worker processes
    (``shard_executor="processes"``).

    The dispatch side reuses the base class machinery — parent-side
    coordinator threads bounded by ``EngineConfig.shard_workers`` each run
    one shard's attempt loop — but every attempt is a pipe round-trip to the
    shard's worker instead of an in-process ``run_many``, and the per-attempt
    deadline is enforced for real: ``conn.poll(deadline)`` followed by a
    SIGKILL + respawn, rather than abandoning a thread that keeps burning
    the GIL.
    """

    mode = "processes"
    enforce_deadline = False  # the pipe poll + kill below enforces it

    def __init__(self, engine: "ShardedTrajectoryEngine"):
        super().__init__(engine)
        self._ctx = _resolve_context()
        self._workers: dict[int, ShardWorker] = {}
        self._workers_lock = threading.Lock()
        # The finalizer closes over the dict, never the executor/engine, so
        # a dropped engine still reaps its workers promptly (the daemon flag
        # is the backstop for hard interpreter exits).
        weakref.finalize(self, _stop_workers, self._workers)

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def run_jobs(
        self, jobs: list[tuple[int, list[EngineQuery]]]
    ) -> tuple[dict[int, list[EngineResult]], dict[int, object]]:
        # Fork/sync every needed worker from the coordinating thread before
        # the dispatcher threads start: forking from a single thread avoids
        # inheriting another dispatcher's mid-operation lock state.
        for shard_id, _ in jobs:
            worker = self._worker(shard_id)
            with worker.lock:
                self._sync_worker(worker)
        return super().run_jobs(jobs)

    def attempt(self, shard_id: int, batch: list[EngineQuery]) -> list[EngineResult]:
        worker = self._worker(shard_id)
        deadline = self._engine._policy.deadline
        with worker.lock:
            self._sync_worker(worker)
            # The parent claims the armed fault (decrementing its budget
            # exactly once) and ships the action for the child to apply —
            # env-armed faults propagate into the worker without the child
            # double-reading REPRO_SHARD_FAULT.
            fault = faults.take_shard_fault(shard_id)
            try:
                worker.conn.send(("run", batch, fault))  # type: ignore[union-attr]
            except (BrokenPipeError, OSError):
                raise self._crash(worker)
            if deadline is not None and not worker.conn.poll(deadline):  # type: ignore[union-attr]
                pid = worker.pid
                self._respawn(worker)
                raise ShardTimeoutError(deadline, pid=pid)
            try:
                status, payload = worker.conn.recv()  # type: ignore[union-attr]
            except (EOFError, OSError):
                raise self._crash(worker)
        if status == "ok":
            return payload
        raise payload

    # ------------------------------------------------------------------ #
    # worker lifecycle
    # ------------------------------------------------------------------ #
    def _worker(self, shard_id: int) -> ShardWorker:
        with self._workers_lock:
            worker = self._workers.get(shard_id)
            if worker is None:
                worker = ShardWorker(shard_id, self._ctx)
                self._workers[shard_id] = worker
            return worker

    def _sync_worker(self, worker: ShardWorker) -> None:
        """Start a dead worker / re-ship a grown engine (callers hold lock)."""
        shard = self._engine._shards[worker.shard_id]
        assert shard is not None  # jobs only target populated shards
        if not worker.alive:
            worker.start(shard)
            return
        if worker.epoch == shard.epoch:
            return
        try:
            worker.conn.send(("sync", shard))  # type: ignore[union-attr]
            if not worker.conn.poll(_HANDSHAKE_TIMEOUT):  # type: ignore[union-attr]
                raise EOFError("sync handshake timed out")
            worker.conn.recv()  # type: ignore[union-attr]  # ("ok", None)
        except (EOFError, OSError):
            raise self._crash(worker)
        worker.epoch = shard.epoch

    def _crash(self, worker: ShardWorker) -> WorkerCrashError:
        """Respawn after a broken pipe; the error carries the dead pid."""
        pid, exitcode = worker.pid, worker.exitcode
        self._respawn(worker)
        return WorkerCrashError(worker.shard_id, pid, exitcode)

    def _respawn(self, worker: ShardWorker) -> None:
        """Kill + restart one worker, recording the churn (callers hold lock)."""
        worker.kill()
        worker.restarts += 1
        self._engine._health.record_respawn(worker.shard_id)
        worker.start(self._engine._shards[worker.shard_id])

    # ------------------------------------------------------------------ #
    # observability / lifecycle
    # ------------------------------------------------------------------ #
    def worker_rows(self) -> list[dict[str, object]]:
        with self._workers_lock:
            workers = sorted(self._workers.items())
        return [
            {
                "shard": shard_id,
                "pid": worker.pid,
                "alive": worker.alive,
                "restarts": worker.restarts,
                "epoch": worker.epoch,
                "caches": self._worker_caches(worker),
            }
            for shard_id, worker in workers
        ]

    def _worker_caches(self, worker: ShardWorker) -> dict[str, object] | None:
        """Live worker-side cache counters via the ``stats`` message.

        Best effort: a dead worker, or one mid-dispatch (its lock is held by
        a dispatcher thread), reports ``None`` rather than blocking the
        observability path behind a running batch.
        """
        if not worker.alive:
            return None
        if not worker.lock.acquire(blocking=False):
            return None  # busy serving a batch; skip rather than stall
        try:
            if not worker.alive or worker.conn is None:
                return None
            worker.conn.send(("stats",))
            if not worker.conn.poll(_HANDSHAKE_TIMEOUT):
                return None
            status, payload = worker.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            return None
        finally:
            worker.lock.release()
        return payload if status == "ok" else None

    def close(self) -> None:
        with self._workers_lock:
            _stop_workers(self._workers)
        super().close()


__all__ = [
    "ProcessShardExecutor",
    "ShardWorker",
    "START_METHOD_ENV",
]
