"""Optimize and execute stages of the engine query pipeline.

The normalize stage (:mod:`repro.engine.plan`) turns raw queries into
canonical :class:`~repro.engine.plan.QueryPlan` records; this module finishes
the pipeline:

* :func:`optimize_plans` — the **optimize** stage: dedupe identical plans and
  group the remainder by (query type x capability), so a heterogeneous batch
  becomes one ``count_many`` pass, one ``extract_many`` batch per extraction
  length, and one locate walk per distinct pattern — never a per-query loop;
* :class:`PlanExecutor` — the capability surface a backend must provide to
  execute plans.  The existing :class:`~repro.engine.backends.EngineBackend`
  adapters satisfy it structurally, so every registered backend (and any
  third-party one) is already a plan executor;
* :class:`ResultCache` — a bounded LRU keyed on canonical plans, invalidated
  by the engine's monotonically increasing **growth epoch** (bumped by
  ``add_batch`` / ``consolidate`` and persisted by the index format) and
  additionally budgeted in approximate payload bytes (``cache_max_bytes``),
  so high-frequency locate payloads cannot pin unbounded match sets;
* :class:`IntervalCache` — the second cache tier: an epoch-invalidated LRU
  mapping encoded pattern-prefix tuples to backward-search suffix ranges
  (``(sp, ep)``, or ``None`` for a prefix that never occurs).  Where the
  result cache short-circuits *whole plans*, the interval cache accelerates
  the *search inside* a miss: backends that support interval sharing
  (``supports_interval_sharing``) resume backward search from the deepest
  cached ancestor of each pattern, so incremental one-edge extensions cost a
  single LF step and coalesced batches from different clients warm each
  other;
* :class:`QueryExecutor` — the **execute** stage: serve plans from the cache
  where possible, route the misses through the grouped vectorized paths
  (threading the interval cache into backends that share intervals), and
  fill the cache with what they produce.  Contains plans probe their
  :meth:`~repro.engine.plan.QueryPlan.count_twin` (same batch, then cache)
  before falling back to the backend's early-exit ``contains`` path.

On a sharded fleet (:mod:`repro.engine.sharding`) each shard owns one engine
and therefore one cache and one growth epoch: growing a shard invalidates
*that shard's* entries only, so answers cached for untouched shards survive
`add_batch` on their neighbours.

Cached payloads are plain values (occurrence counts, resolved match tuples,
extracted symbol tuples), never result objects: the engine wraps them back
around the original query at assembly time, so cached and uncached answers
are bit-identical.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

from ..queries.strict_path import StrictPathMatch
from .plan import KIND_CONTAINS, KIND_COUNT, KIND_EXTRACT, KIND_LOCATE, QueryPlan

#: Resolves an encoded pattern to located, timestamp-annotated matches.
#: Provided by the engine (it owns the timestamp store the matches borrow
#: their ``start_time``/``end_time`` from).
MatchResolver = Callable[[tuple[int, ...]], tuple[StrictPathMatch, ...]]


@runtime_checkable
class PlanExecutor(Protocol):
    """What a backend must provide to execute canonical query plans.

    This is the capability-driven execution surface of the pipeline: count
    plans run through :meth:`count_many`, locate plans through
    :meth:`locate_matches`, extract plans through :meth:`extract` /
    :meth:`extract_many`.  :class:`~repro.engine.backends.EngineBackend`
    satisfies the protocol, so adapters never subclass anything new — the
    spec's capability flags (checked at plan time) declare which methods are
    actually callable.
    """

    def count_many(
        self, patterns: Sequence[Sequence[int]], interval_cache=None
    ) -> list[int]: ...

    def contains(self, pattern: Sequence[int], interval_cache=None) -> bool: ...

    def locate_matches(
        self, pattern: Sequence[int], interval_cache=None
    ) -> list[tuple[int, int, int]]: ...

    def extract(self, row: int, length: int) -> list[int]: ...

    def extract_many(self, rows: Sequence[int], length: int) -> list[list[int]]: ...


# --------------------------------------------------------------------------- #
# optimize stage
# --------------------------------------------------------------------------- #
@dataclass
class PlanGroups:
    """Deduplicated plans grouped by (query type x capability)."""

    count: list[QueryPlan] = field(default_factory=list)
    contains: list[QueryPlan] = field(default_factory=list)
    locate: list[QueryPlan] = field(default_factory=list)
    #: extraction plans share one ``extract_many`` batch per length
    extract: "OrderedDict[int, list[QueryPlan]]" = field(default_factory=OrderedDict)

    @property
    def n_plans(self) -> int:
        """Total distinct plans across all groups."""
        return (
            len(self.count)
            + len(self.contains)
            + len(self.locate)
            + sum(len(group) for group in self.extract.values())
        )


def optimize_plans(plans: Iterable[QueryPlan]) -> PlanGroups:
    """Dedupe canonical plans and group them for vectorized execution.

    Input plans must already be canonical (window-stripped); the first
    occurrence of each distinct plan wins, so a batch carrying the same
    pattern as both a count and a contains query — or the same extraction
    twice — does each piece of work exactly once.
    """
    groups = PlanGroups()
    seen: set[QueryPlan] = set()
    for plan in plans:
        if plan in seen:
            continue
        seen.add(plan)
        if plan.kind == KIND_COUNT:
            groups.count.append(plan)
        elif plan.kind == KIND_CONTAINS:
            groups.contains.append(plan)
        elif plan.kind == KIND_LOCATE:
            groups.locate.append(plan)
        elif plan.kind == KIND_EXTRACT:
            groups.extract.setdefault(plan.length, []).append(plan)
        else:  # pragma: no cover - the planner only emits the four kinds
            raise ValueError(f"unknown plan kind: {plan.kind!r}")
    return groups


# --------------------------------------------------------------------------- #
# result cache
# --------------------------------------------------------------------------- #
_MISS = object()

#: Approximate CPython heap cost of a small int / bool payload element.
_INT_BYTES = 28
#: Approximate fixed overhead of a tuple payload (header, before 8B/slot).
_TUPLE_BASE = 56
#: Approximate heap cost of one resolved :class:`StrictPathMatch`.
_MATCH_BYTES = 120


def approximate_payload_bytes(payload: object) -> int:
    """Deterministic size estimate (in bytes) of a cached plan payload.

    Payloads are ints (counts), bools (contains), tuples of ints (extracted
    symbols) or tuples of :class:`StrictPathMatch` (locate / strict-path).
    The constants approximate CPython object sizes; what matters is that the
    estimate is stable and roughly proportional to real memory, so a
    ``cache_max_bytes`` budget evicts the big locate payloads first.
    """
    if isinstance(payload, (bool, int)):
        return _INT_BYTES
    if isinstance(payload, tuple):
        total = _TUPLE_BASE + 8 * len(payload)
        for item in payload:
            total += _MATCH_BYTES if isinstance(item, StrictPathMatch) else _INT_BYTES
        return total
    return _TUPLE_BASE


class ResultCache:
    """Bounded LRU of executed plan payloads, invalidated by growth epoch.

    Keys are canonical :class:`~repro.engine.plan.QueryPlan` records; values
    are the executed payloads (ints, bools, match tuples, symbol tuples).
    The cache belongs to one engine and tracks that engine's growth epoch:
    whenever the epoch it is told about differs from the one its entries were
    computed under, every entry is dropped (the index contents changed, so
    every cached answer is potentially stale).  On a sharded fleet each shard
    engine owns its own cache, so this is exactly the shard-scoped
    invalidation unit.

    Two bounds apply together: ``capacity`` limits the *number* of cached
    plans, ``max_bytes`` (when given) limits the approximate *payload bytes*
    (see :func:`approximate_payload_bytes`) — locate payloads are full match
    tuples, so a count bound alone lets high-frequency paths pin big result
    sets.  A single payload larger than the whole byte budget is never
    stored.

    ``capacity <= 0`` disables caching entirely (every lookup is a miss and
    nothing is stored), which is also what :meth:`disable` switches to at
    runtime — the CLI's ``--no-cache``.

    **Thread safety.**  Every public method takes one internal lock, so
    concurrent ``run_many`` callers — the serving tier's micro-batch worker
    threads, or any threads sharing one engine — can hit the cache together:
    the hit/miss/eviction counters stay consistent, and LRU mutation
    (``move_to_end`` racing ``popitem``) cannot corrupt the ordered dict.
    The lookup→execute→store sequence of one plan is *not* atomic as a
    whole: two threads may both miss the same plan and both execute it.
    That is benign — payloads are deterministic values, so the second
    :meth:`put` overwrites with an identical payload — and deliberately
    cheap: holding a lock across backend execution would serialize callers.
    """

    def __init__(self, capacity: int, epoch: int = 0, max_bytes: int | None = None):
        self._capacity = max(int(capacity), 0)
        self._max_bytes = None if max_bytes is None else max(int(max_bytes), 0)
        self._entries: "OrderedDict[QueryPlan, object]" = OrderedDict()
        self._sizes: dict[QueryPlan, int] = {}
        self._payload_bytes = 0
        self._epoch = int(epoch)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def capacity(self) -> int:
        """Maximum number of cached plans (0 when disabled)."""
        return self._capacity

    @property
    def max_bytes(self) -> int | None:
        """Approximate payload-byte budget (``None`` when unbounded)."""
        return self._max_bytes

    @property
    def payload_bytes(self) -> int:
        """Approximate bytes currently held across all cached payloads."""
        return self._payload_bytes

    @property
    def enabled(self) -> bool:
        """True when the cache stores anything at all."""
        return self._capacity > 0

    @property
    def epoch(self) -> int:
        """Growth epoch the cached entries were computed under."""
        return self._epoch

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def sync_epoch(self, epoch: int) -> None:
        """Adopt the engine's growth epoch, dropping entries if it moved."""
        epoch = int(epoch)
        with self._lock:
            if epoch == self._epoch:
                return
            if self._entries:
                self.invalidations += 1
                self._drop_entries()
            self._epoch = epoch

    def get(self, plan: QueryPlan) -> object:
        """Cached payload for a canonical plan, or the module-private miss."""
        with self._lock:
            payload = self._entries.get(plan, _MISS)
            if payload is _MISS:
                self.misses += 1
                return _MISS
            self._entries.move_to_end(plan)
            self.hits += 1
            return payload

    def peek(self, plan: QueryPlan) -> object:
        """Like :meth:`get`, but an absent key does not count as a miss.

        Used for cross-plan sharing probes (a contains plan consulting its
        count twin): finding the twin is a real hit, not finding it should
        not distort the miss counter of the plan actually being executed.
        """
        with self._lock:
            payload = self._entries.get(plan, _MISS)
            if payload is _MISS:
                return _MISS
            self._entries.move_to_end(plan)
            self.hits += 1
            return payload

    def put(self, plan: QueryPlan, payload: object) -> None:
        """Store one executed payload, evicting the least recently used.

        Eviction keeps going until both bounds hold: at most ``capacity``
        entries and (when ``max_bytes`` is set) at most ``max_bytes``
        approximate payload bytes.
        """
        with self._lock:
            if self._capacity <= 0:
                return
            nbytes = approximate_payload_bytes(payload)
            if self._max_bytes is not None and nbytes > self._max_bytes:
                return  # would evict everything and still not fit
            if plan in self._entries:
                self._payload_bytes -= self._sizes[plan]
                self._entries.move_to_end(plan)
            self._entries[plan] = payload
            self._sizes[plan] = nbytes
            self._payload_bytes += nbytes
            while len(self._entries) > self._capacity or (
                self._max_bytes is not None and self._payload_bytes > self._max_bytes
            ):
                evicted, _ = self._entries.popitem(last=False)
                self._payload_bytes -= self._sizes.pop(evicted)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._drop_entries()

    def disable(self) -> None:
        """Turn the cache off for the rest of this engine's lifetime."""
        with self._lock:
            self._capacity = 0
            self._drop_entries()

    def _drop_entries(self) -> None:
        # Callers hold self._lock.
        self._entries.clear()
        self._sizes.clear()
        self._payload_bytes = 0

    def __getstate__(self) -> dict[str, object]:
        """Picklable snapshot (the lock is recreated on unpickle).

        Shard engines travel to worker processes whole under
        ``shard_executor="processes"`` with the ``spawn`` start method; the
        cache ships its entries so a freshly synced worker starts warm.
        """
        with self._lock:
            state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def stats(self) -> dict[str, int | bool]:
        """Counters for observability (CLI ``query --verbose``, benchmarks)."""
        with self._lock:
            return {
                "enabled": self._capacity > 0,
                "capacity": self._capacity,
                "size": len(self._entries),
                "payload_bytes": self._payload_bytes,
                "max_bytes": self._max_bytes if self._max_bytes is not None else 0,
                "epoch": self._epoch,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


# --------------------------------------------------------------------------- #
# interval cache (second tier)
# --------------------------------------------------------------------------- #
#: An interval-cache key: an encoded pattern-prefix tuple, optionally
#: prefixed with a tier id by the partitioned backend's per-partition views.
IntervalKey = tuple[int, ...]

#: A cached search state: ``(sp, ep)`` for a live prefix, ``None`` for a
#: prefix proven absent from the index.
Interval = "tuple[int, int] | None"


class IntervalCache:
    """Epoch-invalidated LRU of encoded pattern-prefixes → suffix ranges.

    The second cache tier of the query pipeline.  Keys are tuples of encoded
    symbols — the travel-order prefix a backward search has consumed so far
    (the partitioned backend additionally prefixes a tier id per compressed
    partition).  Values are ``(sp, ep)`` suffix ranges, or ``None`` for a
    prefix that provably never occurs, so repeated misses are as warm as
    repeated hits.

    Like the result cache, one interval cache belongs to one engine (one per
    shard on a sharded fleet) and is dropped whole whenever the engine's
    growth epoch moves — a suffix range is a position in the BWT, so *any*
    growth invalidates every entry.  ``capacity <= 0`` disables the cache
    (that is ``EngineConfig.interval_cache_size = 0`` or :meth:`disable`).

    Three lookup surfaces serve the two consumers:

    * :meth:`lookup` — exact-key probe used by the trie executor for every
      trie node: an adopted node is a hit (no rank work), a computed node is
      a miss;
    * :meth:`deepest` — longest-first ancestor probe used by the scalar
      backward search; the whole probe counts one hit *or* one miss, so a
      single query never distorts the counters by its pattern length;
    * :meth:`store` — unconditional insert (never counted), performed for
      every freshly computed search state.

    Thread safety matches :class:`ResultCache`: one lock around every public
    method; lookup→search→store of one prefix is deliberately not atomic
    (ranges are deterministic, so racing writers store identical values).
    """

    def __init__(self, capacity: int, epoch: int = 0):
        self._capacity = max(int(capacity), 0)
        self._entries: "OrderedDict[IntervalKey, tuple[int, int] | None]" = OrderedDict()
        self._epoch = int(epoch)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def capacity(self) -> int:
        """Maximum number of cached prefixes (0 when disabled)."""
        return self._capacity

    @property
    def enabled(self) -> bool:
        """True when the cache stores anything at all."""
        return self._capacity > 0

    @property
    def epoch(self) -> int:
        """Growth epoch the cached ranges were computed under."""
        return self._epoch

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def sync_epoch(self, epoch: int) -> None:
        """Adopt the engine's growth epoch, dropping entries if it moved."""
        epoch = int(epoch)
        with self._lock:
            if epoch == self._epoch:
                return
            if self._entries:
                self.invalidations += 1
                self._entries.clear()
            self._epoch = epoch

    def lookup(self, key: IntervalKey) -> tuple[bool, "tuple[int, int] | None"]:
        """``(found, interval)`` for one prefix key; counts a hit or a miss."""
        with self._lock:
            if self._capacity <= 0:
                return False, None
            interval = self._entries.get(key, _MISS)
            if interval is _MISS:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, interval  # type: ignore[return-value]

    def deepest(
        self, keys: Sequence[IntervalKey]
    ) -> tuple[int, "tuple[int, int] | None"]:
        """Probe ancestor keys (longest first); ``(index, interval)`` or ``(-1, None)``.

        The whole probe counts exactly one hit (the deepest ancestor found)
        or one miss (no ancestor cached), so scalar queries contribute to the
        counters per *query*, not per pattern symbol.
        """
        with self._lock:
            if self._capacity <= 0:
                return -1, None
            for index, key in enumerate(keys):
                interval = self._entries.get(key, _MISS)
                if interval is _MISS:
                    continue
                self._entries.move_to_end(key)
                self.hits += 1
                return index, interval  # type: ignore[return-value]
            self.misses += 1
            return -1, None

    def store(self, key: IntervalKey, interval: "tuple[int, int] | None") -> None:
        """Remember one computed search state (LRU-evicting; never counted)."""
        with self._lock:
            if self._capacity <= 0:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = interval
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def disable(self) -> None:
        """Turn the cache off for the rest of this engine's lifetime."""
        with self._lock:
            self._capacity = 0
            self._entries.clear()

    def __getstate__(self) -> dict[str, object]:
        """Picklable snapshot (the lock is recreated on unpickle).

        Shard engines ship whole to worker processes under
        ``shard_executor="processes"`` with the ``spawn`` start method; the
        interval cache travels with them so freshly synced workers resume
        warm backward searches immediately.
        """
        with self._lock:
            state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def stats(self) -> dict[str, int | bool]:
        """Counters for observability (``query --verbose``, ``/stats``)."""
        with self._lock:
            return {
                "enabled": self._capacity > 0,
                "capacity": self._capacity,
                "size": len(self._entries),
                "epoch": self._epoch,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


# --------------------------------------------------------------------------- #
# execute stage
# --------------------------------------------------------------------------- #
class QueryExecutor:
    """Execute canonical plans against a backend, fronted by the result cache.

    One executor belongs to one engine.  :meth:`execute` is the whole execute
    stage: look every canonical plan up in the cache, run
    :func:`optimize_plans` over the misses, route each group through the
    backend's vectorized path, and return a payload per canonical plan.
    """

    def __init__(
        self,
        backend: PlanExecutor,
        resolver: MatchResolver,
        cache: ResultCache,
        interval_cache: IntervalCache | None = None,
    ):
        self._backend = backend
        self._resolver = resolver
        self._cache = cache
        self._interval_cache = interval_cache
        self._share_intervals = bool(
            getattr(backend, "supports_interval_sharing", False)
        )

    @property
    def cache(self) -> ResultCache:
        """The epoch-invalidated LRU in front of the backend."""
        return self._cache

    @property
    def interval_cache(self) -> IntervalCache | None:
        """The suffix-range interval cache threaded into the backend."""
        return self._interval_cache

    def _interval_kwargs(self) -> dict[str, IntervalCache]:
        """Backend kwargs carrying the interval cache, when it applies.

        Empty for backends without suffix ranges
        (``supports_interval_sharing`` unset) and when the cache is disabled,
        so those backends keep their exact pre-cache call signature.
        """
        cache = self._interval_cache
        if cache is not None and self._share_intervals and cache.enabled:
            return {"interval_cache": cache}
        return {}

    def execute(self, plans: Iterable[QueryPlan]) -> dict[QueryPlan, object]:
        """Payloads for every distinct canonical plan in ``plans``."""
        canonical: list[QueryPlan] = []
        seen: set[QueryPlan] = set()
        for plan in plans:
            key = plan.canonical()
            if key not in seen:
                seen.add(key)
                canonical.append(key)

        payloads: dict[QueryPlan, object] = {}
        misses: list[QueryPlan] = []
        for key in canonical:
            cached = self._cache.get(key)
            if cached is _MISS:
                misses.append(key)
            else:
                payloads[key] = cached

        groups = optimize_plans(misses)
        self._execute_counts(groups.count, payloads)
        # Contains after counts: a count over the same pattern computed in
        # this very batch (or already cached) answers the contains for free.
        self._execute_contains(groups.contains, payloads)
        self._execute_extracts(groups.extract, payloads)
        self._execute_locates(groups.locate, payloads)
        return payloads

    # ------------------------------------------------------------------ #
    # per-group vectorized execution
    # ------------------------------------------------------------------ #
    def _execute_counts(
        self, plans: Sequence[QueryPlan], payloads: dict[QueryPlan, object]
    ) -> None:
        if not plans:
            return
        counts = self._backend.count_many(
            [list(plan.pattern) for plan in plans], **self._interval_kwargs()
        )
        for plan, count in zip(plans, counts):
            payload = int(count)
            payloads[plan] = payload
            self._cache.put(plan, payload)

    def _execute_contains(
        self, plans: Sequence[QueryPlan], payloads: dict[QueryPlan, object]
    ) -> None:
        unresolved: list[QueryPlan] = []
        for plan in plans:
            twin = plan.count_twin()
            count = payloads.get(twin, _MISS)
            if count is _MISS:
                count = self._cache.peek(twin)
            if count is _MISS:
                unresolved.append(plan)
                continue
            payload = int(count) > 0  # type: ignore[call-overload]
            payloads[plan] = payload
            self._cache.put(plan, payload)
        if not unresolved:
            return
        if len(unresolved) == 1:
            # The scalar path keeps the backend's early-exit contains
            # specializations (partitioned any-partition short-circuit,
            # linear-scan first-match stop), not a full count.
            plan = unresolved[0]
            payload = bool(
                self._backend.contains(list(plan.pattern), **self._interval_kwargs())
            )
            payloads[plan] = payload
            self._cache.put(plan, payload)
            return
        # Several distinct contains misses run as one vectorized count_many
        # pass instead of a scalar loop; the counts land in the cache under
        # their count twins too, so later counts over the same paths are warm.
        counts = self._backend.count_many(
            [list(plan.pattern) for plan in unresolved], **self._interval_kwargs()
        )
        for plan, count in zip(unresolved, counts):
            self._cache.put(plan.count_twin(), int(count))
            payload = int(count) > 0
            payloads[plan] = payload
            self._cache.put(plan, payload)

    def _execute_extracts(
        self,
        grouped: "OrderedDict[int, list[QueryPlan]]",
        payloads: dict[QueryPlan, object],
    ) -> None:
        for length, plans in grouped.items():
            if len(plans) == 1:
                # The scalar path keeps the backend's single-row diagnostics
                # (e.g. which BWT position was out of range).
                symbol_lists = [self._backend.extract(plans[0].row, length)]
            else:
                symbol_lists = self._backend.extract_many(
                    [plan.row for plan in plans], length
                )
            for plan, symbols in zip(plans, symbol_lists):
                payload = tuple(int(symbol) for symbol in symbols)
                payloads[plan] = payload
                self._cache.put(plan, payload)

    def _execute_locates(
        self, plans: Sequence[QueryPlan], payloads: dict[QueryPlan, object]
    ) -> None:
        for plan in plans:
            payload = self._resolver(plan.pattern)
            payloads[plan] = payload
            self._cache.put(plan, payload)


__all__ = [
    "MatchResolver",
    "PlanExecutor",
    "PlanGroups",
    "approximate_payload_bytes",
    "optimize_plans",
    "IntervalCache",
    "ResultCache",
    "QueryExecutor",
]
