"""Engine configuration.

:class:`EngineConfig` is the single knob surface of the
:class:`~repro.engine.engine.TrajectoryEngine` facade: it names the backend
(a key of the :mod:`~repro.engine.registry`) and carries every tuning
parameter a backend may consume.  Backends ignore knobs that do not apply to
them (``sa_sample_rate`` means nothing to a linear scan, ``max_partitions``
only matters to the partitioned backend), so one config type serves the whole
registry and round-trips through the persistence layer unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from ..exceptions import ConstructionError

DEFAULT_BACKEND = "cinct"

#: Valid values of :attr:`EngineConfig.shard_executor`.
SHARD_EXECUTORS = ("serial", "threads", "processes")

#: Valid values of :attr:`EngineConfig.compaction`.
COMPACTION_MODES = ("inline", "background", "off")


@dataclass(frozen=True)
class EngineConfig:
    """Construction parameters for a :class:`~repro.engine.TrajectoryEngine`.

    Parameters
    ----------
    backend:
        Registry key of the index backend (see
        :func:`~repro.engine.registry.available_backends`).  Matching is
        case-insensitive and accepts the display aliases (``"CiNCT"``,
        ``"UFMI"``, ...).
    block_size:
        RRR block size ``b`` for the compressed backends.
    sa_sample_rate:
        Suffix-array sampling rate for the CiNCT-family backends.  When set,
        locate walks the LF-mapping to sampled rows (the compressed scheme);
        ``None`` disables sampling (matching the paper's size accounting) and
        locate/strict-path fall back to the retained suffix array instead.
    max_partitions:
        Partitioning knob: when set, the partitioned backend keeps the
        partition count at or below this bound by tiered merging (the
        adjacent pair with the smallest combined length is re-sorted into
        one partition; :meth:`TrajectoryEngine.consolidate` remains the
        explicit full reconstruction).
    tail_max_symbols / tail_max_trajectories:
        Mutable-tail ingest thresholds of the partitioned backend.  Setting
        either (or a non-default ``compaction``) enables the LSM-style tail
        tier: ``add_batch`` becomes an O(batch) append into an uncompressed
        linear-scan tail, which is sealed into a compressed CiNCT partition
        once it holds at least this many symbols / trajectories.  ``None``
        (default) leaves the legacy partition-per-batch growth path.
    compaction:
        How the partitioned backend seals its mutable tail: ``"inline"``
        (default) on the ingesting thread, ``"background"`` on a worker
        thread with a copy-on-seal handoff (queries keep answering over the
        old view until the compacted partition atomically swaps in; only the
        compacted shard's epoch bumps), ``"off"`` never (the tail grows
        unboundedly).  Ignored by non-partitioned backends.
    temporal_index:
        When true (default) and every trajectory carries timestamps, the
        engine builds a :class:`~repro.queries.temporal.TemporalIndex`
        companion used to pre-filter strict-path queries.
    labeling_strategy:
        RML labelling strategy forwarded to CiNCT-family backends
        (``"bigram"``, ``"unigram"`` or ``"random"``).
    cache_size:
        Capacity (in distinct canonical query plans) of the engine's LRU
        result cache.  Repeated queries against an unchanged fleet are served
        from the cache; any growth (``add_batch`` / ``consolidate``) bumps the
        engine epoch and drops every entry.  ``0`` disables caching.
    cache_max_bytes:
        Approximate payload-byte budget of the result cache (on top of the
        ``cache_size`` entry bound).  Locate / strict-path payloads are full
        match tuples, so this keeps high-frequency paths from pinning big
        result sets; ``None`` (default) leaves the byte dimension unbounded.
    interval_cache_size:
        Capacity (in distinct encoded pattern prefixes) of the engine's LRU
        suffix-range interval cache.  Backends with a suffix structure
        (CiNCT family, FM baselines, partitioned) resume backward search
        from the deepest cached ancestor instead of re-deriving the whole
        range, so incremental one-edge pattern extensions cost a single
        LF-step and coalesced batches warm each other.  Invalidation mirrors
        the result cache: any epoch bump drops every entry.  ``0`` disables
        interval sharing.
    num_shards:
        Number of fleet shards.  ``1`` (default) builds a plain
        :class:`~repro.engine.TrajectoryEngine`; larger values make
        :func:`~repro.engine.sharding.build_engine` construct a
        :class:`~repro.engine.sharding.ShardedTrajectoryEngine` whose shards
        each run this config with ``num_shards`` reset to 1.  Trajectories
        are routed round-robin by global id, stable across growth and reload.
    shard_workers:
        Bound on the fleet layer's fan-out concurrency (threads for the
        ``threads`` executor, parent-side dispatchers for ``processes``).
        ``None`` (default) uses ``min(num_shards, cpu_count)`` workers; ``1``
        forces sequential fan-out.  Ignored by unsharded engines.
    shard_executor:
        Fan-out execution strategy of the fleet layer.  ``"threads"``
        (default) runs per-shard batches on a thread pool, ``"processes"``
        dispatches them to a pool of long-lived shard worker processes (one
        per populated shard, forked/spawned once and reused across batches —
        real parallelism for the GIL-bound plan/merge work), and
        ``"serial"`` runs shards inline on the calling thread.  Results are
        bit-identical across all three.  Ignored by unsharded engines.
    shard_deadline:
        Seconds one per-shard fan-out attempt may run before it is abandoned
        with a timeout (and retried if budget remains).  ``None`` (default)
        disables deadline enforcement.  Ignored by unsharded engines.
    shard_retries:
        Extra fan-out attempts per shard after the first fails with a
        retryable error (timeout or unexpected backend exception), with
        exponential backoff and jitter between attempts.  ``0`` (default)
        fails on the first error.  Ignored by unsharded engines.
    degraded_results:
        When ``True``, a shard that exhausts its retry budget is dropped and
        the surviving shards' answers are merged into results flagged
        ``degraded=True`` with the failed shards listed — callers can
        distinguish partial from complete answers.  ``False`` (default)
        fails fast with one :class:`~repro.exceptions.ShardExecutionError`
        naming the shard and its attempt history.  Ignored by unsharded
        engines.
    """

    backend: str = DEFAULT_BACKEND
    block_size: int = 63
    sa_sample_rate: int | None = None
    max_partitions: int | None = None
    tail_max_symbols: int | None = None
    tail_max_trajectories: int | None = None
    compaction: str = "inline"
    temporal_index: bool = True
    labeling_strategy: str = "bigram"
    cache_size: int = 1024
    cache_max_bytes: int | None = None
    interval_cache_size: int = 1024
    num_shards: int = 1
    shard_workers: int | None = None
    shard_executor: str = "threads"
    shard_deadline: float | None = None
    shard_retries: int = 0
    degraded_results: bool = False

    def __post_init__(self) -> None:
        if not self.backend or not str(self.backend).strip():
            raise ConstructionError("the backend name must be a non-empty string")
        if self.block_size < 1:
            raise ConstructionError(f"block_size must be positive, got {self.block_size}")
        if self.sa_sample_rate is not None and self.sa_sample_rate < 1:
            raise ConstructionError(
                f"sa_sample_rate must be a positive integer when given, got {self.sa_sample_rate}"
            )
        if self.max_partitions is not None and self.max_partitions < 1:
            raise ConstructionError(
                f"max_partitions must be at least 1 when given, got {self.max_partitions}"
            )
        if self.tail_max_symbols is not None and self.tail_max_symbols < 1:
            raise ConstructionError(
                f"tail_max_symbols must be at least 1 when given, got {self.tail_max_symbols}"
            )
        if self.tail_max_trajectories is not None and self.tail_max_trajectories < 1:
            raise ConstructionError(
                "tail_max_trajectories must be at least 1 when given, "
                f"got {self.tail_max_trajectories}"
            )
        if self.compaction not in COMPACTION_MODES:
            raise ConstructionError(
                f"compaction must be one of {sorted(COMPACTION_MODES)}, "
                f"got {self.compaction!r}"
            )
        if self.cache_size < 0:
            raise ConstructionError(
                f"cache_size must be non-negative (0 disables), got {self.cache_size}"
            )
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ConstructionError(
                f"cache_max_bytes must be positive when given, got {self.cache_max_bytes}"
            )
        if self.interval_cache_size < 0:
            raise ConstructionError(
                "interval_cache_size must be non-negative (0 disables), "
                f"got {self.interval_cache_size}"
            )
        if self.num_shards < 1:
            raise ConstructionError(
                f"num_shards must be at least 1, got {self.num_shards}"
            )
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ConstructionError(
                f"shard_workers must be at least 1 when given, got {self.shard_workers}"
            )
        if self.shard_executor not in SHARD_EXECUTORS:
            raise ConstructionError(
                f"shard_executor must be one of {sorted(SHARD_EXECUTORS)}, "
                f"got {self.shard_executor!r}"
            )
        if self.shard_deadline is not None and self.shard_deadline <= 0:
            raise ConstructionError(
                f"shard_deadline must be positive when given, got {self.shard_deadline}"
            )
        if self.shard_retries < 0:
            raise ConstructionError(
                f"shard_retries must be non-negative, got {self.shard_retries}"
            )

    def as_dict(self) -> dict[str, object]:
        """JSON-safe representation, used by the persistence layer."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "EngineConfig":
        """Rebuild a config from :meth:`as_dict` output (unknown keys rejected)."""
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConstructionError(f"unknown EngineConfig fields: {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]
