"""String-keyed backend registry for the engine facade.

Every index implementation in the repository registers itself here as a
:class:`BackendSpec`.  The spec names the backend, declares its capabilities
(so the facade can reject unsupported queries with a uniform error), and
provides two callables the engine and the persistence layer dispatch through:

* ``factory(trajectories, config)`` builds a fresh
  :class:`~repro.engine.backends.EngineBackend` from raw edge trajectories;
* ``loader(directory, meta, config)`` rebuilds one from the state a previous
  :meth:`~repro.engine.backends.EngineBackend.save_state` call wrote to disk.

Third-party backends can join the registry with :func:`register_backend`; the
CLI, the comparison harness and the contract test suite all enumerate
:func:`available_backends` instead of hard-coding variant lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

from ..exceptions import ConstructionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .backends import EngineBackend
    from .config import EngineConfig

BackendFactory = Callable[[Sequence[Sequence[Hashable]], "EngineConfig"], "EngineBackend"]
#: ``loader(directory, meta, config, alphabet)`` — rebuilds a backend from disk.
BackendLoader = Callable[..., "EngineBackend"]


@dataclass(frozen=True)
class BackendSpec:
    """Registry entry describing one index backend.

    Attributes
    ----------
    name:
        Canonical registry key (lower-case, e.g. ``"icb-huff"``).
    display_name:
        Human-readable name used in tables and CLI output (``"ICB-Huff"``).
    factory, loader:
        Build / reload callables dispatched by the engine and persistence
        layers (see the module docstring).
    description:
        One-line summary shown by ``repro-cinct compare`` documentation.
    aliases:
        Extra accepted spellings (matched case-insensitively).
    supports_locate, supports_extract, supports_growth:
        Capability flags: whether the backend can report occurrence positions
        (and therefore answer strict-path queries), extract sub-paths by BWT
        row, and grow via :meth:`~repro.engine.TrajectoryEngine.add_batch`.
    """

    name: str
    display_name: str
    factory: BackendFactory
    loader: BackendLoader
    description: str = ""
    aliases: tuple[str, ...] = ()
    supports_locate: bool = True
    supports_extract: bool = True
    supports_growth: bool = False


_REGISTRY: dict[str, BackendSpec] = {}
_ALIASES: dict[str, str] = {}


def _normalise(name: str) -> str:
    return str(name).strip().lower()


def register_backend(spec: BackendSpec, replace: bool = False) -> BackendSpec:
    """Add a backend to the registry (``replace=True`` to override an entry)."""
    key = _normalise(spec.name)
    if not key:
        raise ConstructionError("a backend spec needs a non-empty name")
    if not replace and (key in _REGISTRY or key in _ALIASES):
        raise ConstructionError(f"backend {spec.name!r} is already registered")
    _REGISTRY[key] = spec
    for alias in (spec.display_name, *spec.aliases):
        alias_key = _normalise(alias)
        if alias_key != key:
            existing = _ALIASES.get(alias_key)
            if not replace and existing is not None and existing != key:
                raise ConstructionError(
                    f"alias {alias!r} already points at backend {existing!r}"
                )
            _ALIASES[alias_key] = key
    return spec


def backend_spec(name: str) -> BackendSpec:
    """Look up a backend by key, display name or alias (case-insensitive)."""
    key = _normalise(name)
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConstructionError(
            f"unknown index backend: {name!r} (available: {', '.join(available_backends())})"
        ) from None


def available_backends() -> list[str]:
    """Canonical keys of every registered backend, sorted alphabetically.

    The order is deterministic regardless of import/registration order, so
    CLI output, parametrized test IDs and anything else that enumerates the
    registry is stable across runs and processes.
    """
    return sorted(_REGISTRY)


def backend_specs() -> list[BackendSpec]:
    """Every registered spec, in :func:`available_backends` order."""
    return [_REGISTRY[key] for key in available_backends()]


__all__ = [
    "BackendSpec",
    "register_backend",
    "backend_spec",
    "available_backends",
    "backend_specs",
]
