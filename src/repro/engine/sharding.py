"""Sharded fleet layer: shard-routed engines with concurrent fan-out/merge.

One :class:`~repro.engine.TrajectoryEngine` owning an entire fleet stops
scaling long before "millions of users": every ``add_batch`` invalidates one
global result cache, and nothing executes across more than one index at a
time.  This module shards the fleet instead:

* :class:`ShardRouter` — a deterministic round-robin trajectory→shard
  assignment.  Global trajectory ``g`` lives on shard ``g % num_shards`` as
  that shard's local trajectory ``g // num_shards``; the mapping is a pure
  function of the global id, so it is stable across growth (arrivals keep
  their global order) and across save/reload (ids persist with the shards).
* :class:`ShardedTrajectoryEngine` — owns ``num_shards`` inner
  :class:`~repro.engine.TrajectoryEngine` shards behind the same query
  surface.  Every query is planned once against the *whole* fleet (a
  :class:`~repro.engine.plan.QueryPlanner` over a fleet view: global
  alphabet, total length, total trajectory count), so validation raises the
  exact errors an unsharded engine would; fan-out queries then run on every
  eligible shard through the configured :class:`ShardExecutor` strategy
  (``EngineConfig.shard_executor``: a bounded thread pool by default, a pool
  of long-lived shard worker *processes* via
  :mod:`repro.engine.workers`, or inline serial execution — all bounded by
  ``EngineConfig.shard_workers``), and single-shard plans (extraction by
  global BWT row) are routed straight to the owning shard via the plan's
  shard hint.
* merge rules that keep answers **bit-identical** to an unsharded engine on
  the same fleet: counts sum, contains ORs, locate / strict-path matches are
  remapped from local to global trajectory ids and re-sorted into the
  canonical ``(trajectory, start, end)`` order, extraction payloads come back
  from the routed shard unchanged.

Because each shard is a full engine, each shard owns its own result cache and
growth epoch: ``add_batch`` bumps only the shards that actually received
trajectories, so cached answers for untouched shards survive growth — the
shard-scoped cache invalidation the monolithic engine could not offer.

Extraction rows on a sharded fleet address the **concatenation of the
per-shard BWT row spaces** (shard 0's rows first, then shard 1's, ...); with
``num_shards=1`` this coincides with the unsharded row space.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from itertools import accumulate
import os
import weakref
from typing import Hashable, Iterable, Sequence

from ..exceptions import (
    EMPTY_INDEX_MESSAGE,
    ConstructionError,
    QueryError,
    ShardExecutionError,
)
from ..queries.strict_path import StrictPathMatch
from ..reliability import faults
from ..strings.alphabet import Alphabet
from ..trajectories.model import Trajectory, TrajectoryDataset
from .config import EngineConfig
from .engine import (
    ScalarQueryAPI,
    TrajectoryEngine,
    _normalise_trajectories,
    validate_monotonic_timestamps,
)
from .plan import KIND_EXTRACT, QueryPlan, QueryPlanner
from .reliability import (
    ShardHealth,
    ShardPolicy,
    attempt_from_error,
    run_shard_attempts,
)
from .queries import (
    ContainsQuery,
    ContainsResult,
    CountQuery,
    CountResult,
    EngineQuery,
    EngineResult,
    ExtractQuery,
    ExtractResult,
    LocateQuery,
    LocateResult,
    StrictPathQuery,
    StrictPathResult,
)
from .registry import BackendSpec, backend_spec


class ShardRouter:
    """Deterministic round-robin trajectory→shard assignment.

    The mapping is a bijection between global ids and ``(shard, local id)``
    pairs — ``global = local * num_shards + shard`` — computed from the id
    alone.  Because the unsharded engine numbers trajectories by arrival
    order and the router preserves arrival order within each shard, a match
    found on shard ``s`` at local trajectory ``k`` is *the same trajectory*
    the unsharded engine calls ``k * num_shards + s``; remapping ids is all
    the merge stage needs to be bit-identical.
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ConstructionError(f"num_shards must be at least 1, got {num_shards}")
        self._num_shards = int(num_shards)

    @property
    def num_shards(self) -> int:
        """Number of shards routed over."""
        return self._num_shards

    def shard_of(self, global_id: int) -> int:
        """The shard owning a global trajectory id."""
        return int(global_id) % self._num_shards

    def local_of(self, global_id: int) -> int:
        """The shard-local trajectory id of a global trajectory id."""
        return int(global_id) // self._num_shards

    def global_of(self, shard: int, local_id: int) -> int:
        """The global trajectory id of shard-local trajectory ``local_id``."""
        return int(local_id) * self._num_shards + int(shard)

    def split(self, items: Sequence, first_global_id: int) -> list[list]:
        """Partition arriving items (in global order) into per-shard lists.

        ``first_global_id`` is the global id of ``items[0]`` (the fleet size
        before this batch), so repeated calls route a growing stream exactly
        like one big build would.
        """
        assigned: list[list] = [[] for _ in range(self._num_shards)]
        for offset, item in enumerate(items):
            assigned[self.shard_of(first_global_id + offset)].append(item)
        return assigned

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ShardRouter(num_shards={self._num_shards})"


class _FleetView:
    """Planner-facing view of the whole sharded fleet.

    Exposes exactly the surface :class:`~repro.engine.plan.QueryPlanner`
    consults — global alphabet, total trajectory count, total string length —
    so the sharded engine runs the *same* normalize stage (same checks, same
    canonical messages, same order) as an unsharded engine over the union of
    the shards.
    """

    def __init__(self, engine: "ShardedTrajectoryEngine"):
        self._engine = engine

    @property
    def alphabet(self) -> Alphabet:
        return self._engine.alphabet

    @property
    def n_trajectories(self) -> int:
        return self._engine.n_trajectories

    @property
    def length(self) -> int:
        return self._engine.length


class _FleetTimestampView:
    """Read-only timestamp-store view over every shard's store.

    Serves the planner (the ``any_timestamped`` window check) and callers of
    the engine-level ``timestamp_store`` surface (e.g. the CLI's build
    summary) with fleet-wide aggregates.
    """

    def __init__(self, engine: "ShardedTrajectoryEngine"):
        self._engine = engine

    @property
    def any_timestamped(self) -> bool:
        return any(
            shard.timestamp_store.any_timestamped
            for shard in self._engine.shards
            if shard is not None
        )

    @property
    def n_timestamped(self) -> int:
        return sum(
            shard.timestamp_store.n_timestamped
            for shard in self._engine.shards
            if shard is not None
        )

    @property
    def n_trajectories(self) -> int:
        return sum(
            shard.timestamp_store.n_trajectories
            for shard in self._engine.shards
            if shard is not None
        )

    def size_in_bits(self) -> int:
        return self._engine.temporal_size_in_bits()


# --------------------------------------------------------------------------- #
# fan-out executors
# --------------------------------------------------------------------------- #
class ShardExecutor:
    """Strategy surface behind the fleet fan-out (``EngineConfig.shard_executor``).

    One executor belongs to one :class:`ShardedTrajectoryEngine` and turns a
    list of ``(shard_id, sub-batch)`` jobs into per-shard results, each job
    running under the engine's live
    :class:`~repro.engine.reliability.ShardPolicy` (deadline, bounded
    retries).  Three implementations share the surface:

    * :class:`SerialShardExecutor` — every job inline on the calling thread;
    * :class:`ThreadShardExecutor` — a bounded thread pool (the default, and
      exactly the pre-executor fan-out semantics);
    * :class:`~repro.engine.workers.ProcessShardExecutor` — long-lived shard
      worker processes fed over pipes, for real parallelism on the
      GIL-bound plan/merge work.

    Answers are bit-identical across all three — only *where* each shard's
    ``run_many`` executes differs.  Subclasses override :meth:`attempt` (one
    try at one shard — the fault-injection point), and optionally
    :meth:`worker_rows` / :meth:`close` when they own OS resources.
    """

    #: Name reported by ``health()`` / ``stats()`` and the CLI.
    mode = "abstract"
    #: Whether :func:`run_shard_attempts` should enforce ``policy.deadline``
    #: with its watchdog thread.  Executors that bound attempts themselves
    #: (the process executor polls the worker pipe and kills the child)
    #: turn this off and raise their own ``ShardTimeoutError``.
    enforce_deadline = True
    #: Whether jobs may run concurrently (the serial executor turns this off).
    concurrent = True

    def __init__(self, engine: "ShardedTrajectoryEngine"):
        self._engine = engine
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # the subclass hook
    # ------------------------------------------------------------------ #
    def attempt(self, shard_id: int, batch: list[EngineQuery]) -> list[EngineResult]:
        """One fan-out attempt on one shard (the fault-injection point)."""
        faults.maybe_inject_shard_fault(shard_id)
        return self._engine._shards[shard_id].run_many(batch)  # type: ignore[union-attr]

    # ------------------------------------------------------------------ #
    # job execution
    # ------------------------------------------------------------------ #
    def run_jobs(
        self, jobs: list[tuple[int, list[EngineQuery]]]
    ) -> tuple[dict[int, list[EngineResult]], dict[int, ShardExecutionError]]:
        """Run every per-shard job, concurrently when it pays.

        Returns surviving results keyed by shard plus the canonical error of
        every shard that exhausted its budget.  The inline path (one job, one
        worker, or a serial executor) fails fast — later shards are not
        consulted once a shard fails with degraded merges off — while the
        pooled path collects every outcome (they were already in flight).
        """
        engine = self._engine
        shard_results: dict[int, list[EngineResult]] = {}
        failures: dict[int, ShardExecutionError] = {}
        if not self.concurrent or len(jobs) <= 1 or engine._max_workers() == 1:
            for shard_id, batch in jobs:
                try:
                    shard_results[shard_id] = self._run_shard(shard_id, batch)
                except ShardExecutionError as error:
                    failures[shard_id] = error
                    if not engine._config.degraded_results:
                        break  # fail fast; later shards are not consulted
        else:
            pool = self._ensure_pool()
            futures = {
                shard_id: pool.submit(self._run_shard, shard_id, batch)
                for shard_id, batch in jobs
            }
            for shard_id, future in futures.items():
                try:
                    shard_results[shard_id] = future.result()
                except ShardExecutionError as error:
                    failures[shard_id] = error
        return shard_results, failures

    def _run_shard(self, shard_id: int, batch: list[EngineQuery]) -> list[EngineResult]:
        """Execute one shard's sub-batch under the engine's reliability policy."""
        engine = self._engine
        return run_shard_attempts(
            shard_id,
            lambda: self.attempt(shard_id, batch),
            engine._policy,
            operation="fan-out",
            rng=engine._rng,
            enforce_deadline=self.enforce_deadline,
        )

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Locked: concurrent run_many callers (the serving tier's worker
        # threads) may race the first fan-out, and two pools would leak one.
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._engine._max_workers(),
                    thread_name_prefix="repro-shard",
                )
                # Engines are often loaded, used and dropped (services
                # reloading their index); release the threads when the
                # executor is collected rather than requiring close().
                weakref.finalize(self, self._pool.shutdown, wait=False)
            return self._pool

    # ------------------------------------------------------------------ #
    # observability / lifecycle
    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, object]:
        """JSON-safe executor snapshot for ``health()`` / ``stats()``."""
        return {
            "mode": self.mode,
            "max_workers": self._engine._max_workers(),
            "workers": self.worker_rows(),
        }

    def worker_rows(self) -> list[dict[str, object]]:
        """Per-worker-process rows (empty for the in-process executors)."""
        return []

    def close(self) -> None:
        """Release pools/processes; the engine recreates lazily on next use."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class SerialShardExecutor(ShardExecutor):
    """Inline fan-out on the calling thread (``shard_executor="serial"``).

    No pools, no threads, no processes — the deterministic baseline the
    parity suites compare the concurrent executors against, and the cheapest
    choice for single-shard fleets or debugging.
    """

    mode = "serial"
    concurrent = False


class ThreadShardExecutor(ShardExecutor):
    """Thread-pool fan-out (``shard_executor="threads"``, the default).

    Inherits the base behaviour unchanged: sub-batches run on a bounded
    :class:`~concurrent.futures.ThreadPoolExecutor` once more than one job is
    in flight and more than one worker is allowed.  Best when the per-shard
    work releases the GIL (NumPy-heavy backends) or the fleet is small.
    """

    mode = "threads"


class ShardedTrajectoryEngine(ScalarQueryAPI):
    """N shard-routed :class:`TrajectoryEngine` instances behind one facade.

    Construction mirrors the unsharded engine (:meth:`build` / :meth:`load` /
    :meth:`save`), queries mirror it too (scalar helpers, :meth:`run`,
    :meth:`run_many`), and every answer is bit-identical to an unsharded
    engine built over the same fleet in the same order — except extraction
    row addressing, which concatenates the per-shard row spaces (see the
    module docstring).

    Shards for backends that cannot grow are only materialised when the
    router assigns them at least one trajectory; growth-capable backends get
    a (possibly empty) engine per shard up front so ``add_batch`` can route
    into any of them.
    """

    def __init__(
        self,
        shards: Sequence[TrajectoryEngine | None],
        config: EngineConfig,
        alphabet: Alphabet,
    ):
        if len(shards) != config.num_shards:
            raise ConstructionError(
                f"config names {config.num_shards} shards but {len(shards)} were supplied"
            )
        self._shards: list[TrajectoryEngine | None] = list(shards)
        self._config = config
        self._spec = backend_spec(config.backend)
        self._router = ShardRouter(config.num_shards)
        self._alphabet = alphabet
        self._store_view = _FleetTimestampView(self)
        self._planner = QueryPlanner(
            _FleetView(self),  # type: ignore[arg-type]
            self._spec,
            self._store_view,  # type: ignore[arg-type]
        )
        self._executor_impl: ShardExecutor | None = None
        self._executor_lock = threading.Lock()
        self._policy = ShardPolicy.from_config(config)
        self._health = ShardHealth(config.num_shards)
        self._rng = random.Random()  # backoff jitter only; never affects answers

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
        config: EngineConfig | None = None,
    ) -> "ShardedTrajectoryEngine":
        """Build a sharded fleet from raw trajectories and a config."""
        config = config or EngineConfig()
        spec = backend_spec(config.backend)
        edges, timestamps = _normalise_trajectories(trajectories)
        if not edges and not spec.supports_growth:
            raise ConstructionError(
                "cannot build a trajectory string from zero trajectories"
            )
        # Global validation first so error messages carry global ids.
        validate_monotonic_timestamps(timestamps, first_id=0)
        alphabet = Alphabet.from_trajectories(edges)
        router = ShardRouter(config.num_shards)
        assigned = router.split(list(zip(edges, timestamps)), first_global_id=0)
        inner_config = replace(config, num_shards=1)
        shards: list[TrajectoryEngine | None] = []
        for batch in assigned:
            if not batch and not spec.supports_growth:
                shards.append(None)
                continue
            shards.append(
                TrajectoryEngine.build(
                    [Trajectory(edges=e, timestamps=t) for e, t in batch],
                    inner_config,
                )
            )
        return cls(shards, config, alphabet)

    @classmethod
    def load(cls, directory, *, mmap: bool = False) -> "ShardedTrajectoryEngine":
        """Reload a sharded fleet persisted with :meth:`save`.

        ``mmap=True`` maps each shard's immutable arrays read-only from its
        archives (see :func:`repro.io.load_index`) — with the process
        executor, shard workers forked from this parent then share one
        physical copy of the index pages.
        """
        from ..io.index_io import load_index

        engine = load_index(directory, mmap=mmap)
        if not isinstance(engine, cls):
            raise ConstructionError(
                f"{directory} holds an unsharded engine; load it with "
                "TrajectoryEngine.load (or repro.io.load_index)"
            )
        return engine

    def save(self, directory) -> None:
        """Persist the fleet: a shard manifest plus one subdirectory per shard."""
        from ..io.index_io import save_index

        save_index(self, directory)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> EngineConfig:
        """The construction configuration (``num_shards`` > 1)."""
        return self._config

    @property
    def spec(self) -> BackendSpec:
        """The registry spec of the backend every shard runs."""
        return self._spec

    @property
    def backend_name(self) -> str:
        """Canonical registry key of the shards' backend."""
        return self._spec.name

    @property
    def router(self) -> ShardRouter:
        """The deterministic trajectory→shard router."""
        return self._router

    @property
    def shards(self) -> tuple[TrajectoryEngine | None, ...]:
        """The inner shard engines (``None`` for never-populated shards)."""
        return tuple(self._shards)

    @property
    def num_shards(self) -> int:
        """Number of fleet shards."""
        return self._router.num_shards

    @property
    def alphabet(self) -> Alphabet:
        """Global alphabet over every shard (arrival-ordered, persisted)."""
        return self._alphabet

    @property
    def sigma(self) -> int:
        """Global alphabet size (distinct edges + the two special symbols)."""
        return self._alphabet.sigma

    @property
    def length(self) -> int:
        """Total indexed trajectory-string length across all shards."""
        return sum(shard.length for shard in self._present_shards())

    @property
    def n_trajectories(self) -> int:
        """Total number of indexed trajectories across all shards."""
        return sum(shard.n_trajectories for shard in self._present_shards())

    @property
    def n_partitions(self) -> int:
        """Total backend partitions across all shards."""
        return sum(shard.n_partitions for shard in self._present_shards())

    @property
    def epoch(self) -> int:
        """Total growth across the fleet (the sum of per-shard epochs)."""
        return sum(self.epochs)

    @property
    def epochs(self) -> tuple[int, ...]:
        """Per-shard growth epochs (0 for never-populated shards)."""
        return tuple(
            0 if shard is None else shard.epoch for shard in self._shards
        )

    def size_in_bits(self) -> int:
        """Total index size (including temporal storage) across all shards."""
        return sum(shard.size_in_bits() for shard in self._present_shards())

    def temporal_size_in_bits(self) -> int:
        """Total exact timestamp-store size across all shards."""
        return sum(shard.temporal_size_in_bits() for shard in self._present_shards())

    def bits_per_symbol(self) -> float:
        """Fleet index size divided by total trajectory-string length."""
        length = self.length
        if length == 0:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        return self.size_in_bits() / length

    def cache_stats(self) -> dict[str, int | bool]:
        """Fleet-wide result-cache counters (summed over the shards)."""
        merged: dict[str, int | bool] = {
            "enabled": False,
            "capacity": 0,
            "size": 0,
            "payload_bytes": 0,
            "max_bytes": 0,
            "epoch": self.epoch,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 0,
        }
        for stats in self.shard_cache_stats():
            merged["enabled"] = bool(merged["enabled"]) or bool(stats["enabled"])
            for key in (
                "capacity",
                "size",
                "payload_bytes",
                "max_bytes",
                "hits",
                "misses",
                "evictions",
                "invalidations",
            ):
                merged[key] = int(merged[key]) + int(stats[key])
        return merged

    def shard_cache_stats(self) -> list[dict[str, int | bool]]:
        """Per-shard cache counters, in shard order (empty shards skipped)."""
        return [shard.cache_stats() for shard in self._present_shards()]

    def disable_cache(self) -> None:
        """Turn every shard's result cache off (the CLI's ``--no-cache``)."""
        for shard in self._present_shards():
            shard.disable_cache()

    def interval_cache_stats(self) -> dict[str, int | bool]:
        """Fleet-wide interval-cache counters (summed over the shards)."""
        merged: dict[str, int | bool] = {
            "enabled": False,
            "capacity": 0,
            "size": 0,
            "epoch": self.epoch,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 0,
        }
        for stats in self.shard_interval_cache_stats():
            merged["enabled"] = bool(merged["enabled"]) or bool(stats["enabled"])
            for key in (
                "capacity",
                "size",
                "hits",
                "misses",
                "evictions",
                "invalidations",
            ):
                merged[key] = int(merged[key]) + int(stats[key])
        return merged

    def shard_interval_cache_stats(self) -> list[dict[str, int | bool]]:
        """Per-shard interval-cache counters (empty shards skipped)."""
        return [shard.interval_cache_stats() for shard in self._present_shards()]

    def disable_interval_cache(self) -> None:
        """Turn every shard's interval cache off."""
        for shard in self._present_shards():
            shard.disable_interval_cache()

    @property
    def policy(self) -> ShardPolicy:
        """The per-shard execution policy the fan-out runs under."""
        return self._policy

    def configure_reliability(
        self,
        *,
        deadline: float | None = None,
        retries: int | None = None,
        degraded_results: bool | None = None,
    ) -> None:
        """Override fan-out reliability knobs on a live fleet.

        The query-time counterpart of the build-time
        :class:`~repro.engine.config.EngineConfig` fields (a reloaded index
        carries the config it was built with; the CLI's ``query`` flags land
        here).  ``None`` leaves a knob unchanged; validation runs through the
        config's own ``__post_init__``.
        """
        updates: dict[str, object] = {}
        if deadline is not None:
            updates["shard_deadline"] = deadline
        if retries is not None:
            updates["shard_retries"] = retries
        if degraded_results is not None:
            updates["degraded_results"] = degraded_results
        if not updates:
            return
        self._config = replace(self._config, **updates)
        self._policy = ShardPolicy.from_config(self._config)

    def health(self) -> dict[str, object]:
        """Fleet health: per-shard status, failure streaks, epochs, caches.

        The surface a service tier polls to decide routing/alerting: each
        shard row carries its reliability counters (from the fan-out's
        success/failure bookkeeping), its growth epoch, population, and its
        result-cache stats; the top level echoes the active policy and
        whether degraded merges are enabled.
        """
        executor = self.executor_info()
        worker_rows = {
            row["shard"]: row for row in executor["workers"]  # type: ignore[index]
        }
        rows: list[dict[str, object]] = []
        for shard_id, (shard, stats) in enumerate(
            zip(self._shards, self._health.snapshot())
        ):
            row: dict[str, object] = {"shard": shard_id}
            row.update(stats)
            row["populated"] = shard is not None
            row["epoch"] = 0 if shard is None else shard.epoch
            row["n_trajectories"] = 0 if shard is None else shard.n_trajectories
            row["cache"] = None if shard is None else shard.cache_stats()
            row["interval_cache"] = (
                None if shard is None else shard.interval_cache_stats()
            )
            row["worker"] = worker_rows.get(shard_id)
            rows.append(row)
        failing = sum(1 for row in rows if row["status"] == "failing")
        return {
            "engine": "sharded",
            "status": "failing" if failing else "ok",
            "num_shards": self.num_shards,
            "failing_shards": failing,
            "degraded_results": self._config.degraded_results,
            "policy": self._policy.describe(),
            "executor": executor["mode"],
            "epoch": self.epoch,
            "n_trajectories": self.n_trajectories,
            "shards": rows,
        }

    def stats(self) -> dict[str, object]:
        """One observability snapshot of the whole fleet.

        Same shape as :meth:`TrajectoryEngine.stats` — ``engine`` is
        ``"sharded"``, ``epochs`` lists every shard's growth epoch, ``cache``
        is the fleet-wide aggregate, ``health`` carries the per-shard rows —
        so the serving tier's ``/health`` handler reads one dict regardless
        of the engine class behind it.
        """
        return {
            "engine": "sharded",
            "backend": self.backend_name,
            "num_shards": self.num_shards,
            "n_trajectories": self.n_trajectories,
            "length": self.length,
            "sigma": self.sigma,
            "epoch": self.epoch,
            "epochs": list(self.epochs),
            "size_in_bits": self.size_in_bits(),
            "cache": self.cache_stats(),
            "interval_cache": self.interval_cache_stats(),
            "executor": self.executor_info(),
            "ingest": self.ingest_stats(),
            "health": self.health(),
        }

    def ingest_stats(self) -> dict[str, object] | None:
        """Fleet-wide tail/compaction rollup plus the per-shard breakdown.

        ``None`` when no populated shard exposes ingest counters (static
        backends), matching :meth:`TrajectoryEngine.stats`.
        """
        per_shard: list[dict[str, object] | None] = []
        for shard in self._shards:
            backend = None if shard is None else getattr(shard, "_backend", None)
            per_shard.append(None if backend is None else backend.ingest_stats())
        live = [s for s in per_shard if s is not None]
        if not live:
            return None
        tails = [s["tail"] for s in live]
        compactions = [s["compaction"] for s in live]
        last_unix = [c["last_unix"] for c in compactions if c["last_unix"] is not None]
        return {
            "tail": {
                "enabled": any(t["enabled"] for t in tails),
                "trajectories": sum(int(t["trajectories"]) for t in tails),
                "symbols": sum(int(t["symbols"]) for t in tails),
                "max_symbols": self._config.tail_max_symbols,
                "max_trajectories": self._config.tail_max_trajectories,
            },
            "compaction": {
                "mode": self._config.compaction,
                "in_flight": any(c["in_flight"] for c in compactions),
                "count": sum(int(c["count"]) for c in compactions),
                "failures": sum(int(c["failures"]) for c in compactions),
                "seconds_total": sum(float(c["seconds_total"]) for c in compactions),
                "last_unix": max(last_unix) if last_unix else None,
                "tiered_merges": sum(int(c["tiered_merges"]) for c in compactions),
            },
            "retained_bits": sum(int(s.get("retained_bits", 0)) for s in live),
            "shards": [
                None if s is None else s for s in per_shard
            ],
        }

    def wait_for_compaction(self, timeout: float | None = None) -> bool:
        """Block until every shard's in-flight background compaction finishes."""
        done = True
        for shard in self._shards:
            if shard is not None:
                done = shard.wait_for_compaction(timeout) and done
        return done

    @property
    def timestamp_store(self) -> _FleetTimestampView:
        """Fleet-wide aggregate view over the shards' timestamp stores."""
        return self._store_view

    def timestamps_of(self, trajectory_id: int) -> list[float] | None:
        """Per-segment timestamps of one global trajectory id."""
        if trajectory_id < 0 or trajectory_id >= self.n_trajectories:
            return None
        shard = self._shards[self._router.shard_of(trajectory_id)]
        if shard is None:
            return None
        return shard.timestamps_of(self._router.local_of(trajectory_id))

    @property
    def timestamps(self) -> list[list[float] | None]:
        """Per-trajectory timestamp lists in global id order."""
        return [self.timestamps_of(g) for g in range(self.n_trajectories)]

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #
    def add_batch(
        self,
        trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
    ) -> None:
        """Route newly arrived trajectories to their shards and index them.

        Only shards that actually receive trajectories grow (and therefore
        bump their epoch / invalidate their cache); a batch smaller than the
        shard count leaves the remaining shards — and their cached answers —
        untouched.
        """
        if not self._spec.supports_growth:
            raise ConstructionError(
                f"the {self._spec.name!r} backend is immutable once built; "
                "use the 'partitioned-cinct' backend for growing collections"
            )
        edges, timestamps = _normalise_trajectories(trajectories)
        # The whole batch is validated before any shard mutates, so a bad
        # trajectory cannot leave the fleet partially grown.
        if not edges:
            raise ConstructionError("a batch must contain at least one trajectory")
        for trajectory in edges:
            if not trajectory:
                raise ConstructionError("trajectories in a batch must be non-empty")
        first_id = self.n_trajectories
        validate_monotonic_timestamps(timestamps, first_id=first_id)
        assigned = self._router.split(list(zip(edges, timestamps)), first_id)
        for trajectory in edges:
            for edge in trajectory:
                self._alphabet.add(edge)
        for shard_id, (shard, batch) in enumerate(zip(self._shards, assigned)):
            if not batch:
                continue
            assert shard is not None  # growth backends materialise all shards
            try:
                shard.add_batch(
                    [Trajectory(edges=e, timestamps=t) for e, t in batch]
                )
            except Exception as error:
                # The batch was validated up front, so this is a backend
                # fault mid-growth: name the shard (earlier shards in the
                # loop have already grown; the error makes that auditable).
                self._health.record_failure(shard_id, error)
                raise ShardExecutionError(
                    shard_id, "add_batch", (attempt_from_error(error),)
                ) from error

    def consolidate(self) -> None:
        """Consolidate every populated shard's partitions (fleet-wide)."""
        if not self._spec.supports_growth:
            raise ConstructionError(
                f"the {self._spec.name!r} backend is monolithic and cannot be "
                "consolidated; use the 'partitioned-cinct' backend for growing "
                "collections"
            )
        if self.n_trajectories == 0:
            raise ConstructionError(
                "nothing to consolidate: no trajectories were added"
            )
        for shard_id, shard in enumerate(self._shards):
            if shard is None or shard.n_trajectories == 0:
                continue
            try:
                shard.consolidate()
            except Exception as error:
                self._health.record_failure(shard_id, error)
                raise ShardExecutionError(
                    shard_id, "consolidate", (attempt_from_error(error),)
                ) from error

    # ------------------------------------------------------------------ #
    # typed query API (plan globally, fan out, merge; scalar helpers come
    # from ScalarQueryAPI)
    # ------------------------------------------------------------------ #
    def run(self, query: EngineQuery) -> EngineResult:
        """Answer one typed query through the fleet pipeline."""
        return self.run_many([query])[0]

    def run_many(self, queries: Sequence[EngineQuery]) -> list[EngineResult]:
        """Answer a mixed workload across every shard, batch-first.

        The batch is normalized against the fleet view first (all raising
        happens here, with the same messages and ordering as an unsharded
        engine), each query is routed — extraction to the single owning
        shard, everything else to every shard that can contribute — the
        per-shard sub-batches execute concurrently through each shard's own
        ``run_many`` pipeline (grouping, vectorized paths, shard-scoped
        cache), and the per-shard answers are merged into global results in
        input order.
        """
        planned = self._planner.plan_many(queries)
        shard_batches: list[list[EngineQuery]] = [[] for _ in self._shards]
        refs: list[list[tuple[int, int]]] = []
        row_offsets: list[int] | None = None  # built once per batch
        for entry in planned:
            # Routing consults the *windowed* plan (not the canonical cache
            # key): a windowed strict-path must still skip timestamp-less
            # shards, and the window only lives on the un-stripped plan.
            plan = entry.plan
            localised = entry.query
            if plan.kind == KIND_EXTRACT:
                if row_offsets is None:
                    row_offsets = self._row_offsets()
                shard_id, local_row = self._row_home(plan.row, row_offsets)
                plan = plan.with_shard(shard_id)
                localised = ExtractQuery(row=local_row, length=plan.length)
            entry_refs: list[tuple[int, int]] = []
            for shard_id in self._target_shards(plan, entry.query):
                entry_refs.append((shard_id, len(shard_batches[shard_id])))
                shard_batches[shard_id].append(localised)
            refs.append(entry_refs)
        shard_results, failed_shards = self._fan_out(shard_batches)
        return [
            self._merge(entry.query, entry_refs, shard_results, failed_shards)
            for entry, entry_refs in zip(planned, refs)
        ]

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _row_offsets(self) -> list[int]:
        """Cumulative start row of every shard in the concatenated row space."""
        return list(accumulate(
            (0 if shard is None else shard.length for shard in self._shards),
            initial=0,
        ))

    def _row_home(self, row: int, offsets: list[int]) -> tuple[int, int]:
        """Map a global BWT row to ``(shard, local row)``.

        Global rows concatenate the per-shard row spaces in shard order; the
        planner has already bounds-checked ``row`` against the total length.
        """
        for shard_id in range(self.num_shards):
            if offsets[shard_id] <= row < offsets[shard_id + 1]:
                return shard_id, row - offsets[shard_id]
        raise QueryError(  # pragma: no cover - planner bounds-checks first
            f"BWT position {row} out of range [0, {self.length})"
        )

    def _target_shards(self, plan: QueryPlan, query: EngineQuery) -> list[int]:
        """Shards that can contribute to a plan's answer."""
        if plan.routed:
            return [plan.shard]
        windowed = plan.windowed
        path = query.path  # type: ignore[union-attr]  # every fan-out query has one
        targets: list[int] = []
        for shard_id, shard in enumerate(self._shards):
            if shard is None or shard.n_trajectories == 0:
                continue
            # A pattern edge a shard never saw cannot occur on that shard;
            # skipping it both avoids a spurious AlphabetError from the
            # shard's own planner and contributes the correct zero/empty.
            if any(edge not in shard.alphabet for edge in path):
                continue
            # Per-match window semantics drop every traversal on a
            # timestamp-less shard anyway; skip it rather than trip the
            # shard-local "no timestamps" rejection.
            if windowed and not shard.timestamp_store.any_timestamped:
                continue
            targets.append(shard_id)
        return targets

    # ------------------------------------------------------------------ #
    # fan-out / merge
    # ------------------------------------------------------------------ #
    def _fan_out(
        self, shard_batches: list[list[EngineQuery]]
    ) -> tuple[dict[int, list[EngineResult]], frozenset[int]]:
        """Run every non-empty per-shard batch through the active executor.

        Each sub-batch runs under the engine's :class:`ShardPolicy` (deadline,
        bounded retries).  Returns the surviving shards' results plus the set
        of shards that exhausted their budget — non-empty only when
        ``EngineConfig.degraded_results`` is on; the default configuration
        fails fast by re-raising the first (lowest shard id) canonical
        :class:`~repro.exceptions.ShardExecutionError`.
        """
        jobs = [
            (shard_id, batch)
            for shard_id, batch in enumerate(shard_batches)
            if batch
        ]
        shard_results, failures = self._ensure_executor().run_jobs(jobs)
        for shard_id in shard_results:
            self._health.record_success(shard_id)
        for shard_id, error in failures.items():
            self._health.record_failure(shard_id, error)
        if failures and not self._config.degraded_results:
            raise failures[min(failures)]
        return shard_results, frozenset(failures)

    def _merge(
        self,
        query: EngineQuery,
        refs: list[tuple[int, int]],
        shard_results: dict[int, list[EngineResult]],
        failed_shards: frozenset[int],
    ) -> EngineResult:
        """Combine per-shard answers into the global result for one query.

        With ``degraded_results`` on and one or more of this query's target
        shards failed, the surviving shards' answers are merged anyway and
        the result is flagged ``degraded=True`` with those shards listed —
        an extraction routed to a failed shard has no surviving data and
        comes back empty (but flagged).
        """
        dropped: tuple[int, ...] = ()
        if failed_shards:
            dropped = tuple(
                sorted({shard_id for shard_id, _ in refs} & failed_shards)
            )
            refs = [(s, i) for s, i in refs if s not in failed_shards]
        degraded = bool(dropped)
        results = [shard_results[shard_id][index] for shard_id, index in refs]
        if isinstance(query, CountQuery):
            return CountResult(
                query,
                sum(r.count for r in results),  # type: ignore[union-attr]
                degraded=degraded,
                failed_shards=dropped,
            )
        if isinstance(query, ContainsQuery):
            return ContainsResult(
                query,
                any(r.found for r in results),  # type: ignore[union-attr]
                degraded=degraded,
                failed_shards=dropped,
            )
        if isinstance(query, ExtractQuery):
            if not refs:  # the single owning shard failed (degraded mode)
                return ExtractResult(
                    query, (), (), degraded=True, failed_shards=dropped
                )
            ((shard_id, _),) = refs
            (routed,) = results
            assert isinstance(routed, ExtractResult)
            return ExtractResult(
                query, self._globalise_symbols(shard_id, routed.symbols), routed.edges
            )
        matches = self._merge_matches(refs, results)
        if isinstance(query, LocateQuery):
            return LocateResult(
                query, matches, degraded=degraded, failed_shards=dropped
            )
        assert isinstance(query, StrictPathQuery)
        return StrictPathResult(
            query, matches, degraded=degraded, failed_shards=dropped
        )

    def _globalise_symbols(
        self, shard_id: int, symbols: tuple[int, ...]
    ) -> tuple[int, ...]:
        """Re-encode a shard's extracted symbols against the global alphabet.

        Each shard numbers edge symbols by its own first-appearance order, so
        a shard-local symbol id would silently decode to a different edge
        under :attr:`alphabet`.  The special symbols (``#``/``$``) are shared
        by every alphabet and pass through unchanged.
        """
        shard = self._shards[shard_id]
        assert shard is not None  # a routed row always lands on a real shard
        local_alphabet = shard.alphabet
        global_alphabet = self._alphabet
        return tuple(
            global_alphabet.encode(local_alphabet.decode(symbol))
            if local_alphabet.is_edge_symbol(symbol)
            else symbol
            for symbol in symbols
        )

    def _merge_matches(
        self,
        refs: list[tuple[int, int]],
        results: list[EngineResult],
    ) -> tuple[StrictPathMatch, ...]:
        """Remap shard-local matches to global ids and restore canonical order."""
        router = self._router
        merged: list[StrictPathMatch] = []
        for (shard_id, _), result in zip(refs, results):
            for match in result.matches:  # type: ignore[union-attr]
                merged.append(
                    StrictPathMatch(
                        trajectory_id=router.global_of(shard_id, match.trajectory_id),
                        start_edge_index=match.start_edge_index,
                        end_edge_index=match.end_edge_index,
                        start_time=match.start_time,
                        end_time=match.end_time,
                    )
                )
        merged.sort(
            key=lambda m: (m.trajectory_id, m.start_edge_index, m.end_edge_index)
        )
        return tuple(merged)

    # ------------------------------------------------------------------ #
    # executor plumbing
    # ------------------------------------------------------------------ #
    def _max_workers(self) -> int:
        if self._config.shard_workers is not None:
            return max(1, int(self._config.shard_workers))
        return max(1, min(self.num_shards, os.cpu_count() or 1))

    def _make_executor(self) -> ShardExecutor:
        mode = self._config.shard_executor
        if mode == "processes":
            from .workers import ProcessShardExecutor

            return ProcessShardExecutor(self)
        if mode == "serial":
            return SerialShardExecutor(self)
        return ThreadShardExecutor(self)

    def _ensure_executor(self) -> ShardExecutor:
        # Locked: concurrent run_many callers (the serving tier's worker
        # threads) may race the first fan-out, and two executors would leak
        # the loser's pool/processes.
        with self._executor_lock:
            if self._executor_impl is None:
                self._executor_impl = self._make_executor()
            return self._executor_impl

    @property
    def _pool(self) -> ThreadPoolExecutor | None:
        """The active executor's dispatch thread pool (``None`` until one is
        actually spun up — the inline fast paths never create it)."""
        executor = self._executor_impl
        return None if executor is None else executor._pool

    def configure_executor(self, mode: str) -> None:
        """Switch fan-out execution strategy on a live fleet.

        The query-time counterpart of ``EngineConfig.shard_executor`` (a
        reloaded index carries the config it was built with; the CLI's
        ``--shard-executor`` flag lands here).  The previous executor's
        pool/worker processes are shut down; the new strategy is created
        lazily on the next fan-out.  Validation runs through the config's
        own ``__post_init__``.
        """
        new_config = replace(self._config, shard_executor=str(mode))
        with self._executor_lock:
            executor, self._executor_impl = self._executor_impl, None
            self._config = new_config
        if executor is not None:
            executor.close()

    def executor_info(self) -> dict[str, object]:
        """JSON-safe snapshot of the fan-out executor (mode, worker rows).

        ``started`` is ``False`` until the first fan-out materialises the
        executor (worker processes fork lazily); the ``workers`` list carries
        one row per live shard worker process — pid, restart count, liveness,
        synced epoch — and stays empty for the in-process executors.
        """
        with self._executor_lock:
            executor = self._executor_impl
        if executor is None:
            return {
                "mode": self._config.shard_executor,
                "max_workers": self._max_workers(),
                "started": False,
                "workers": [],
            }
        info = executor.describe()
        info["started"] = True
        return info

    def close(self) -> None:
        """Shut the fan-out executor down — dispatch pool and any shard
        worker processes (engines remain queryable; the executor is recreated
        lazily on the next fan-out)."""
        with self._executor_lock:
            executor, self._executor_impl = self._executor_impl, None
        if executor is not None:
            executor.close()

    def __enter__(self) -> "ShardedTrajectoryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _present_shards(self) -> list[TrajectoryEngine]:
        return [shard for shard in self._shards if shard is not None]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedTrajectoryEngine(backend={self.backend_name!r}, "
            f"shards={self.num_shards}, trajectories={self.n_trajectories})"
        )


def build_engine(
    trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
    config: EngineConfig | None = None,
) -> TrajectoryEngine | ShardedTrajectoryEngine:
    """Build the engine a config asks for: sharded when ``num_shards`` > 1.

    The single construction entry point for callers that take the shard
    count from configuration (the CLI, benchmarks, services): a plain
    :class:`TrajectoryEngine` for ``num_shards=1``, a
    :class:`ShardedTrajectoryEngine` otherwise.
    """
    config = config or EngineConfig()
    if config.num_shards > 1:
        return ShardedTrajectoryEngine.build(trajectories, config)
    return TrajectoryEngine.build(trajectories, config)


__all__ = [
    "SerialShardExecutor",
    "ShardExecutor",
    "ShardRouter",
    "ShardedTrajectoryEngine",
    "ThreadShardExecutor",
    "build_engine",
]
