"""Unified engine facade: one config/registry/query API over every backend.

* :class:`TrajectoryEngine` — build/persist/reload/query any registered index
  backend with raw edge sequences (see :mod:`repro.engine.engine`);
* :class:`EngineConfig` — the single construction-parameter surface;
* the backend registry (:func:`available_backends`, :func:`register_backend`,
  :class:`BackendSpec`) unifying CiNCT, the partitioned CiNCT, every Table-II
  FM-index baseline and the linear-scan baseline;
* the typed query layer (:class:`CountQuery` ... :class:`StrictPathResult`)
  with the batch-first :meth:`TrajectoryEngine.run_many` entry point;
* the staged query pipeline — normalize (:class:`QueryPlanner` /
  :class:`QueryPlan`), optimize (:func:`optimize_plans`), execute
  (:class:`QueryExecutor` behind the :class:`PlanExecutor` protocol) — with
  the epoch-invalidated, byte-budgeted :class:`ResultCache` in front of
  every backend;
* the sharded fleet layer (:class:`ShardRouter`,
  :class:`ShardedTrajectoryEngine`, :func:`build_engine`) fanning queries
  out over shard-routed engines with shard-scoped cache invalidation.
"""

# Importing .backends populates the registry as a side effect.
from .backends import (
    CiNCTBackend,
    EngineBackend,
    FMBaselineBackend,
    LinearScanBackend,
    PartitionedBackend,
)
from .config import EngineConfig
from .engine import TrajectoryEngine, sample_paths
from .executor import (
    PlanExecutor,
    PlanGroups,
    QueryExecutor,
    ResultCache,
    approximate_payload_bytes,
    optimize_plans,
)
from .plan import ALL_SHARDS, PlannedQuery, QueryPlan, QueryPlanner
from .reliability import (
    ShardAttempt,
    ShardHealth,
    ShardPolicy,
    ShardTimeoutError,
    WorkerCrashError,
    run_shard_attempts,
)
from .sharding import (
    SerialShardExecutor,
    ShardExecutor,
    ShardRouter,
    ShardedTrajectoryEngine,
    ThreadShardExecutor,
    build_engine,
)
from .workers import ProcessShardExecutor, ShardWorker
from .queries import (
    ContainsQuery,
    ContainsResult,
    CountQuery,
    CountResult,
    EngineQuery,
    EngineResult,
    ExtractQuery,
    ExtractResult,
    LocateQuery,
    LocateResult,
    StrictPathQuery,
    StrictPathResult,
)
from .registry import BackendSpec, available_backends, backend_spec, backend_specs, register_backend

__all__ = [
    "TrajectoryEngine",
    "EngineConfig",
    "sample_paths",
    # sharded fleet layer
    "ShardRouter",
    "ShardedTrajectoryEngine",
    "build_engine",
    # shard executors
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "ShardWorker",
    # reliability layer
    "ShardPolicy",
    "ShardAttempt",
    "ShardHealth",
    "ShardTimeoutError",
    "WorkerCrashError",
    "run_shard_attempts",
    # registry
    "BackendSpec",
    "register_backend",
    "backend_spec",
    "backend_specs",
    "available_backends",
    # backends
    "EngineBackend",
    "CiNCTBackend",
    "PartitionedBackend",
    "FMBaselineBackend",
    "LinearScanBackend",
    # query pipeline
    "ALL_SHARDS",
    "QueryPlan",
    "PlannedQuery",
    "QueryPlanner",
    "PlanExecutor",
    "PlanGroups",
    "approximate_payload_bytes",
    "optimize_plans",
    "QueryExecutor",
    "ResultCache",
    # queries
    "EngineQuery",
    "EngineResult",
    "CountQuery",
    "CountResult",
    "ContainsQuery",
    "ContainsResult",
    "LocateQuery",
    "LocateResult",
    "ExtractQuery",
    "ExtractResult",
    "StrictPathQuery",
    "StrictPathResult",
]
