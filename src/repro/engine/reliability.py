"""Shard-level reliability: deadlines, retries, failure classes, health.

The sharded fan-out (:meth:`repro.engine.ShardedTrajectoryEngine.run_many`)
used to consume ``future.result()`` raw: one failing shard surfaced a bare
backend traceback mid-batch with no shard context, no bound on how long a
hung shard could stall the whole batch, and no second chance for transient
failures.  This module supplies the policy layer it now runs through:

* :class:`ShardPolicy` — per-attempt deadline, bounded retries with
  exponential backoff and jitter, and failure classification (deterministic
  :class:`~repro.exceptions.ReproError` failures are never retried — the
  same query would fail the same way — while timeouts and unexpected
  backend/runtime errors are presumed transient and retried);
* :func:`run_shard_attempts` — executes one shard operation under a policy,
  recording a :class:`ShardAttempt` history and raising one canonical
  :class:`~repro.exceptions.ShardExecutionError` naming the shard when the
  budget is exhausted;
* :class:`ShardHealth` — thread-safe per-shard success/failure counters
  behind the engine's ``health()`` surface, the substrate the future async
  service tier will export.

Deadlines are enforced by running the attempt in a dedicated thread and
abandoning it on timeout (Python offers no safe preemption); an abandoned
attempt's eventual result is discarded.  With no deadline configured the
attempt runs inline and the policy wrapper is a bare ``try/except`` —
measured at well under 5% overhead on the mixed-batch workload
(``benchmarks/bench_reliability.py``).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..exceptions import ReproError, ShardExecutionError

T = TypeVar("T")


class ShardTimeoutError(TimeoutError):
    """A shard attempt exceeded its per-attempt deadline (retryable).

    ``pid`` names the shard worker process that was killed for blowing the
    deadline (``None`` on the thread/serial executors, where the abandoned
    attempt merely keeps running detached).
    """

    def __init__(self, deadline: float, pid: int | None = None):
        self.deadline = float(deadline)
        self.pid = pid
        message = f"shard attempt exceeded its {deadline:g}s deadline"
        if pid is not None:
            message += f" (worker pid {pid} killed)"
        super().__init__(message)


class WorkerCrashError(RuntimeError):
    """A shard worker process died mid-batch (retryable: it is respawned).

    Raised by the process executor when the pipe to a worker breaks — the
    child was killed, segfaulted, or ``os._exit``-ed (the ``worker_crash``
    fault).  Classified transient by :meth:`ShardPolicy.retryable` (it is not
    a :class:`~repro.exceptions.ReproError`), so a retry budget covers it:
    the executor respawns the worker and the retry runs against the fresh
    process.
    """

    def __init__(self, shard_id: int, pid: int | None, exitcode: int | None = None):
        self.shard_id = int(shard_id)
        self.pid = pid
        self.exitcode = exitcode
        detail = f"worker pid {pid}" if pid is not None else "worker"
        if exitcode is not None:
            detail += f" (exit {exitcode})"
        super().__init__(f"shard {shard_id} {detail} died mid-batch; respawned")


@dataclass(frozen=True)
class ShardAttempt:
    """One failed try at a shard operation (the unit of attempt history)."""

    number: int
    error: str
    seconds: float
    timed_out: bool = False
    pid: int | None = None

    def __str__(self) -> str:
        outcome = "timed out" if self.timed_out else self.error
        where = f" [worker pid {self.pid}]" if self.pid is not None else ""
        return (
            f"attempt {self.number}: {outcome}"
            f" (after {self.seconds * 1e3:.1f} ms){where}"
        )


@dataclass(frozen=True)
class ShardPolicy:
    """Per-shard execution policy: deadline, retry budget, backoff shape.

    Parameters
    ----------
    deadline:
        Seconds one attempt may run before it is abandoned as a
        :class:`ShardTimeoutError` (``None`` disables deadline enforcement —
        the default, and the zero-overhead fast path).
    max_attempts:
        Total tries per shard operation (``1`` = no retries).
    backoff_base / backoff_multiplier / backoff_max:
        The pre-jitter sleep before retry ``n`` is
        ``min(base * multiplier**(n-1), backoff_max)`` seconds.
    jitter:
        Fraction of the backoff added uniformly at random, decorrelating
        retry storms across shards.
    """

    deadline: float | None = None
    max_attempts: int = 1
    backoff_base: float = 0.02
    backoff_multiplier: float = 2.0
    backoff_max: float = 0.5
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive when given, got {self.deadline}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {self.max_attempts}")

    @classmethod
    def from_config(cls, config) -> "ShardPolicy":
        """The policy an :class:`~repro.engine.EngineConfig` asks for."""
        return cls(
            deadline=config.shard_deadline,
            max_attempts=int(config.shard_retries) + 1,
        )

    @property
    def is_noop(self) -> bool:
        """True when the policy neither times out nor retries anything."""
        return self.deadline is None and self.max_attempts <= 1

    def backoff(self, attempt_number: int, rng: random.Random) -> float:
        """Jittered sleep (seconds) before the retry after ``attempt_number``."""
        base = min(
            self.backoff_base * self.backoff_multiplier ** (attempt_number - 1),
            self.backoff_max,
        )
        return base * (1.0 + self.jitter * rng.random())

    @staticmethod
    def retryable(error: BaseException) -> bool:
        """Should a failed attempt be retried?

        Timeouts and unexpected (non-library) exceptions are presumed
        transient; :class:`~repro.exceptions.ReproError` failures are
        deterministic — the shard would reject the same work identically —
        so retrying only wastes the budget.
        """
        if isinstance(error, ShardTimeoutError):
            return True
        return not isinstance(error, ReproError)

    def describe(self) -> dict[str, object]:
        """JSON-safe summary for the ``health()`` surface."""
        return {
            "deadline": self.deadline,
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_max": self.backoff_max,
        }


#: The policy of an engine with no reliability knobs set.
DEFAULT_POLICY = ShardPolicy()


def _call_with_deadline(fn: Callable[[], T], deadline: float) -> T:
    """Run ``fn`` in a dedicated thread, abandoning it past ``deadline``."""
    box: dict[str, object] = {}
    done = threading.Event()

    def runner() -> None:
        try:
            box["result"] = fn()
        except BaseException as error:  # propagated to the waiter below
            box["error"] = error
        finally:
            done.set()

    thread = threading.Thread(
        target=runner, daemon=True, name="repro-shard-attempt"
    )
    thread.start()
    if not done.wait(deadline):
        raise ShardTimeoutError(deadline)
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["result"]  # type: ignore[return-value]


def run_shard_attempts(
    shard_id: int,
    fn: Callable[[], T],
    policy: ShardPolicy,
    *,
    operation: str = "fan-out",
    rng: random.Random | None = None,
    enforce_deadline: bool = True,
) -> T:
    """Execute one shard operation under a policy.

    Returns ``fn()``'s result on the first successful attempt; raises one
    :class:`~repro.exceptions.ShardExecutionError` carrying the shard id and
    full attempt history once the attempt budget is exhausted or a
    non-retryable failure is classified.

    ``enforce_deadline=False`` skips the watchdog-thread deadline wrapper for
    callers that bound attempts themselves — the process executor enforces
    ``policy.deadline`` by polling the worker pipe and killing the child, a
    stronger guarantee than abandoning a thread, and raises its own
    :class:`ShardTimeoutError` (still classified retryable here).  Attempts
    record the worker pid when the raised error carries one.
    """
    rng = rng or random
    attempts: list[ShardAttempt] = []
    for number in range(1, policy.max_attempts + 1):
        started = time.perf_counter()
        try:
            if policy.deadline is None or not enforce_deadline:
                return fn()
            return _call_with_deadline(fn, policy.deadline)
        except Exception as error:
            elapsed = time.perf_counter() - started
            timed_out = isinstance(error, ShardTimeoutError)
            attempts.append(
                ShardAttempt(
                    number=number,
                    error=f"{type(error).__name__}: {error}",
                    seconds=elapsed,
                    timed_out=timed_out,
                    pid=getattr(error, "pid", None),
                )
            )
            if number >= policy.max_attempts or not policy.retryable(error):
                raise ShardExecutionError(
                    shard_id, operation, tuple(attempts)
                ) from error
        time.sleep(policy.backoff(number, rng))
    raise AssertionError("unreachable: the attempt loop returns or raises")


def attempt_from_error(error: BaseException) -> ShardAttempt:
    """A single-attempt history for operations executed without the loop
    (growth and consolidation wrap their one inline try this way)."""
    return ShardAttempt(
        number=1, error=f"{type(error).__name__}: {error}", seconds=0.0
    )


class ShardHealth:
    """Thread-safe per-shard success/failure bookkeeping.

    ``record_success`` / ``record_failure`` are called by the fan-out as
    per-shard batches settle; :meth:`snapshot` feeds the engine's
    ``health()`` surface.  A shard is ``"ok"`` until it fails, ``"failing"``
    while its consecutive-failure streak is open, and recovers to ``"ok"``
    on the next success.
    """

    def __init__(self, num_shards: int):
        self._lock = threading.Lock()
        self._stats = [
            {
                "successes": 0,
                "failures": 0,
                "consecutive_failures": 0,
                "respawns": 0,
                "last_error": None,
            }
            for _ in range(num_shards)
        ]

    def record_success(self, shard_id: int) -> None:
        with self._lock:
            entry = self._stats[shard_id]
            entry["successes"] += 1
            entry["consecutive_failures"] = 0

    def record_respawn(self, shard_id: int) -> None:
        """Count one worker-process kill + respawn (process executor only)."""
        with self._lock:
            self._stats[shard_id]["respawns"] += 1

    def record_failure(self, shard_id: int, error: BaseException) -> None:
        with self._lock:
            entry = self._stats[shard_id]
            entry["failures"] += 1
            entry["consecutive_failures"] += 1
            entry["last_error"] = str(error)

    def snapshot(self) -> list[dict[str, object]]:
        """Per-shard counters plus a derived ``status``, in shard order."""
        with self._lock:
            rows = []
            for entry in self._stats:
                row = dict(entry)
                row["status"] = "failing" if entry["consecutive_failures"] else "ok"
                rows.append(row)
            return rows


__all__ = [
    "DEFAULT_POLICY",
    "ShardAttempt",
    "ShardHealth",
    "ShardPolicy",
    "ShardTimeoutError",
    "WorkerCrashError",
    "attempt_from_error",
    "run_shard_attempts",
]
