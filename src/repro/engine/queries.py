"""Typed query and result objects for the engine facade.

Queries speak *raw edge sequences* (road-segment IDs in travel order), never
internal symbols: the engine encodes them against the backend's alphabet and
normalises every failure mode (empty path, unknown segment, empty index) into
the canonical :class:`~repro.exceptions.QueryError` /
:class:`~repro.exceptions.AlphabetError` messages.

``TrajectoryEngine.run`` answers one query; ``TrajectoryEngine.run_many`` is
the batch-first path.  Both flow through the staged pipeline — queries are
normalized into canonical :class:`~repro.engine.plan.QueryPlan` records,
deduplicated and grouped by (query type x capability), and executed through
the backend's vectorized ``*_many`` paths behind an epoch-invalidated result
cache — returning results in the original order, bit-identical to scalar
calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence, Union

from ..queries.strict_path import StrictPathMatch


def _as_path(path: Sequence[Hashable]) -> tuple[Hashable, ...]:
    return tuple(path)


@dataclass(frozen=True)
class CountQuery:
    """How many times does ``path`` occur across the indexed trajectories?"""

    path: tuple[Hashable, ...]

    def __init__(self, path: Sequence[Hashable]):
        object.__setattr__(self, "path", _as_path(path))


@dataclass(frozen=True)
class ContainsQuery:
    """Does ``path`` occur at least once?"""

    path: tuple[Hashable, ...]

    def __init__(self, path: Sequence[Hashable]):
        object.__setattr__(self, "path", _as_path(path))


@dataclass(frozen=True)
class LocateQuery:
    """Where does ``path`` occur?  Resolves every occurrence to a trajectory."""

    path: tuple[Hashable, ...]

    def __init__(self, path: Sequence[Hashable]):
        object.__setattr__(self, "path", _as_path(path))


@dataclass(frozen=True)
class ExtractQuery:
    """Recover ``length`` symbols of the text ending at suffix-array row ``row``.

    This is the paper's Algorithm-4 sub-path extraction, addressed by BWT row
    exactly like :meth:`repro.CiNCT.extract`; backends without a suffix
    structure (linear scan, partitioned) reject it.
    """

    row: int
    length: int


@dataclass(frozen=True)
class StrictPathQuery:
    """Which trajectories travelled ``path`` (optionally within a time window)?

    ``t_start``/``t_end`` must be given together; when present, only
    traversals that started no earlier than ``t_start`` and finished no later
    than ``t_end`` match (the Section-VII strict-path semantics).
    """

    path: tuple[Hashable, ...]
    t_start: float | None = None
    t_end: float | None = None

    def __init__(
        self,
        path: Sequence[Hashable],
        t_start: float | None = None,
        t_end: float | None = None,
    ):
        object.__setattr__(self, "path", _as_path(path))
        object.__setattr__(self, "t_start", t_start)
        object.__setattr__(self, "t_end", t_end)


EngineQuery = Union[CountQuery, ContainsQuery, LocateQuery, ExtractQuery, StrictPathQuery]


@dataclass(frozen=True)
class CountResult:
    """Answer to a :class:`CountQuery`."""

    query: CountQuery
    count: int
    #: ``True`` when a failed shard was dropped from this answer (only with
    #: ``EngineConfig.degraded_results``); the shards dropped are listed in
    #: :attr:`failed_shards`.  Complete answers carry the defaults, so
    #: equality with non-degraded results is unaffected.
    degraded: bool = False
    failed_shards: tuple[int, ...] = ()


@dataclass(frozen=True)
class ContainsResult:
    """Answer to a :class:`ContainsQuery`."""

    query: ContainsQuery
    found: bool
    degraded: bool = False
    failed_shards: tuple[int, ...] = ()


@dataclass(frozen=True)
class LocateResult:
    """Answer to a :class:`LocateQuery`: matches sorted by (trajectory, start)."""

    query: LocateQuery
    matches: tuple[StrictPathMatch, ...] = field(default=())
    degraded: bool = False
    failed_shards: tuple[int, ...] = ()

    @property
    def count(self) -> int:
        """Number of resolved occurrences."""
        return len(self.matches)

    def trajectory_ids(self) -> list[int]:
        """Distinct matching trajectory IDs, ascending."""
        return sorted({match.trajectory_id for match in self.matches})


@dataclass(frozen=True)
class ExtractResult:
    """Answer to an :class:`ExtractQuery`.

    ``symbols`` are the internal symbols in travel order; ``edges`` decodes
    them back to road-segment IDs, with the special symbols rendered as the
    paper's ``"#"`` (end) and ``"$"`` (separator) markers.
    """

    query: ExtractQuery
    symbols: tuple[int, ...]
    edges: tuple[Hashable, ...]
    degraded: bool = False
    failed_shards: tuple[int, ...] = ()


@dataclass(frozen=True)
class StrictPathResult:
    """Answer to a :class:`StrictPathQuery`: time-filtered, sorted matches."""

    query: StrictPathQuery
    matches: tuple[StrictPathMatch, ...] = field(default=())
    degraded: bool = False
    failed_shards: tuple[int, ...] = ()

    @property
    def count(self) -> int:
        """Number of matching traversals."""
        return len(self.matches)

    def trajectory_ids(self) -> list[int]:
        """Distinct matching trajectory IDs, ascending."""
        return sorted({match.trajectory_id for match in self.matches})


EngineResult = Union[CountResult, ContainsResult, LocateResult, ExtractResult, StrictPathResult]
