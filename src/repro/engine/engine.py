"""The :class:`TrajectoryEngine` facade.

One import — ``from repro.engine import TrajectoryEngine, EngineConfig`` — is
enough to build, persist, reload and query *any* registered index backend
with raw edge sequences::

    engine = TrajectoryEngine.build(
        [["e1", "e2", "e3"], ["e2", "e3", "e4"]],
        EngineConfig(backend="cinct", sa_sample_rate=8),
    )
    engine.count(["e2", "e3"])            # -> 2
    engine.save("my-index")
    TrajectoryEngine.load("my-index").count(["e2", "e3"])  # -> 2

Every query — scalar convenience methods and the typed :meth:`run` /
:meth:`run_many` API alike — flows through a staged pipeline:

1. **normalize** (:mod:`repro.engine.plan`) — raw-edge queries become
   canonical :class:`~repro.engine.plan.QueryPlan` records (encoded pattern,
   capability requirement, window bounds); every ``QueryError`` /
   ``AlphabetError`` is raised at this stage;
2. **optimize** (:func:`repro.engine.executor.optimize_plans`) — a batch is
   deduplicated and grouped by (query type x capability) so heterogeneous
   workloads route into the vectorized ``*_many`` backend paths instead of
   per-query loops;
3. **execute** (:class:`repro.engine.executor.QueryExecutor`) — groups run
   against the backend through the
   :class:`~repro.engine.executor.PlanExecutor` surface, fronted by a bounded
   LRU result cache keyed on canonical plans and invalidated by the engine's
   monotonically increasing growth :attr:`~TrajectoryEngine.epoch` (bumped by
   :meth:`~TrajectoryEngine.add_batch` / :meth:`~TrajectoryEngine.consolidate`
   and persisted with the index).

Results are assembled back around the original query objects, so cached,
batched and scalar answers are bit-identical.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from ..exceptions import (
    EMPTY_INDEX_MESSAGE,
    ConstructionError,
    DatasetError,
    QueryError,
)
from ..queries.strict_path import StrictPathMatch
from ..queries.temporal import TemporalIndex
from ..strings.alphabet import SEP_SYMBOL, Alphabet
from ..temporal.store import TimestampStore
from ..trajectories.model import Trajectory, TrajectoryDataset
from .backends import EngineBackend
from .config import EngineConfig
from .executor import IntervalCache, QueryExecutor, ResultCache
from .plan import PlannedQuery, QueryPlanner
from .queries import (
    ContainsQuery,
    ContainsResult,
    CountQuery,
    CountResult,
    EngineQuery,
    EngineResult,
    ExtractQuery,
    ExtractResult,
    LocateQuery,
    LocateResult,
    StrictPathQuery,
    StrictPathResult,
)
from .registry import BackendSpec, backend_spec


def validate_monotonic_timestamps(
    timestamps: Sequence[list[float] | None], first_id: int
) -> None:
    """Reject decreasing per-trajectory timestamps with the canonical message.

    The same construction-time check ``TemporalIndex.from_trajectories``
    performs, applied only to newly arriving trajectories so streaming
    ingestion stays linear overall.  ``first_id`` names the global id of the
    first entry, so the error points at the offending trajectory — the
    sharded fleet layer calls this with global ids *before* routing, keeping
    its error messages identical to an unsharded engine's.
    """
    for offset, times in enumerate(timestamps):
        if times is None:
            continue
        if np.any(np.diff(np.asarray(times, dtype=np.float64)) < 0):
            raise ConstructionError(
                f"trajectory {first_id + offset} has decreasing timestamps"
            )


def _normalise_trajectories(
    trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
) -> tuple[list[list[Hashable]], list[list[float] | None]]:
    """Split any accepted input shape into (edge lists, per-trajectory times)."""
    if isinstance(trajectories, TrajectoryDataset):
        trajectories = trajectories.trajectories
    edges: list[list[Hashable]] = []
    timestamps: list[list[float] | None] = []
    for trajectory in trajectories:
        if isinstance(trajectory, Trajectory):
            edges.append(list(trajectory.edges))
            timestamps.append(
                list(trajectory.timestamps) if trajectory.timestamps is not None else None
            )
        else:
            edges.append(list(trajectory))
            timestamps.append(None)
    return edges, timestamps


def sample_paths(
    trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
    pattern_length: int,
    n_paths: int,
    seed: int = 0,
) -> list[list[Hashable]]:
    """Sample query paths (raw edges, travel order) from real trajectories.

    The backend-independent analogue of the paper's workload protocol
    ("queries randomly sampled from the data"): windows are drawn from the
    trajectories themselves, so they never straddle a separator and can be fed
    straight into :meth:`TrajectoryEngine.count` on any backend.
    """
    if pattern_length < 1:
        raise DatasetError("pattern_length must be positive")
    if n_paths < 1:
        raise DatasetError("n_paths must be positive")
    edges, _ = _normalise_trajectories(trajectories)
    eligible = [t for t in edges if len(t) >= pattern_length]
    if not eligible:
        raise DatasetError(
            f"no trajectory is at least {pattern_length} segments long; "
            "shorten the pattern length"
        )
    rng = np.random.default_rng(seed)
    paths: list[list[Hashable]] = []
    for _ in range(n_paths):
        trajectory = eligible[int(rng.integers(len(eligible)))]
        start = int(rng.integers(0, len(trajectory) - pattern_length + 1))
        paths.append(list(trajectory[start : start + pattern_length]))
    return paths


class ScalarQueryAPI:
    """Scalar convenience wrappers over the typed ``run``/``run_many`` surface.

    Shared by :class:`TrajectoryEngine` and
    :class:`~repro.engine.sharding.ShardedTrajectoryEngine`, which provide
    the typed pipeline underneath — keeping the scalar facade in one place
    means the two engine classes cannot drift apart on it.
    """

    def run(self, query: EngineQuery) -> EngineResult:
        """Answer one typed query (provided by the engine class)."""
        raise NotImplementedError  # pragma: no cover - engines override

    def run_many(self, queries: Sequence[EngineQuery]) -> list[EngineResult]:
        """Answer a typed batch (provided by the engine class)."""
        raise NotImplementedError  # pragma: no cover - engines override

    def count(self, path: Sequence[Hashable]) -> int:
        """Occurrences of the path across all indexed trajectories."""
        result = self.run(CountQuery(path))
        assert isinstance(result, CountResult)
        return result.count

    def contains(self, path: Sequence[Hashable]) -> bool:
        """True when the path occurs at least once."""
        result = self.run(ContainsQuery(path))
        assert isinstance(result, ContainsResult)
        return result.found

    def count_many(self, paths: Sequence[Sequence[Hashable]]) -> list[int]:
        """Batched :meth:`count` through the batch-first pipeline."""
        results = self.run_many([CountQuery(path) for path in paths])
        return [result.count for result in results]  # type: ignore[union-attr]

    def locate(self, path: Sequence[Hashable]) -> list[StrictPathMatch]:
        """Every occurrence of the path, resolved to trajectory coordinates."""
        result = self.run(LocateQuery(path))
        assert isinstance(result, LocateResult)
        return list(result.matches)

    def extract(self, row: int, length: int) -> list[Hashable]:
        """Algorithm-4 extraction, decoded back to edge IDs (``#``/``$`` markers)."""
        result = self.run(ExtractQuery(row=row, length=length))
        assert isinstance(result, ExtractResult)
        return list(result.edges)

    def strict_path(
        self,
        path: Sequence[Hashable],
        t_start: float | None = None,
        t_end: float | None = None,
    ) -> list[StrictPathMatch]:
        """Strict path query: traversals of ``path`` within ``[t_start, t_end]``.

        Mirrors :meth:`repro.StrictPathIndex.query` on every locate-capable
        backend.  Both interval bounds must be given together.  Temporal
        filtering is per match: a traversal qualifies when its own trajectory
        carries timestamps and the traversal lies inside the window, so a
        partially timestamped fleet still answers windowed queries —
        occurrences on timestamp-less trajectories are simply dropped (they
        cannot prove they happened inside the window).  Only when *no*
        trajectory in the fleet carries timestamps is a windowed query
        rejected with a :class:`~repro.exceptions.QueryError`.
        """
        result = self.run(StrictPathQuery(path, t_start, t_end))
        assert isinstance(result, StrictPathResult)
        return list(result.matches)


class TrajectoryEngine(ScalarQueryAPI):
    """Unified query facade over every registered index backend.

    Instances are created with :meth:`build` (from raw trajectories or a
    :class:`~repro.trajectories.TrajectoryDataset`) or :meth:`load` (from a
    directory written by :meth:`save`); the constructor is an internal
    assembly point shared by both paths.
    """

    def __init__(
        self,
        backend: EngineBackend,
        config: EngineConfig,
        timestamps: TimestampStore | Sequence[list[float] | None] = (),
        epoch: int = 0,
    ):
        self._backend = backend
        self._config = config
        self._spec = backend_spec(config.backend)
        if isinstance(timestamps, TimestampStore):
            self._store = timestamps
        else:
            self._validate_timestamps(timestamps, first_id=0)
            self._store = TimestampStore(timestamps)
        # The temporal companion is built lazily (and only once per growth
        # step), so streaming ingestion stays linear in the fleet size.
        self._temporal: TemporalIndex | None = None
        self._temporal_fresh = False
        # Query pipeline: normalize (planner) -> optimize/execute (executor)
        # with an epoch-invalidated LRU result cache in front of the backend.
        self._epoch = int(epoch)
        self._planner = QueryPlanner(backend, self._spec, self._store)
        self._cache = ResultCache(
            config.cache_size, epoch=self._epoch, max_bytes=config.cache_max_bytes
        )
        # Second cache tier: suffix-range intervals keyed on encoded pattern
        # prefixes, so backward search resumes from the deepest cached
        # ancestor instead of re-deriving whole ranges.  Same epoch model as
        # the result cache; ignored by backends without a suffix structure.
        self._interval_cache = IntervalCache(
            config.interval_cache_size, epoch=self._epoch
        )
        self._executor = QueryExecutor(
            backend, self._resolve_encoded, self._cache, self._interval_cache
        )
        # Background tail compaction publishes new state off the ingest
        # thread; the listener bumps this engine's epoch at swap time so the
        # cache invalidates exactly when the view changes (and, in a sharded
        # fleet, only on the compacted shard).
        backend.set_growth_listener(self._bump_epoch)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
        config: EngineConfig | None = None,
    ) -> "TrajectoryEngine":
        """Build an engine from raw trajectories (or a dataset) and a config.

        An empty trajectory collection is only allowed for growth-capable
        backends (start an empty fleet, then :meth:`add_batch`).  A config
        asking for more than one shard is rejected — a monolithic engine
        silently ignoring ``num_shards`` would claim a fleet layout it does
        not have; build those with :func:`repro.engine.build_engine` or
        :meth:`~repro.engine.sharding.ShardedTrajectoryEngine.build`.
        """
        config = config or EngineConfig()
        if config.num_shards > 1:
            raise ConstructionError(
                f"EngineConfig.num_shards={config.num_shards} needs the sharded "
                "fleet layer; build with repro.engine.build_engine (or "
                "ShardedTrajectoryEngine.build)"
            )
        spec = backend_spec(config.backend)
        edges, timestamps = _normalise_trajectories(trajectories)
        if not edges and not spec.supports_growth:
            raise ConstructionError(
                "cannot build a trajectory string from zero trajectories"
            )
        backend = spec.factory(edges, config)
        return cls(backend, config, timestamps)

    @classmethod
    def load(cls, directory, *, mmap: bool = False) -> "TrajectoryEngine":
        """Reload an engine persisted with :meth:`save` (any backend).

        ``mmap=True`` maps the large immutable arrays read-only from their
        archives instead of copying them (see :func:`repro.io.load_index`).
        Directories holding a sharded fleet are rejected — load those with
        :meth:`~repro.engine.sharding.ShardedTrajectoryEngine.load`, or use
        :func:`repro.io.load_index`, which returns whichever engine class the
        directory holds.
        """
        from ..io.index_io import load_index

        engine = load_index(directory, mmap=mmap)
        if not isinstance(engine, cls):
            raise ConstructionError(
                f"{directory} holds a sharded fleet; load it with "
                "ShardedTrajectoryEngine.load (or repro.io.load_index)"
            )
        return engine

    def save(self, directory) -> None:
        """Persist the engine (config + alphabet + backend state) to a directory."""
        from ..io.index_io import save_index

        save_index(self, directory)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> EngineConfig:
        """The construction configuration."""
        return self._config

    @property
    def spec(self) -> BackendSpec:
        """The registry spec of the active backend."""
        return self._spec

    @property
    def backend(self) -> EngineBackend:
        """The backend adapter (exposes the wrapped index structure)."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Canonical registry key of the active backend."""
        return self._spec.name

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet mapping raw edge IDs to indexed symbols."""
        return self._backend.alphabet

    @property
    def length(self) -> int:
        """Total indexed trajectory-string length (including separators)."""
        return self._backend.length

    @property
    def sigma(self) -> int:
        """Alphabet size (distinct edges + the two special symbols)."""
        return self._backend.sigma

    @property
    def n_trajectories(self) -> int:
        """Number of indexed trajectories."""
        return self._backend.n_trajectories

    @property
    def epoch(self) -> int:
        """Monotonically increasing growth epoch.

        Starts at 0 (or the persisted value after :meth:`load`), bumped by
        every :meth:`add_batch` / :meth:`consolidate`.  The result cache keys
        its validity on this value, and :meth:`save` persists it so reloaded
        engines keep counting from where they left off.
        """
        return self._epoch

    @property
    def result_cache(self) -> ResultCache:
        """The bounded, epoch-invalidated LRU in front of the backend."""
        return self._cache

    def cache_stats(self) -> dict[str, int | bool]:
        """Result-cache counters (hits, misses, evictions, invalidations)."""
        return self._cache.stats()

    @property
    def interval_cache(self) -> IntervalCache:
        """The epoch-invalidated suffix-range interval cache."""
        return self._interval_cache

    def interval_cache_stats(self) -> dict[str, int | bool]:
        """Interval-cache counters (hits, misses, evictions, invalidations)."""
        return self._interval_cache.stats()

    def disable_interval_cache(self) -> None:
        """Turn interval sharing off for the rest of this engine's lifetime."""
        self._interval_cache.disable()

    def disable_cache(self) -> None:
        """Turn the result cache off for the rest of this engine's lifetime.

        The uniform cache-control entry point shared with
        :class:`~repro.engine.sharding.ShardedTrajectoryEngine` (where it
        disables every shard's cache) — the CLI's ``--no-cache``.
        """
        self._cache.disable()

    def health(self) -> dict[str, object]:
        """Single-engine health: the unsharded counterpart of the fleet's
        :meth:`~repro.engine.sharding.ShardedTrajectoryEngine.health`.

        A monolithic engine has no fan-out to fail partially, so its status
        is always ``"ok"``; the surface exists so callers (the CLI's
        ``query --verbose``, the future service tier) can poll one shape
        regardless of the engine class.
        """
        return {
            "engine": "single",
            "status": "ok",
            "num_shards": 1,
            "failing_shards": 0,
            "degraded_results": False,
            "executor": "inline",
            "epoch": self._epoch,
            "n_trajectories": self.n_trajectories,
            "cache": self.cache_stats(),
            "interval_cache": self.interval_cache_stats(),
        }

    def stats(self) -> dict[str, object]:
        """One observability snapshot of the whole engine.

        The unified surface the serving tier's ``/health`` handler (and the
        CLI's ``query --verbose``) reads instead of stitching together
        :meth:`cache_stats`, :meth:`health`, :attr:`epoch` and the size
        accessors.  Both engine classes return the same shape: ``engine``
        (``"single"`` / ``"sharded"``), ``backend``, ``num_shards``,
        ``n_trajectories``, ``length``, ``sigma``, ``epoch``, per-shard
        ``epochs``, ``size_in_bits``, aggregated ``cache`` counters, and the
        full :meth:`health` payload.  Every value is JSON-serializable.
        """
        return {
            "engine": "single",
            "backend": self.backend_name,
            "num_shards": 1,
            "n_trajectories": self.n_trajectories,
            "length": self.length,
            "sigma": self.sigma,
            "epoch": self._epoch,
            "epochs": [self._epoch],
            "size_in_bits": self.size_in_bits(),
            "cache": self.cache_stats(),
            "interval_cache": self.interval_cache_stats(),
            "executor": {
                "mode": "inline",
                "max_workers": 1,
                "started": True,
                "workers": [],
            },
            "ingest": self._backend.ingest_stats(),
            "health": self.health(),
        }

    @property
    def temporal(self) -> TemporalIndex | None:
        """The temporal companion index (``None`` when disabled/unavailable)."""
        if not self._temporal_fresh:
            if self._config.temporal_index and self._fully_timestamped():
                self._temporal = self._build_temporal()
            else:
                self._temporal = None
            self._temporal_fresh = True
        return self._temporal

    @property
    def timestamp_store(self) -> TimestampStore:
        """The compressed per-trajectory timestamp store."""
        return self._store

    def timestamps_of(self, trajectory_id: int) -> list[float] | None:
        """Per-segment timestamps of one trajectory (``None`` when absent)."""
        return self._store.get(trajectory_id)

    @property
    def timestamps(self) -> list[list[float] | None]:
        """Per-trajectory timestamp lists, aligned to :attr:`n_trajectories`."""
        aligned = self._store.as_lists()[: self.n_trajectories]
        aligned.extend([None] * (self.n_trajectories - len(aligned)))
        return aligned

    def size_in_bits(self) -> int:
        """Backend index size plus the exact temporal storage (when present)."""
        return self._backend.size_in_bits() + self.temporal_size_in_bits()

    def temporal_size_in_bits(self) -> int:
        """Exact encoded size of the timestamp store (0 without timestamps)."""
        if not self._store.any_timestamped:
            return 0
        return self._store.size_in_bits()

    def bits_per_symbol(self) -> float:
        """Index size divided by trajectory-string length."""
        length = self.length
        if length == 0:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        return self.size_in_bits() / length

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #
    def add_batch(
        self,
        trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
    ) -> None:
        """Index newly arrived trajectories (growth-capable backends only)."""
        edges, timestamps = _normalise_trajectories(trajectories)
        self._validate_timestamps(timestamps, first_id=len(self._store))
        self._backend.add_batch(edges)
        self._store.extend(timestamps)
        self._temporal_fresh = False
        self._bump_epoch()

    @property
    def n_partitions(self) -> int:
        """Number of independent partitions (1 for monolithic backends)."""
        return self._backend.n_partitions

    def consolidate(self) -> None:
        """Merge all partitions into one (growth-capable backends only).

        This is the paper's Section III-A periodic reconstruction, exposed on
        the facade so growth workflows never touch backend internals.
        """
        self._backend.consolidate()
        self._bump_epoch()

    def wait_for_compaction(self, timeout: float | None = None) -> bool:
        """Block until any in-flight background tail compaction finishes.

        Always ``True`` immediately for backends without background
        compaction; exposed on the facade so ingest drivers and tests can
        quiesce the engine deterministically.
        """
        return self._backend.wait_for_compaction(timeout)

    def _bump_epoch(self) -> None:
        self._epoch += 1
        self._cache.sync_epoch(self._epoch)
        self._interval_cache.sync_epoch(self._epoch)

    # ------------------------------------------------------------------ #
    # typed query API (the staged pipeline; scalar helpers come from
    # ScalarQueryAPI)
    # ------------------------------------------------------------------ #
    def run(self, query: EngineQuery) -> EngineResult:
        """Answer one typed query through the plan -> execute pipeline."""
        planned = self._planner.plan(query)
        payloads = self._executor.execute([planned.plan])
        return self._assemble(planned, payloads[planned.plan.canonical()])

    def run_many(self, queries: Sequence[EngineQuery]) -> list[EngineResult]:
        """Answer a mixed workload, batch-first.

        The batch flows through the staged pipeline: every query is
        normalized into a canonical plan first (so all raising happens before
        anything executes), the optimize stage dedupes identical plans and
        groups the remainder by (query type x capability), and the execute
        stage routes each group through the backend's vectorized ``*_many``
        paths — count/contains share one ``count_many`` pass, extractions
        batch per length into ``extract_many``, locate/strict-path run once
        per distinct pattern (each already batches its whole suffix range
        internally).  Results come back in input order and are identical to
        calling :meth:`run` per query.
        """
        planned = self._planner.plan_many(queries)
        payloads = self._executor.execute([entry.plan for entry in planned])
        return [
            self._assemble(entry, payloads[entry.plan.canonical()])
            for entry in planned
        ]

    # ------------------------------------------------------------------ #
    # pipeline helpers
    # ------------------------------------------------------------------ #
    def _assemble(self, planned: PlannedQuery, payload: object) -> EngineResult:
        """Wrap an executed payload back around the original query object."""
        query = planned.query
        if isinstance(query, CountQuery):
            assert isinstance(payload, int)
            return CountResult(query, payload)
        if isinstance(query, ContainsQuery):
            # bool from the contains plan path, int when derived from a count.
            assert isinstance(payload, (bool, int))
            return ContainsResult(query, bool(payload))
        if isinstance(query, LocateQuery):
            assert isinstance(payload, tuple)
            return LocateResult(query, payload)
        if isinstance(query, ExtractQuery):
            assert isinstance(payload, tuple)
            return ExtractResult(query, payload, tuple(self._decode_symbols(payload)))
        assert isinstance(query, StrictPathQuery) and isinstance(payload, tuple)
        matches = self._filter_window(payload, planned.plan.t_start, planned.plan.t_end)
        return StrictPathResult(query, matches)

    def _resolve_encoded(self, pattern: tuple[int, ...]) -> tuple[StrictPathMatch, ...]:
        """Locate an encoded pattern and annotate matches with timestamps.

        Timestamps come from the store's sampled point lookups
        (:meth:`~repro.temporal.TimestampStore.timestamp`), so resolving a
        match never decodes a whole trajectory.
        """
        store = self._store
        n_stored = len(store)
        matches: list[StrictPathMatch] = []
        kwargs: dict[str, object] = {}
        if (
            getattr(self._backend, "supports_interval_sharing", False)
            and self._interval_cache.enabled
        ):
            kwargs["interval_cache"] = self._interval_cache
        for trajectory_id, start, end in self._backend.locate_matches(
            list(pattern), **kwargs
        ):
            if 0 <= trajectory_id < n_stored:
                start_time = store.timestamp(trajectory_id, start)
                end_time = store.timestamp(trajectory_id, end)
            else:
                start_time = end_time = None
            matches.append(
                StrictPathMatch(
                    trajectory_id=trajectory_id,
                    start_edge_index=start,
                    end_edge_index=end,
                    start_time=start_time,
                    end_time=end_time,
                )
            )
        return tuple(matches)

    def _filter_window(
        self,
        matches: tuple[StrictPathMatch, ...],
        t_start: float | None,
        t_end: float | None,
    ) -> tuple[StrictPathMatch, ...]:
        """Apply strict-path window semantics to located matches."""
        if t_start is None or t_end is None:
            return matches
        active: set[int] | None = None
        if self.temporal is not None:
            active = set(self.temporal.active_during(t_start, t_end))
        filtered: list[StrictPathMatch] = []
        for match in matches:
            if active is not None and match.trajectory_id not in active:
                continue
            if match.start_time is None or match.end_time is None:
                continue
            if match.start_time < t_start or match.end_time > t_end:
                continue
            filtered.append(match)
        return tuple(filtered)

    def _decode_symbols(self, symbols: Sequence[int]) -> list[Hashable]:
        alphabet = self._backend.alphabet
        decoded: list[Hashable] = []
        for symbol in symbols:
            symbol = int(symbol)
            if alphabet.is_edge_symbol(symbol):
                decoded.append(alphabet.decode(symbol))
            else:
                decoded.append("$" if symbol == SEP_SYMBOL else "#")
        return decoded

    def _fully_timestamped(self) -> bool:
        return self._store.fully_timestamped

    @staticmethod
    def _validate_timestamps(
        timestamps: Sequence[list[float] | None], first_id: int
    ) -> None:
        validate_monotonic_timestamps(timestamps, first_id)

    def _build_temporal(self) -> TemporalIndex:
        decoded = [
            np.asarray(self._store.get(i), dtype=np.float64)
            for i in range(len(self._store))
        ]
        starts = np.asarray([times[0] for times in decoded], dtype=np.float64)
        ends = np.asarray([times[-1] for times in decoded], dtype=np.float64)
        deltas = [np.diff(times) for times in decoded]
        return TemporalIndex(starts=starts, deltas=deltas, ends=ends)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TrajectoryEngine(backend={self.backend_name!r}, "
            f"trajectories={self.n_trajectories}, length={self.length})"
        )
