"""The :class:`TrajectoryEngine` facade.

One import — ``from repro.engine import TrajectoryEngine, EngineConfig`` — is
enough to build, persist, reload and query *any* registered index backend
with raw edge sequences::

    engine = TrajectoryEngine.build(
        [["e1", "e2", "e3"], ["e2", "e3", "e4"]],
        EngineConfig(backend="cinct", sa_sample_rate=8),
    )
    engine.count(["e2", "e3"])            # -> 2
    engine.save("my-index")
    TrajectoryEngine.load("my-index").count(["e2", "e3"])  # -> 2

The facade owns everything that used to force callers through per-backend
entry points: pattern encoding against the backend's alphabet, the canonical
:class:`~repro.exceptions.QueryError` / :class:`~repro.exceptions.AlphabetError`
behaviour, temporal filtering for strict-path queries, and the batch-first
:meth:`TrajectoryEngine.run_many` routing into the vectorized ``*_many``
query paths.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from ..exceptions import (
    EMPTY_INDEX_MESSAGE,
    EMPTY_PATH_MESSAGE,
    ConstructionError,
    DatasetError,
    QueryError,
)
from ..queries.strict_path import StrictPathMatch
from ..queries.temporal import TemporalIndex
from ..strings.alphabet import SEP_SYMBOL, Alphabet
from ..temporal.store import TimestampStore
from ..trajectories.model import Trajectory, TrajectoryDataset
from .backends import EngineBackend
from .config import EngineConfig
from .queries import (
    ContainsQuery,
    ContainsResult,
    CountQuery,
    CountResult,
    EngineQuery,
    EngineResult,
    ExtractQuery,
    ExtractResult,
    LocateQuery,
    LocateResult,
    StrictPathQuery,
    StrictPathResult,
)
from .registry import BackendSpec, backend_spec


def _normalise_trajectories(
    trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
) -> tuple[list[list[Hashable]], list[list[float] | None]]:
    """Split any accepted input shape into (edge lists, per-trajectory times)."""
    if isinstance(trajectories, TrajectoryDataset):
        trajectories = trajectories.trajectories
    edges: list[list[Hashable]] = []
    timestamps: list[list[float] | None] = []
    for trajectory in trajectories:
        if isinstance(trajectory, Trajectory):
            edges.append(list(trajectory.edges))
            timestamps.append(
                list(trajectory.timestamps) if trajectory.timestamps is not None else None
            )
        else:
            edges.append(list(trajectory))
            timestamps.append(None)
    return edges, timestamps


def sample_paths(
    trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
    pattern_length: int,
    n_paths: int,
    seed: int = 0,
) -> list[list[Hashable]]:
    """Sample query paths (raw edges, travel order) from real trajectories.

    The backend-independent analogue of the paper's workload protocol
    ("queries randomly sampled from the data"): windows are drawn from the
    trajectories themselves, so they never straddle a separator and can be fed
    straight into :meth:`TrajectoryEngine.count` on any backend.
    """
    if pattern_length < 1:
        raise DatasetError("pattern_length must be positive")
    if n_paths < 1:
        raise DatasetError("n_paths must be positive")
    edges, _ = _normalise_trajectories(trajectories)
    eligible = [t for t in edges if len(t) >= pattern_length]
    if not eligible:
        raise DatasetError(
            f"no trajectory is at least {pattern_length} segments long; "
            "shorten the pattern length"
        )
    rng = np.random.default_rng(seed)
    paths: list[list[Hashable]] = []
    for _ in range(n_paths):
        trajectory = eligible[int(rng.integers(len(eligible)))]
        start = int(rng.integers(0, len(trajectory) - pattern_length + 1))
        paths.append(list(trajectory[start : start + pattern_length]))
    return paths


class TrajectoryEngine:
    """Unified query facade over every registered index backend.

    Instances are created with :meth:`build` (from raw trajectories or a
    :class:`~repro.trajectories.TrajectoryDataset`) or :meth:`load` (from a
    directory written by :meth:`save`); the constructor is an internal
    assembly point shared by both paths.
    """

    def __init__(
        self,
        backend: EngineBackend,
        config: EngineConfig,
        timestamps: TimestampStore | Sequence[list[float] | None] = (),
    ):
        self._backend = backend
        self._config = config
        self._spec = backend_spec(config.backend)
        if isinstance(timestamps, TimestampStore):
            self._store = timestamps
        else:
            self._validate_timestamps(timestamps, first_id=0)
            self._store = TimestampStore(timestamps)
        # The temporal companion is built lazily (and only once per growth
        # step), so streaming ingestion stays linear in the fleet size.
        self._temporal: TemporalIndex | None = None
        self._temporal_fresh = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
        config: EngineConfig | None = None,
    ) -> "TrajectoryEngine":
        """Build an engine from raw trajectories (or a dataset) and a config.

        An empty trajectory collection is only allowed for growth-capable
        backends (start an empty fleet, then :meth:`add_batch`).
        """
        config = config or EngineConfig()
        spec = backend_spec(config.backend)
        edges, timestamps = _normalise_trajectories(trajectories)
        if not edges and not spec.supports_growth:
            raise ConstructionError(
                "cannot build a trajectory string from zero trajectories"
            )
        backend = spec.factory(edges, config)
        return cls(backend, config, timestamps)

    @classmethod
    def load(cls, directory) -> "TrajectoryEngine":
        """Reload an engine persisted with :meth:`save` (any backend)."""
        from ..io.index_io import load_index

        return load_index(directory)

    def save(self, directory) -> None:
        """Persist the engine (config + alphabet + backend state) to a directory."""
        from ..io.index_io import save_index

        save_index(self, directory)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> EngineConfig:
        """The construction configuration."""
        return self._config

    @property
    def spec(self) -> BackendSpec:
        """The registry spec of the active backend."""
        return self._spec

    @property
    def backend(self) -> EngineBackend:
        """The backend adapter (exposes the wrapped index structure)."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Canonical registry key of the active backend."""
        return self._spec.name

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet mapping raw edge IDs to indexed symbols."""
        return self._backend.alphabet

    @property
    def length(self) -> int:
        """Total indexed trajectory-string length (including separators)."""
        return self._backend.length

    @property
    def sigma(self) -> int:
        """Alphabet size (distinct edges + the two special symbols)."""
        return self._backend.sigma

    @property
    def n_trajectories(self) -> int:
        """Number of indexed trajectories."""
        return self._backend.n_trajectories

    @property
    def temporal(self) -> TemporalIndex | None:
        """The temporal companion index (``None`` when disabled/unavailable)."""
        if not self._temporal_fresh:
            if self._config.temporal_index and self._fully_timestamped():
                self._temporal = self._build_temporal()
            else:
                self._temporal = None
            self._temporal_fresh = True
        return self._temporal

    @property
    def timestamp_store(self) -> TimestampStore:
        """The compressed per-trajectory timestamp store."""
        return self._store

    def timestamps_of(self, trajectory_id: int) -> list[float] | None:
        """Per-segment timestamps of one trajectory (``None`` when absent)."""
        return self._store.get(trajectory_id)

    @property
    def timestamps(self) -> list[list[float] | None]:
        """Per-trajectory timestamp lists, aligned to :attr:`n_trajectories`."""
        aligned = self._store.as_lists()[: self.n_trajectories]
        aligned.extend([None] * (self.n_trajectories - len(aligned)))
        return aligned

    def size_in_bits(self) -> int:
        """Backend index size plus the exact temporal storage (when present)."""
        return self._backend.size_in_bits() + self.temporal_size_in_bits()

    def temporal_size_in_bits(self) -> int:
        """Exact encoded size of the timestamp store (0 without timestamps)."""
        if not self._store.any_timestamped:
            return 0
        return self._store.size_in_bits()

    def bits_per_symbol(self) -> float:
        """Index size divided by trajectory-string length."""
        length = self.length
        if length == 0:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        return self.size_in_bits() / length

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #
    def add_batch(
        self,
        trajectories: TrajectoryDataset | Iterable[Trajectory | Sequence[Hashable]],
    ) -> None:
        """Index newly arrived trajectories (growth-capable backends only)."""
        edges, timestamps = _normalise_trajectories(trajectories)
        self._validate_timestamps(timestamps, first_id=len(self._store))
        self._backend.add_batch(edges)
        self._store.extend(timestamps)
        self._temporal_fresh = False

    @property
    def n_partitions(self) -> int:
        """Number of independent partitions (1 for monolithic backends)."""
        return self._backend.n_partitions

    def consolidate(self) -> None:
        """Merge all partitions into one (growth-capable backends only).

        This is the paper's Section III-A periodic reconstruction, exposed on
        the facade so growth workflows never touch backend internals.
        """
        self._backend.consolidate()

    # ------------------------------------------------------------------ #
    # scalar queries (raw edge sequences in, plain values out)
    # ------------------------------------------------------------------ #
    def count(self, path: Sequence[Hashable]) -> int:
        """Occurrences of the path across all indexed trajectories."""
        return self._backend.count(self._encode(path))

    def contains(self, path: Sequence[Hashable]) -> bool:
        """True when the path occurs at least once."""
        return self._backend.contains(self._encode(path))

    def count_many(self, paths: Sequence[Sequence[Hashable]]) -> list[int]:
        """Batched :meth:`count` through the backend's vectorized path."""
        return self._backend.count_many([self._encode(path) for path in paths])

    def locate(self, path: Sequence[Hashable]) -> list[StrictPathMatch]:
        """Every occurrence of the path, resolved to trajectory coordinates."""
        return self._resolve_matches(path)

    def extract(self, row: int, length: int) -> list[Hashable]:
        """Algorithm-4 extraction, decoded back to edge IDs (``#``/``$`` markers)."""
        return self._decode_symbols(self._backend.extract(row, length))

    def strict_path(
        self,
        path: Sequence[Hashable],
        t_start: float | None = None,
        t_end: float | None = None,
    ) -> list[StrictPathMatch]:
        """Strict path query: traversals of ``path`` within ``[t_start, t_end]``.

        Mirrors :meth:`repro.StrictPathIndex.query` on every locate-capable
        backend.  Both interval bounds must be given together.  Temporal
        filtering is per match: a traversal qualifies when its own trajectory
        carries timestamps and the traversal lies inside the window, so a
        partially timestamped fleet still answers windowed queries —
        occurrences on timestamp-less trajectories are simply dropped (they
        cannot prove they happened inside the window).  Only when *no*
        trajectory in the fleet carries timestamps is a windowed query
        rejected with a :class:`~repro.exceptions.QueryError`.
        """
        if (t_start is None) != (t_end is None):
            raise QueryError("provide both t_start and t_end, or neither")
        if t_start is not None and not self._store.any_timestamped:
            raise QueryError(
                "the dataset has no timestamps; temporal filtering is unavailable"
            )
        matches = self._resolve_matches(path)
        if t_start is None:
            return matches
        active: set[int] | None = None
        if self.temporal is not None:
            active = set(self.temporal.active_during(t_start, t_end))
        filtered: list[StrictPathMatch] = []
        for match in matches:
            if active is not None and match.trajectory_id not in active:
                continue
            if match.start_time is None or match.end_time is None:
                continue
            if match.start_time < t_start or match.end_time > t_end:
                continue
            filtered.append(match)
        return filtered

    # ------------------------------------------------------------------ #
    # typed query API
    # ------------------------------------------------------------------ #
    def run(self, query: EngineQuery) -> EngineResult:
        """Answer one typed query."""
        if isinstance(query, CountQuery):
            return CountResult(query, self.count(query.path))
        if isinstance(query, ContainsQuery):
            return ContainsResult(query, self.contains(query.path))
        if isinstance(query, LocateQuery):
            return LocateResult(query, tuple(self.locate(query.path)))
        if isinstance(query, ExtractQuery):
            symbols = self._backend.extract(query.row, query.length)
            return ExtractResult(
                query, tuple(symbols), tuple(self._decode_symbols(symbols))
            )
        if isinstance(query, StrictPathQuery):
            return StrictPathResult(
                query, tuple(self.strict_path(query.path, query.t_start, query.t_end))
            )
        raise QueryError(f"unsupported query type: {type(query).__name__}")

    def run_many(self, queries: Sequence[EngineQuery]) -> list[EngineResult]:
        """Answer a mixed workload, batch-first.

        Count/contains queries share one vectorized ``count_many`` pass;
        extract queries are grouped by length into ``extract_many`` batches;
        locate and strict-path queries run per query (each already batches its
        whole suffix range internally).  Results come back in input order and
        are identical to calling :meth:`run` per query.
        """
        queries = list(queries)
        known = (CountQuery, ContainsQuery, LocateQuery, ExtractQuery, StrictPathQuery)
        for query in queries:
            if not isinstance(query, known):
                raise QueryError(f"unsupported query type: {type(query).__name__}")
        results: list[EngineResult | None] = [None] * len(queries)

        count_like = [
            (i, q) for i, q in enumerate(queries) if isinstance(q, (CountQuery, ContainsQuery))
        ]
        if count_like:
            patterns = [self._encode(q.path) for _, q in count_like]
            for (i, query), count in zip(count_like, self._backend.count_many(patterns)):
                if isinstance(query, CountQuery):
                    results[i] = CountResult(query, count)
                else:
                    results[i] = ContainsResult(query, count > 0)

        extract_groups: dict[int, list[tuple[int, ExtractQuery]]] = {}
        for i, query in enumerate(queries):
            if isinstance(query, ExtractQuery):
                extract_groups.setdefault(query.length, []).append((i, query))
        for length, group in extract_groups.items():
            rows = [query.row for _, query in group]
            for (i, query), symbols in zip(group, self._backend.extract_many(rows, length)):
                results[i] = ExtractResult(
                    query, tuple(symbols), tuple(self._decode_symbols(symbols))
                )

        for i, query in enumerate(queries):
            if results[i] is not None:
                continue
            results[i] = self.run(query)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _encode(self, path: Sequence[Hashable]) -> list[int]:
        if self._backend.n_trajectories == 0:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        edges = list(path)
        if not edges:
            raise QueryError(EMPTY_PATH_MESSAGE)
        return self._backend.alphabet.encode_path(edges)

    def _resolve_matches(self, path: Sequence[Hashable]) -> list[StrictPathMatch]:
        pattern = self._encode(path)
        matches: list[StrictPathMatch] = []
        decoded: dict[int, list[float] | None] = {}
        for trajectory_id, start, end in self._backend.locate_matches(pattern):
            if trajectory_id not in decoded:
                decoded[trajectory_id] = (
                    self._store.get(trajectory_id)
                    if 0 <= trajectory_id < len(self._store)
                    else None
                )
            times = decoded[trajectory_id]
            matches.append(
                StrictPathMatch(
                    trajectory_id=trajectory_id,
                    start_edge_index=start,
                    end_edge_index=end,
                    start_time=times[start] if times is not None else None,
                    end_time=times[end] if times is not None else None,
                )
            )
        return matches

    def _decode_symbols(self, symbols: Sequence[int]) -> list[Hashable]:
        alphabet = self._backend.alphabet
        decoded: list[Hashable] = []
        for symbol in symbols:
            symbol = int(symbol)
            if alphabet.is_edge_symbol(symbol):
                decoded.append(alphabet.decode(symbol))
            else:
                decoded.append("$" if symbol == SEP_SYMBOL else "#")
        return decoded

    def _fully_timestamped(self) -> bool:
        return self._store.fully_timestamped

    @staticmethod
    def _validate_timestamps(
        timestamps: Sequence[list[float] | None], first_id: int
    ) -> None:
        # The same construction-time check TemporalIndex.from_trajectories
        # performs, applied only to newly arriving trajectories so streaming
        # ingestion stays linear overall.
        for offset, times in enumerate(timestamps):
            if times is None:
                continue
            if np.any(np.diff(np.asarray(times, dtype=np.float64)) < 0):
                raise ConstructionError(
                    f"trajectory {first_id + offset} has decreasing timestamps"
                )

    def _build_temporal(self) -> TemporalIndex:
        decoded = [
            np.asarray(self._store.get(i), dtype=np.float64)
            for i in range(len(self._store))
        ]
        starts = np.asarray([times[0] for times in decoded], dtype=np.float64)
        ends = np.asarray([times[-1] for times in decoded], dtype=np.float64)
        deltas = [np.diff(times) for times in decoded]
        return TemporalIndex(starts=starts, deltas=deltas, ends=ends)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TrajectoryEngine(backend={self.backend_name!r}, "
            f"trajectories={self.n_trajectories}, length={self.length})"
        )
