"""Normalize stage of the engine query pipeline.

The engine answers queries through a staged pipeline — **normalize** (this
module), **optimize** and **execute** (:mod:`repro.engine.executor`):

* normalize turns a raw-edge :class:`~repro.engine.queries.EngineQuery` into a
  canonical, hashable :class:`QueryPlan`: the pattern encoded against the
  backend's alphabet, the capability the backend must provide, and any
  strict-path window bounds.  *Every* ``QueryError`` / ``AlphabetError`` the
  query can raise (empty index, empty path, unknown segment, half-open or
  timestamp-less windows, missing capability) is raised here, before anything
  executes;
* optimize groups a batch of plans by (query type x capability) and dedupes
  identical plans so each distinct piece of work runs once;
* execute routes each group through the backend's vectorized ``*_many`` paths,
  fronted by an epoch-invalidated LRU result cache.  Suffix-searching
  backends get two further sharing layers underneath the result cache: the
  batch's encoded patterns are folded into one prefix trie so overlapping
  patterns share every common backward-search step
  (:mod:`repro.fmindex.trie`), and an epoch-invalidated
  :class:`~repro.engine.executor.IntervalCache` of suffix ranges lets warm
  prefixes resume mid-search instead of starting over.

Canonicalization is what makes the cache effective: a ``ContainsQuery``
normalizes to a dedicated contains plan whose :meth:`QueryPlan.count_twin`
names the count plan over the same path (so a cached count answers the
contains without touching the backend), and a windowed ``StrictPathQuery``
shares its locate plan with ``LocateQuery`` — the window is carried on the
plan but stripped from the cache key (:meth:`QueryPlan.canonical`), so
time-window variations of one path hit one cached locate result.

Plans also carry a **shard-routing hint** (:attr:`QueryPlan.shard`): the
sharded fleet layer (:mod:`repro.engine.sharding`) plans every query against
the whole fleet first, then stamps single-shard-routable plans (extraction by
global BWT row) with the shard that owns them; fan-out plans keep the
:data:`ALL_SHARDS` default.  Unsharded engines never set the hint, so their
cache keys are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Hashable, Sequence

from ..exceptions import EMPTY_INDEX_MESSAGE, EMPTY_PATH_MESSAGE, QueryError
from .queries import (
    ContainsQuery,
    CountQuery,
    EngineQuery,
    ExtractQuery,
    LocateQuery,
    StrictPathQuery,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..temporal.store import TimestampStore
    from .backends import EngineBackend
    from .registry import BackendSpec

#: Capability kinds a plan can require from a backend.  ``count`` and
#: ``contains`` are answered by every backend; ``locate`` and ``extract`` map
#: to the ``supports_locate`` / ``supports_extract`` flags on the backend spec.
KIND_COUNT = "count"
KIND_CONTAINS = "contains"
KIND_LOCATE = "locate"
KIND_EXTRACT = "extract"

#: Shard-routing hint for plans that must fan out to every shard (also the
#: value every plan carries on an unsharded engine).
ALL_SHARDS = -1


@dataclass(frozen=True)
class QueryPlan:
    """Canonical execution record for one normalized query.

    Plans are hashable and equality-comparable, so they serve directly as
    dedupe keys inside a batch and (via :meth:`canonical`) as result-cache
    keys.  ``kind`` doubles as the capability requirement the backend must
    satisfy; ``pattern`` is the path encoded to internal symbols; ``row`` /
    ``length`` address Algorithm-4 extraction; ``t_start`` / ``t_end`` carry
    strict-path window bounds.
    """

    kind: str
    pattern: tuple[int, ...] = ()
    row: int = -1
    length: int = 0
    t_start: float | None = None
    t_end: float | None = None
    shard: int = ALL_SHARDS

    @property
    def windowed(self) -> bool:
        """True when the plan carries strict-path window bounds."""
        return self.t_start is not None

    @property
    def routed(self) -> bool:
        """True when the plan is pinned to a single shard of a sharded fleet."""
        return self.shard != ALL_SHARDS

    def canonical(self) -> "QueryPlan":
        """The cache/execution key: this plan with the window stripped.

        Window filtering is a cheap post-processing step over the located
        matches, so every window variation of one path shares a single
        executed (and cached) locate plan.  The shard-routing hint is kept:
        it is part of what the plan *is* on a sharded fleet.
        """
        if self.t_start is None and self.t_end is None:
            return self
        return QueryPlan(
            kind=self.kind, pattern=self.pattern, row=self.row, length=self.length, shard=self.shard
        )

    def with_shard(self, shard: int) -> "QueryPlan":
        """This plan stamped with a shard-routing hint (fleet layer only)."""
        return replace(self, shard=int(shard))

    def count_twin(self) -> "QueryPlan":
        """The count plan a contains plan can be answered from.

        A cached (or same-batch) occurrence count over the same pattern fully
        determines the contains answer, so the executor probes this twin
        before reaching the backend's early-exit ``contains`` path.
        """
        return QueryPlan(kind=KIND_COUNT, pattern=self.pattern, shard=self.shard)


@dataclass(frozen=True)
class PlannedQuery:
    """A query together with its normalized plan (the planner's output)."""

    query: EngineQuery
    plan: QueryPlan


class QueryPlanner:
    """Normalize raw-edge queries into canonical :class:`QueryPlan` records.

    The planner owns every failure mode of the query surface: it validates
    against the backend's alphabet and the spec's capability flags, and
    raises the canonical :class:`~repro.exceptions.QueryError` /
    :class:`~repro.exceptions.AlphabetError` messages *before* the optimize
    and execute stages see the query.
    """

    def __init__(self, backend: "EngineBackend", spec: "BackendSpec", store: "TimestampStore"):
        self._backend = backend
        self._spec = spec
        self._store = store

    def plan(self, query: EngineQuery) -> PlannedQuery:
        """Normalize one query (raising here, never during execution)."""
        if isinstance(query, CountQuery):
            return PlannedQuery(query, QueryPlan(KIND_COUNT, pattern=self.encode(query.path)))
        if isinstance(query, ContainsQuery):
            # A dedicated kind (not a count plan) so execution can reach the
            # backend's early-exit contains specializations; the executor
            # still answers from a cached count via QueryPlan.count_twin.
            return PlannedQuery(query, QueryPlan(KIND_CONTAINS, pattern=self.encode(query.path)))
        if isinstance(query, LocateQuery):
            self._require_locate()
            return PlannedQuery(query, QueryPlan(KIND_LOCATE, pattern=self.encode(query.path)))
        if isinstance(query, StrictPathQuery):
            return PlannedQuery(query, self._plan_strict_path(query))
        if isinstance(query, ExtractQuery):
            self._require_extract()
            row, length = int(query.row), int(query.length)
            # The backend's own bounds checks, replicated here (same messages)
            # so an invalid extraction fails at plan time like every other
            # query — never mid-batch after other plans have executed.
            if not 0 <= row < self._backend.length:
                raise QueryError(
                    f"BWT position {row} out of range [0, {self._backend.length})"
                )
            if length < 0:
                raise QueryError(
                    f"extraction length must be non-negative, got {length}"
                )
            return PlannedQuery(query, QueryPlan(KIND_EXTRACT, row=row, length=length))
        raise QueryError(f"unsupported query type: {type(query).__name__}")

    def plan_many(self, queries: Sequence[EngineQuery]) -> list[PlannedQuery]:
        """Normalize a batch in input order (the first invalid query raises)."""
        return [self.plan(query) for query in queries]

    def encode(self, path: Sequence[Hashable]) -> tuple[int, ...]:
        """Encode a raw edge path, normalizing the canonical failure modes."""
        if self._backend.n_trajectories == 0:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        edges = list(path)
        if not edges:
            raise QueryError(EMPTY_PATH_MESSAGE)
        return tuple(self._backend.alphabet.encode_path(edges))

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _plan_strict_path(self, query: StrictPathQuery) -> QueryPlan:
        if (query.t_start is None) != (query.t_end is None):
            raise QueryError("provide both t_start and t_end, or neither")
        if query.t_start is not None and not self._store.any_timestamped:
            raise QueryError(
                "the dataset has no timestamps; temporal filtering is unavailable"
            )
        self._require_locate()
        return QueryPlan(
            KIND_LOCATE,
            pattern=self.encode(query.path),
            t_start=query.t_start,
            t_end=query.t_end,
        )

    def _require_locate(self) -> None:
        if not self._spec.supports_locate:
            raise QueryError(
                f"locate is not supported by the {self._spec.name!r} backend"
            )

    def _require_extract(self) -> None:
        if not self._spec.supports_extract:
            raise QueryError(
                f"extract is not supported by the {self._spec.name!r} backend"
            )


__all__ = [
    "ALL_SHARDS",
    "KIND_COUNT",
    "KIND_CONTAINS",
    "KIND_LOCATE",
    "KIND_EXTRACT",
    "QueryPlan",
    "PlannedQuery",
    "QueryPlanner",
]
