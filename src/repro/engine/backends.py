"""Backend adapters: one protocol over every index implementation.

Each adapter wraps one of the repository's index structures — CiNCT, the
partitioned CiNCT, the Table-II FM-index baselines, the linear-scan baseline —
behind the uniform :class:`EngineBackend` surface the
:class:`~repro.engine.TrajectoryEngine` facade drives:

* symbol-level ``count`` / ``contains`` / ``count_many`` (the facade encodes
  raw edge paths before calling in);
* ``locate_matches`` resolving every occurrence to travel-order coordinates
  via the shared :func:`~repro.queries.strict_path.resolve_text_position`;
* Algorithm-4 ``extract`` where a suffix structure exists;
* ``save_state`` / ``load`` hooks dispatched by the universal persistence
  layer in :mod:`repro.io.index_io`.

The query surface doubles as the execution surface of the staged query
pipeline: :class:`EngineBackend` structurally satisfies the
:class:`~repro.engine.executor.PlanExecutor` protocol, so every adapter here
(and any third-party one) executes canonical query plans without extra code.

Importing this module populates the backend registry.
"""

from __future__ import annotations

import abc
from functools import partial
from pathlib import Path
from typing import Callable, Hashable, Sequence

import numpy as np

from ..core.cinct import CiNCT
from ..core.partitioned import Partition, PartitionedCiNCT, _TierIntervalView
from ..exceptions import EMPTY_INDEX_MESSAGE, ConstructionError, DatasetError, QueryError
from ..fmindex.base import FMIndexBase
from ..fmindex.linear_scan import LinearScanIndex
from ..fmindex.variants import available_baselines, build_baseline
from ..queries.strict_path import resolve_text_position
from ..strings.alphabet import Alphabet
from ..strings.bwt import BWTResult, burrows_wheeler_transform
from ..strings.trajectory_string import TrajectoryString, build_trajectory_string
from .config import EngineConfig
from .registry import BackendSpec, register_backend

#: ``(trajectory_id, start_edge_index, end_edge_index)`` in travel order.
RawMatch = tuple[int, int, int]


def _cinct_occurrence_positions(
    index: CiNCT, get_bwt: Callable[[], BWTResult], sp: int, ep: int
) -> list[int]:
    """Occurrence positions for a CiNCT suffix range ``[sp, ep)``.

    Sampled indexes locate with the batched LF-walk to the sampled rows;
    unsampled ones fall back to the retained suffix array (which the engine
    keeps for linear-time persistence anyway), so locate/strict-path work
    without ``sa_sample_rate``.  ``get_bwt`` is only called on the fallback
    path.
    """
    if index.has_sa_samples:
        return index.locate_many(range(sp, ep))
    return [int(v) for v in get_bwt().suffix_array[sp:ep]]


class EngineBackend(abc.ABC):
    """Uniform adapter surface every registered backend implements.

    Capability flags live on the :class:`~repro.engine.registry.BackendSpec`
    (the single source of truth the facade and tests consult); adapters
    enforce them by raising :class:`~repro.exceptions.QueryError` from the
    default implementations below.
    """

    spec_name: str = ""

    #: True when the backend's search paths accept an ``interval_cache``
    #: (the engine's epoch-invalidated suffix-range cache) and can resume
    #: backward search from cached pattern-prefix intervals.  The executor
    #: only threads the cache through when this is set, so backends without
    #: suffix ranges (linear scan) are never handed one.
    supports_interval_sharing: bool = False

    # ------------------------------------------------------------------ #
    # identity and bookkeeping
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def alphabet(self) -> Alphabet:
        """Alphabet mapping raw edge IDs to the symbols this backend indexes."""

    @property
    @abc.abstractmethod
    def length(self) -> int:
        """Total indexed trajectory-string length (including separators)."""

    @property
    @abc.abstractmethod
    def n_trajectories(self) -> int:
        """Number of indexed trajectories."""

    @property
    def sigma(self) -> int:
        """Alphabet size."""
        return self.alphabet.sigma

    @abc.abstractmethod
    def size_in_bits(self) -> int:
        """Total index size in bits."""

    # ------------------------------------------------------------------ #
    # queries (symbol level; the facade encodes and validates paths)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def count(self, pattern: Sequence[int]) -> int:
        """Occurrences of an encoded pattern."""

    @abc.abstractmethod
    def count_many(
        self, patterns: Sequence[Sequence[int]], interval_cache=None
    ) -> list[int]:
        """Batched :meth:`count` (vectorized where the backend supports it).

        ``interval_cache`` is only ever passed when
        :attr:`supports_interval_sharing` is true; backends without suffix
        ranges are free to ignore it.
        """

    def contains(self, pattern: Sequence[int], interval_cache=None) -> bool:
        """True when the encoded pattern occurs at least once."""
        return self.count(pattern) > 0

    def locate_matches(
        self, pattern: Sequence[int], interval_cache=None
    ) -> list[RawMatch]:
        """Resolve every occurrence to travel-order trajectory coordinates."""
        raise QueryError(
            f"locate is not supported by the {self.spec_name!r} backend"
        )

    def extract(self, row: int, length: int) -> list[int]:
        """Algorithm-4 extraction by BWT row (symbol output)."""
        raise QueryError(
            f"extract is not supported by the {self.spec_name!r} backend"
        )

    def extract_many(self, rows: Sequence[int], length: int) -> list[list[int]]:
        """Batched :meth:`extract`."""
        raise QueryError(
            f"extract is not supported by the {self.spec_name!r} backend"
        )

    def add_batch(self, trajectories: Sequence[Sequence[Hashable]]) -> None:
        """Index newly arrived trajectories (growth-capable backends only)."""
        raise ConstructionError(
            f"the {self.spec_name!r} backend is immutable once built; "
            "use the 'partitioned-cinct' backend for growing collections"
        )

    @property
    def n_partitions(self) -> int:
        """Number of independent partitions (1 for monolithic backends)."""
        return 1

    def consolidate(self) -> None:
        """Merge all partitions into one (growth-capable backends only)."""
        raise ConstructionError(
            f"the {self.spec_name!r} backend is monolithic and cannot be "
            "consolidated; use the 'partitioned-cinct' backend for growing "
            "collections"
        )

    def set_growth_listener(self, listener: Callable[[], None] | None) -> None:
        """Register a callback fired when the backend grows *asynchronously*.

        Only backends with background compaction ever call it; the default is
        a no-op so the engine can register unconditionally.
        """

    def ingest_stats(self) -> dict[str, object] | None:
        """Tail/compaction observability counters (None for static backends)."""
        return None

    def wait_for_compaction(self, timeout: float | None = None) -> bool:
        """Block until any in-flight background compaction finishes."""
        return True

    # ------------------------------------------------------------------ #
    # persistence hooks (dispatched through the registry)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def save_state(self, directory: Path) -> dict[str, object]:
        """Write backend arrays under ``directory``; return JSON-safe metadata."""


# --------------------------------------------------------------------------- #
# single-trajectory-string backends
# --------------------------------------------------------------------------- #
class _SingleStringBackend(EngineBackend):
    """Shared plumbing for backends indexing one concatenated string."""

    def __init__(self, trajectory_string: TrajectoryString):
        self._trajectory_string = trajectory_string

    @property
    def alphabet(self) -> Alphabet:
        return self._trajectory_string.alphabet

    @property
    def trajectory_string(self) -> TrajectoryString:
        """The indexed trajectory string (alphabet, offsets, lengths)."""
        return self._trajectory_string

    @property
    def length(self) -> int:
        return self._trajectory_string.length

    @property
    def n_trajectories(self) -> int:
        return self._trajectory_string.n_trajectories

    def _occurrence_positions(
        self, pattern: Sequence[int], interval_cache=None
    ) -> list[int]:
        """Start positions (in the stored text) of the reversed pattern."""
        raise QueryError(
            f"locate is not supported by the {self.spec_name!r} backend"
        )

    def locate_matches(
        self, pattern: Sequence[int], interval_cache=None
    ) -> list[RawMatch]:
        matches: list[RawMatch] = []
        for position in self._occurrence_positions(pattern, interval_cache):
            resolved = resolve_text_position(
                self._trajectory_string, int(position), len(pattern)
            )
            if resolved is not None:
                matches.append(resolved)
        matches.sort()
        return matches

    def _string_meta(self) -> dict[str, object]:
        return {
            "trajectory_lengths": [int(v) for v in self._trajectory_string.trajectory_lengths],
            "trajectory_offsets": [int(v) for v in self._trajectory_string.trajectory_offsets],
        }

    @staticmethod
    def _string_from_meta(
        text: np.ndarray, alphabet: Alphabet, meta: dict[str, object]
    ) -> TrajectoryString:
        # asanyarray keeps an np.memmap as a memmap (zero-copy loads);
        # asarray would flatten it into an anonymous view.
        return TrajectoryString(
            text=np.asanyarray(text, dtype=np.int64),
            alphabet=alphabet,
            trajectory_lengths=[int(v) for v in meta["trajectory_lengths"]],  # type: ignore[union-attr]
            trajectory_offsets=[int(v) for v in meta["trajectory_offsets"]],  # type: ignore[union-attr]
        )


class _BWTBackend(_SingleStringBackend):
    """Shared plumbing for BWT-based backends (CiNCT and the FM baselines)."""

    supports_interval_sharing = True

    def __init__(
        self,
        trajectory_string: TrajectoryString,
        bwt_result: BWTResult,
        index: CiNCT | FMIndexBase,
    ):
        super().__init__(trajectory_string)
        self._bwt_result = bwt_result
        self._index = index

    @property
    def index(self) -> CiNCT | FMIndexBase:
        """The wrapped index structure."""
        return self._index

    @property
    def bwt_result(self) -> BWTResult:
        """The BWT artefacts the index was built from (kept for persistence)."""
        return self._bwt_result

    def count(self, pattern: Sequence[int]) -> int:
        return self._index.count(pattern)

    def count_many(
        self, patterns: Sequence[Sequence[int]], interval_cache=None
    ) -> list[int]:
        return self._index.count_many(patterns, interval_cache=interval_cache)

    def contains(self, pattern: Sequence[int], interval_cache=None) -> bool:
        return self._index.contains(pattern, interval_cache=interval_cache)

    def extract(self, row: int, length: int) -> list[int]:
        return self._index.extract(row, length)

    def extract_many(self, rows: Sequence[int], length: int) -> list[list[int]]:
        return self._index.extract_many(rows, length)

    def size_in_bits(self) -> int:
        return self._index.size_in_bits()

    def save_state(self, directory: Path) -> dict[str, object]:
        from ..io.index_io import save_bwt_result

        save_bwt_result(self._bwt_result, directory / "bwt.npz")
        return self._string_meta()

    @staticmethod
    def _build_artefacts(
        trajectories: Sequence[Sequence[Hashable]],
    ) -> tuple[TrajectoryString, BWTResult]:
        trajectory_string = build_trajectory_string(trajectories)
        bwt_result = burrows_wheeler_transform(
            trajectory_string.text, sigma=trajectory_string.sigma
        )
        return trajectory_string, bwt_result

    @staticmethod
    def _load_artefacts(
        directory: Path,
        meta: dict[str, object],
        alphabet: Alphabet,
        mmap: bool = False,
    ) -> tuple[TrajectoryString, BWTResult]:
        from ..io.index_io import load_bwt_result

        bwt_result = load_bwt_result(
            directory / "bwt.npz", mmap_mode="r" if mmap else None
        )
        trajectory_string = _SingleStringBackend._string_from_meta(
            bwt_result.text, alphabet, meta
        )
        return trajectory_string, bwt_result


class CiNCTBackend(_BWTBackend):
    """The paper's compressed index (RML + PseudoRank over an HWT)."""

    spec_name = "cinct"

    def __init__(
        self, trajectory_string: TrajectoryString, bwt_result: BWTResult, index: CiNCT
    ):
        super().__init__(trajectory_string, bwt_result, index)

    @classmethod
    def build(
        cls, trajectories: Sequence[Sequence[Hashable]], config: EngineConfig
    ) -> "CiNCTBackend":
        """Construct the backend from raw trajectories."""
        trajectory_string, bwt_result = cls._build_artefacts(trajectories)
        return cls(trajectory_string, bwt_result, cls._make_index(bwt_result, config))

    @classmethod
    def load(
        cls,
        directory: Path,
        meta: dict[str, object],
        config: EngineConfig,
        alphabet: Alphabet,
        mmap: bool = False,
    ) -> "CiNCTBackend":
        """Rebuild the backend from persisted state (no suffix re-sorting).

        ``mmap=True`` keeps the BWT artefacts as read-only memory maps into
        the archive (the succinct structures still rebuild in linear time).
        """
        trajectory_string, bwt_result = cls._load_artefacts(
            directory, meta, alphabet, mmap=mmap
        )
        return cls(trajectory_string, bwt_result, cls._make_index(bwt_result, config))

    @staticmethod
    def _make_index(bwt_result: BWTResult, config: EngineConfig) -> CiNCT:
        return CiNCT(
            bwt_result,
            block_size=config.block_size,
            labeling_strategy=config.labeling_strategy,  # type: ignore[arg-type]
            sa_sample_rate=config.sa_sample_rate,
        )

    def _occurrence_positions(
        self, pattern: Sequence[int], interval_cache=None
    ) -> list[int]:
        index = self._index
        assert isinstance(index, CiNCT)
        found = index.suffix_range(pattern, interval_cache=interval_cache)
        if found is None:
            return []
        sp, ep = found
        return _cinct_occurrence_positions(index, lambda: self._bwt_result, sp, ep)


class FMBaselineBackend(_BWTBackend):
    """Any Table-II FM-index baseline (UFMI, ICB-WM, ICB-Huff, FM-GMR, FM-AP-HYB)."""

    def __init__(
        self,
        trajectory_string: TrajectoryString,
        bwt_result: BWTResult,
        index: FMIndexBase,
        variant: str,
    ):
        super().__init__(trajectory_string, bwt_result, index)
        self.spec_name = variant.lower()
        self.variant = variant

    @classmethod
    def build(
        cls,
        trajectories: Sequence[Sequence[Hashable]],
        config: EngineConfig,
        variant: str = "UFMI",
    ) -> "FMBaselineBackend":
        """Construct the named baseline from raw trajectories."""
        trajectory_string, bwt_result = cls._build_artefacts(trajectories)
        index = build_baseline(variant, bwt_result, block_size=config.block_size)
        return cls(trajectory_string, bwt_result, index, variant)

    @classmethod
    def load(
        cls,
        directory: Path,
        meta: dict[str, object],
        config: EngineConfig,
        alphabet: Alphabet,
        variant: str = "UFMI",
        mmap: bool = False,
    ) -> "FMBaselineBackend":
        """Rebuild the named baseline from persisted state."""
        trajectory_string, bwt_result = cls._load_artefacts(
            directory, meta, alphabet, mmap=mmap
        )
        index = build_baseline(variant, bwt_result, block_size=config.block_size)
        return cls(trajectory_string, bwt_result, index, variant)

    def _occurrence_positions(
        self, pattern: Sequence[int], interval_cache=None
    ) -> list[int]:
        found = self._index.suffix_range(pattern, interval_cache=interval_cache)
        if found is None:
            return []
        sp, ep = found
        return [int(v) for v in self._bwt_result.suffix_array[sp:ep]]


class LinearScanBackend(_SingleStringBackend):
    """Boyer–Moore–Horspool scanning of the uncompressed trajectory string."""

    spec_name = "linear-scan"

    def __init__(self, trajectory_string: TrajectoryString):
        super().__init__(trajectory_string)
        self._index = LinearScanIndex(
            trajectory_string.text, sigma=trajectory_string.sigma
        )

    @classmethod
    def build(
        cls, trajectories: Sequence[Sequence[Hashable]], config: EngineConfig
    ) -> "LinearScanBackend":
        """Construct the scanner from raw trajectories (no BWT needed)."""
        return cls(build_trajectory_string(trajectories))

    @classmethod
    def load(
        cls,
        directory: Path,
        meta: dict[str, object],
        config: EngineConfig,
        alphabet: Alphabet,
        mmap: bool = False,
    ) -> "LinearScanBackend":
        """Rebuild the scanner from the persisted raw text.

        ``mmap=True`` scans directly over a read-only map of the stored
        text — the whole point of a no-index baseline served cold.
        """
        from ..io.npzutil import load_npz_arrays

        path = directory / "text.npz"
        if not path.exists():
            raise DatasetError(f"linear-scan text archive not found: {path}")
        text = load_npz_arrays(path, mmap_mode="r" if mmap else None)["text"]
        if text.dtype != np.int64:
            text = text.astype(np.int64)
        return cls(cls._string_from_meta(text, alphabet, meta))

    @property
    def index(self) -> LinearScanIndex:
        """The wrapped scanner."""
        return self._index

    def count(self, pattern: Sequence[int]) -> int:
        return self._index.count(pattern)

    def count_many(
        self, patterns: Sequence[Sequence[int]], interval_cache=None
    ) -> list[int]:
        # No suffix structure, so there are no intervals to share or cache.
        return self._index.count_many(patterns)

    def contains(self, pattern: Sequence[int], interval_cache=None) -> bool:
        return self._index.contains(pattern)

    def size_in_bits(self) -> int:
        return self._index.size_in_bits()

    def _occurrence_positions(
        self, pattern: Sequence[int], interval_cache=None
    ) -> list[int]:
        return self._index.occurrences(pattern)

    def save_state(self, directory: Path) -> dict[str, object]:
        # Uncompressed so load(..., mmap=True) can map the text in place.
        np.savez(directory / "text.npz", text=self._trajectory_string.text)
        return self._string_meta()


# --------------------------------------------------------------------------- #
# partitioned backend
# --------------------------------------------------------------------------- #
class PartitionedBackend(EngineBackend):
    """Growing collection of CiNCT partitions over a shared alphabet."""

    spec_name = "partitioned-cinct"
    supports_interval_sharing = True

    def __init__(self, partitioned: PartitionedCiNCT):
        self._partitioned = partitioned

    @classmethod
    def build(
        cls, trajectories: Sequence[Sequence[Hashable]], config: EngineConfig
    ) -> "PartitionedBackend":
        """Construct the backend; an empty trajectory list starts an empty fleet."""
        partitioned = PartitionedCiNCT(
            block_size=config.block_size,
            max_partitions=config.max_partitions,
            tail_max_symbols=config.tail_max_symbols,
            tail_max_trajectories=config.tail_max_trajectories,
            compaction=config.compaction,
            **cls._cinct_kwargs(config),
        )
        trajectories = list(trajectories)
        if trajectories:
            partitioned.add_batch(trajectories)
        return cls(partitioned)

    @classmethod
    def load(
        cls,
        directory: Path,
        meta: dict[str, object],
        config: EngineConfig,
        alphabet: Alphabet,
        mmap: bool = False,
    ) -> "PartitionedBackend":
        """Rebuild every partition from its persisted BWT artefacts.

        Like the single-index backends, the succinct structures come back in
        linear time from the stored arrays — the suffix sort is never re-run.
        ``mmap=True`` maps each partition archive read-only; growth after the
        load builds *new* partitions from new in-memory arrays and never
        writes through the mapped pages (they would raise if it tried).
        """
        from ..io.index_io import load_bwt_result

        partitions: list[Partition] = []
        for entry in meta.get("partitions", []):  # type: ignore[union-attr]
            archive_path = directory / str(entry["archive"])
            if not archive_path.exists():
                raise DatasetError(f"partition archive not found: {archive_path}")
            bwt_result = load_bwt_result(
                archive_path, mmap_mode="r" if mmap else None
            )
            trajectory_string = TrajectoryString(
                text=bwt_result.text,
                alphabet=alphabet,
                trajectory_lengths=[int(v) for v in entry["trajectory_lengths"]],
                trajectory_offsets=[int(v) for v in entry["trajectory_offsets"]],
            )
            index = CiNCT(
                bwt_result,
                block_size=config.block_size,
                **cls._cinct_kwargs(config),
            )
            partitions.append(
                Partition(
                    index=index,
                    trajectory_string=trajectory_string,
                    n_trajectories=int(entry["n_trajectories"]),
                    first_trajectory_id=int(entry["first_trajectory_id"]),
                    bwt_result=bwt_result,
                )
            )
        partitioned = PartitionedCiNCT.from_parts(
            alphabet,
            partitions,
            block_size=config.block_size,
            max_partitions=config.max_partitions,
            tail_max_symbols=config.tail_max_symbols,
            tail_max_trajectories=config.tail_max_trajectories,
            compaction=config.compaction,
            **cls._cinct_kwargs(config),
        )
        tail_meta = meta.get("tail")
        if tail_meta is not None:
            from ..io.npzutil import load_npz_arrays

            tail_path = directory / str(tail_meta["archive"])  # type: ignore[index]
            if not tail_path.exists():
                raise DatasetError(f"tail archive not found: {tail_path}")
            # The tail is mutable (appends land in it after the load), so it
            # is always fully deserialised — never mmapped.
            arrays = load_npz_arrays(tail_path)
            partitioned.restore_tail(
                np.asarray(arrays["text"], dtype=np.int64),
                [int(v) for v in arrays["lengths"]],
                int(tail_meta["first_trajectory_id"]),  # type: ignore[index]
            )
        return cls(partitioned)

    @staticmethod
    def _cinct_kwargs(config: EngineConfig) -> dict[str, object]:
        kwargs: dict[str, object] = {"labeling_strategy": config.labeling_strategy}
        if config.sa_sample_rate is not None:
            kwargs["sa_sample_rate"] = config.sa_sample_rate
        return kwargs

    @property
    def partitioned(self) -> PartitionedCiNCT:
        """The wrapped partitioned index."""
        return self._partitioned

    @property
    def alphabet(self) -> Alphabet:
        return self._partitioned.alphabet

    @property
    def length(self) -> int:
        return self._partitioned.total_symbols()

    @property
    def n_trajectories(self) -> int:
        return self._partitioned.n_trajectories

    def size_in_bits(self) -> int:
        return self._partitioned.size_in_bits()

    def count(self, pattern: Sequence[int]) -> int:
        return self._partitioned.count_encoded(pattern)

    def count_many(
        self, patterns: Sequence[Sequence[int]], interval_cache=None
    ) -> list[int]:
        # One pattern trie fans across compressed partitions ∪ tail, with the
        # interval cache shared through tier-scoped key views.
        return self._partitioned.count_encoded_many(
            patterns, interval_cache=interval_cache
        )

    def contains(self, pattern: Sequence[int], interval_cache=None) -> bool:
        # Any-partition short-circuit: stops at the first partition that
        # reports a match instead of counting across all of them.  The
        # short-circuit walk does not consult the interval cache (tier order
        # would make hit bookkeeping ambiguous); the cache still serves the
        # count twin sharing path above it.
        return self._partitioned.contains_encoded(pattern)

    def locate_matches(
        self, pattern: Sequence[int], interval_cache=None
    ) -> list[RawMatch]:
        snap = self._partitioned.snapshot()
        if snap.empty:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        pattern = [int(s) for s in pattern]
        largest = max(pattern, default=-1)
        share = interval_cache is not None and getattr(interval_cache, "enabled", True)
        matches: list[RawMatch] = []
        for tier, partition in enumerate(snap.partitions):
            index = partition.index
            if largest >= index.sigma:
                continue
            view = _TierIntervalView(interval_cache, tier) if share else None
            found = index.suffix_range(pattern, interval_cache=view)
            if found is None:
                continue
            sp, ep = found
            positions = _cinct_occurrence_positions(
                index, lambda: self._partition_bwt(partition), sp, ep
            )
            for position in positions:
                resolved = resolve_text_position(
                    partition.trajectory_string, int(position), len(pattern)
                )
                if resolved is None:
                    continue
                local_index, start, end = resolved
                matches.append((partition.first_trajectory_id + local_index, start, end))
        tail = snap.tail
        if tail is not None and largest < tail.scanner.sigma:
            # The uncompressed tier scans instead of backward-searching; the
            # resolved coordinates are identical to what the same trajectories
            # would yield once sealed into a partition.
            for position in tail.scanner.occurrences(pattern):
                resolved = resolve_text_position(
                    tail.trajectory_string, int(position), len(pattern)
                )
                if resolved is None:
                    continue
                local_index, start, end = resolved
                matches.append((tail.first_trajectory_id + local_index, start, end))
        matches.sort()
        return matches

    @staticmethod
    def _partition_bwt(partition: Partition) -> BWTResult:
        if partition.bwt_result is None:
            # Partitions assembled outside add_batch/consolidate may lack
            # retained artefacts; recompute once and cache on the partition.
            partition.bwt_result = burrows_wheeler_transform(
                partition.trajectory_string.text, sigma=partition.index.sigma
            )
        return partition.bwt_result

    def add_batch(self, trajectories: Sequence[Sequence[Hashable]]) -> None:
        self._partitioned.add_batch(trajectories)

    @property
    def n_partitions(self) -> int:
        return self._partitioned.n_partitions

    def consolidate(self) -> None:
        self._partitioned.consolidate()

    def set_growth_listener(self, listener: Callable[[], None] | None) -> None:
        self._partitioned.set_growth_listener(listener)

    def ingest_stats(self) -> dict[str, object] | None:
        stats = self._partitioned.ingest_stats()
        stats["retained_bits"] = self._partitioned.retained_bits()
        return stats

    def wait_for_compaction(self, timeout: float | None = None) -> bool:
        return self._partitioned.wait_for_compaction(timeout)

    def save_state(self, directory: Path) -> dict[str, object]:
        from ..io.index_io import save_bwt_result

        # One snapshot drives the whole save: a background compaction swap
        # mid-save cannot produce a manifest that mixes pre- and post-swap
        # tiers (the pre-swap view is itself complete and consistent).
        snap = self._partitioned.snapshot()
        entries: list[dict[str, object]] = []
        for k, partition in enumerate(snap.partitions):
            archive = f"partition_{k}.npz"
            save_bwt_result(self._partition_bwt(partition), directory / archive)
            entries.append(
                {
                    "archive": archive,
                    "n_trajectories": int(partition.n_trajectories),
                    "first_trajectory_id": int(partition.first_trajectory_id),
                    "trajectory_lengths": [
                        int(v) for v in partition.trajectory_string.trajectory_lengths
                    ],
                    "trajectory_offsets": [
                        int(v) for v in partition.trajectory_string.trajectory_offsets
                    ],
                }
            )
        meta: dict[str, object] = {"partitions": entries}
        tail = snap.tail
        if tail is not None:
            archive = "tail.npz"
            # Uncompressed npz, like the linear-scan backend's text artefact.
            np.savez(
                directory / archive,
                text=tail.trajectory_string.text[:-1],
                lengths=np.asarray(
                    tail.trajectory_string.trajectory_lengths, dtype=np.int64
                ),
            )
            meta["tail"] = {
                "archive": archive,
                "first_trajectory_id": int(tail.first_trajectory_id),
            }
        return meta


# --------------------------------------------------------------------------- #
# registry population
# --------------------------------------------------------------------------- #
register_backend(
    BackendSpec(
        name="cinct",
        display_name="CiNCT",
        factory=CiNCTBackend.build,
        loader=CiNCTBackend.load,
        description="RML-labelled BWT in a Huffman wavelet tree over RRR (the paper)",
    )
)
register_backend(
    BackendSpec(
        name="partitioned-cinct",
        display_name="CiNCT-Part",
        factory=PartitionedBackend.build,
        loader=PartitionedBackend.load,
        description="immutable CiNCT partitions over a shared alphabet (growing fleets)",
        aliases=("partitioned",),
        supports_extract=False,
        supports_growth=True,
    )
)

_BASELINE_DESCRIPTIONS = {
    "UFMI": "wavelet matrix over the BWT with plain bitmaps",
    "ICB-WM": "wavelet matrix over the BWT with RRR bitmaps",
    "ICB-Huff": "Huffman wavelet tree over the BWT with RRR bitmaps",
    "FM-GMR": "per-symbol position lists (largest but fast)",
    "FM-AP-HYB": "alphabet-partitioned nested wavelet matrices",
}
for _variant in available_baselines():
    register_backend(
        BackendSpec(
            name=_variant.lower(),
            display_name=_variant,
            factory=partial(FMBaselineBackend.build, variant=_variant),
            loader=partial(FMBaselineBackend.load, variant=_variant),
            description=_BASELINE_DESCRIPTIONS.get(_variant, ""),
        )
    )

register_backend(
    BackendSpec(
        name="linear-scan",
        display_name="LinearScan",
        factory=LinearScanBackend.build,
        loader=LinearScanBackend.load,
        description="Boyer–Moore–Horspool over the raw 32-bit string (no index)",
        aliases=("linearscan", "scan"),
        supports_extract=False,
    )
)
