"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses are raised close to the
point of failure with actionable messages.

The module also hosts the *canonical* messages for the error conditions every
index backend can hit (empty patterns, out-of-alphabet symbols, unknown road
segments, queries on empty indexes).  All entry points — the individual index
classes as well as the :class:`~repro.engine.TrajectoryEngine` facade — raise
these exact messages so callers can rely on uniform behaviour regardless of
which backend answers a query.
"""

from __future__ import annotations

#: Canonical message for a query pattern with zero symbols.
EMPTY_PATTERN_MESSAGE = "the query pattern must contain at least one symbol"

#: Canonical message for a query path with zero road segments.
EMPTY_PATH_MESSAGE = "the query path must contain at least one segment"

#: Canonical message for querying an index that holds no trajectories yet.
EMPTY_INDEX_MESSAGE = "the index is empty; add trajectories before querying"


def symbol_out_of_range_message(symbol: int, sigma: int) -> str:
    """Canonical message for a pattern symbol outside ``[0, sigma)``."""
    return f"pattern symbol {symbol} outside alphabet [0, {sigma})"


def unknown_segment_message(edge_id: object) -> str:
    """Canonical message for a road segment absent from the alphabet."""
    return f"unknown road segment: {edge_id!r}"


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConstructionError(ReproError):
    """Raised when an index or data structure cannot be built from its input."""


class QueryError(ReproError):
    """Raised when a query is malformed (bad bounds, empty pattern, ...)."""


class AlphabetError(ReproError):
    """Raised when a symbol is outside the alphabet an index was built over."""


class DatasetError(ReproError):
    """Raised when a dataset generator receives inconsistent parameters."""


class NetworkError(ReproError):
    """Raised for invalid road-network operations (unknown edges, no path, ...)."""


class IndexCorruptionError(DatasetError):
    """Raised when a persisted index fails integrity verification on load.

    Torn writes, truncated/corrupted ``.npz`` archives, and shard
    subdirectories missing from a manifest all surface as this one error,
    whose message names the offending artefact.  It subclasses
    :class:`DatasetError` so callers already catching load failures keep
    working.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the serving tier (:mod:`repro.service`)."""


class ServiceOverloadError(ServiceError):
    """A request was shed by the serving tier's admission control.

    Raised (never queued past) when accepting the request would exceed the
    service's ``max_queue_depth``, or when the service is draining on
    shutdown.  Always :attr:`retriable`: the request was refused *before*
    touching the engine, so resubmitting later is safe.  :attr:`reason` is
    the canonical shed-counter key (``"queue_full"`` or ``"shutdown"``).
    """

    def __init__(self, reason: str = "queue_full", message: str | None = None):
        self.reason = str(reason)
        self.retriable = True
        super().__init__(
            message or f"service overloaded ({self.reason}); retry later"
        )


class DeadlineExceededError(ServiceError):
    """A request's deadline expired (or provably will) before execution.

    Raised at admission when the deadline falls before the next micro-batch
    window can close, or at dispatch when the deadline lapsed while the
    request waited in the window.  The engine never ran for this request, so
    no partial answer exists.
    """

    def __init__(self, message: str = "request deadline exceeded before execution"):
        self.reason = "deadline"
        self.retriable = False
        super().__init__(message)


class ShardExecutionError(ReproError):
    """A shard operation failed after exhausting its retry budget.

    Carries the shard id, the operation that failed (``"fan-out"``,
    ``"add_batch"``, ``"consolidate"``), and the per-attempt history (any
    objects with a useful ``str()``, typically
    :class:`repro.engine.reliability.ShardAttempt` records), so one canonical
    error names the shard instead of a bare backend traceback surfacing
    mid-batch.
    """

    def __init__(
        self,
        shard_id: int,
        operation: str = "fan-out",
        attempts: tuple = (),
    ):
        self.shard_id = int(shard_id)
        self.operation = operation
        self.attempts = tuple(attempts)
        detail = "; ".join(str(attempt) for attempt in self.attempts)
        message = (
            f"shard {self.shard_id} failed during {operation} "
            f"after {max(len(self.attempts), 1)} attempt(s)"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
