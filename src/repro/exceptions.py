"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses are raised close to the
point of failure with actionable messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConstructionError(ReproError):
    """Raised when an index or data structure cannot be built from its input."""


class QueryError(ReproError):
    """Raised when a query is malformed (bad bounds, empty pattern, ...)."""


class AlphabetError(ReproError):
    """Raised when a symbol is outside the alphabet an index was built over."""


class DatasetError(ReproError):
    """Raised when a dataset generator receives inconsistent parameters."""


class NetworkError(ReproError):
    """Raised for invalid road-network operations (unknown edges, no path, ...)."""
