"""Plain (uncompressed) bit vector with constant-time rank and select.

This is the succinct-dictionary baseline used by the uncompressed FM-index
variants (``UFMI``) and as the ground-truth reference in tests.  Bits are
packed into 64-bit words; a cumulative popcount directory provides
:meth:`BitVector.rank1` in O(1) and :meth:`BitVector.select1` in
O(log n) via binary search over the directory.

The reported :meth:`BitVector.size_in_bits` follows the usual accounting for
Jacobson-style plain bitmaps: ``n`` bits of payload plus the rank directory
(one 64-bit counter per word here, which is intentionally pessimistic compared
to the two-level directory used by sdsl, but constant-factor accurate).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import QueryError

_WORD_BITS = 64


def _popcount_words(words: np.ndarray) -> np.ndarray:
    """Return the per-word popcount of a ``uint64`` array."""
    counts = np.zeros(words.shape, dtype=np.uint64)
    tmp = words.copy()
    for _ in range(8):
        counts += tmp & np.uint64(0x0101010101010101)
        tmp >>= np.uint64(1)
    # Sum the eight byte-counters packed in each word.
    counts = (counts * np.uint64(0x0101010101010101)) >> np.uint64(56)
    return counts


class BitVector:
    """An immutable bit vector supporting access, rank and select.

    Parameters
    ----------
    bits:
        Any iterable of truthy/falsy values; each element becomes one bit.

    Examples
    --------
    >>> bv = BitVector([1, 0, 1, 1, 0])
    >>> bv.rank1(3)
    2
    >>> bv.select1(2)
    2
    """

    def __init__(self, bits: Iterable[int]):
        arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
        arr = (arr != 0).astype(np.uint8)
        self._n = int(arr.size)
        n_words = (self._n + _WORD_BITS - 1) // _WORD_BITS
        padded = np.zeros(n_words * _WORD_BITS, dtype=np.uint8)
        padded[: self._n] = arr
        bit_matrix = padded.reshape(n_words, _WORD_BITS)
        weights = (np.uint64(1) << np.arange(_WORD_BITS, dtype=np.uint64))
        self._words = (bit_matrix.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)
        popcounts = _popcount_words(self._words)
        # _cum_rank[i] = number of ones in words[0:i]
        self._cum_rank = np.zeros(n_words + 1, dtype=np.int64)
        np.cumsum(popcounts, out=self._cum_rank[1:])
        self._n_ones = int(self._cum_rank[-1])

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def n_ones(self) -> int:
        """Total number of set bits."""
        return self._n_ones

    @property
    def n_zeros(self) -> int:
        """Total number of unset bits."""
        return self._n - self._n_ones

    def access(self, i: int) -> int:
        """Return the bit at position ``i`` (0-based)."""
        if not 0 <= i < self._n:
            raise QueryError(f"bit index {i} out of range [0, {self._n})")
        word, offset = divmod(i, _WORD_BITS)
        return int((self._words[word] >> np.uint64(offset)) & np.uint64(1))

    def __getitem__(self, i: int) -> int:
        return self.access(i)

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n):
            yield self.access(i)

    # ------------------------------------------------------------------ #
    # rank / select
    # ------------------------------------------------------------------ #
    def rank1(self, i: int) -> int:
        """Return the number of set bits in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise QueryError(f"rank position {i} out of range [0, {self._n}]")
        word, offset = divmod(i, _WORD_BITS)
        result = int(self._cum_rank[word])
        if offset:
            mask = (np.uint64(1) << np.uint64(offset)) - np.uint64(1)
            result += int(bin(int(self._words[word] & mask)).count("1"))
        return result

    def rank0(self, i: int) -> int:
        """Return the number of unset bits in positions ``[0, i)``."""
        return i - self.rank1(i)

    def rank(self, bit: int, i: int) -> int:
        """Return ``rank1(i)`` if ``bit`` is truthy, else ``rank0(i)``."""
        return self.rank1(i) if bit else self.rank0(i)

    def select1(self, k: int) -> int:
        """Return the position of the ``k``-th set bit (1-based ``k``)."""
        if not 1 <= k <= self._n_ones:
            raise QueryError(f"select1 argument {k} out of range [1, {self._n_ones}]")
        word = int(np.searchsorted(self._cum_rank, k, side="left")) - 1
        remaining = k - int(self._cum_rank[word])
        value = int(self._words[word])
        position = word * _WORD_BITS
        while True:
            if value & 1:
                remaining -= 1
                if remaining == 0:
                    return position
            value >>= 1
            position += 1

    def select0(self, k: int) -> int:
        """Return the position of the ``k``-th unset bit (1-based ``k``)."""
        if not 1 <= k <= self.n_zeros:
            raise QueryError(f"select0 argument {k} out of range [1, {self.n_zeros}]")
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank0(mid + 1) >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self) -> int:
        """Bits used by the payload plus the rank directory.

        The in-memory Python object keeps one 64-bit counter per word for
        simplicity, but the reported size follows the standard two-level
        rank directory (~25% overhead) that an engineered implementation —
        and the paper's sdsl baselines — would use, so that the
        bits-per-symbol figures are comparable.
        """
        payload = self._n
        directory = self._n // 4 + 128
        return payload + directory

    def to_list(self) -> list[int]:
        """Materialise the bit vector as a plain Python list."""
        return [self.access(i) for i in range(self._n)]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BitVector(n={self._n}, ones={self._n_ones})"


def bitvector_from_positions(n: int, ones: Sequence[int]) -> BitVector:
    """Build a :class:`BitVector` of length ``n`` with set bits at ``ones``."""
    bits = np.zeros(n, dtype=np.uint8)
    for position in ones:
        if not 0 <= position < n:
            raise QueryError(f"position {position} out of range [0, {n})")
        bits[position] = 1
    return BitVector(bits)
