"""Plain (uncompressed) bit vector with constant-time rank and select.

This is the succinct-dictionary baseline used by the uncompressed FM-index
variants (``UFMI``) and as the ground-truth reference in tests.  Bits are
packed into 64-bit words; a cumulative popcount directory provides
:meth:`BitVector.rank1` in O(1) and :meth:`BitVector.select1` in
O(log n) via binary search over the directory, seeded by a sampled select
directory so the search only touches a narrow word range.

Scalar queries avoid numpy scalar arithmetic entirely: the packed words are
mirrored as native Python ints and within-word popcounts go through a
precomputed 16-bit popcount table, which together make single rank calls an
order of magnitude cheaper than ``bin(int(x)).count("1")`` on ``np.uint64``
scalars.  Batched queries (:meth:`BitVector.rank1_many`,
:meth:`BitVector.access_many`) stay in numpy end to end.

The reported :meth:`BitVector.size_in_bits` follows the usual accounting for
Jacobson-style plain bitmaps: ``n`` bits of payload plus the rank directory
(one 64-bit counter per word here, which is intentionally pessimistic compared
to the two-level directory used by sdsl, but constant-factor accurate).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import QueryError

_WORD_BITS = 64

#: Ones between consecutive select samples (coarse directory, built lazily).
_SELECT_SAMPLE_RATE = 512


def _build_popcount16() -> np.ndarray:
    """Popcounts of every 16-bit value, computed with vectorized bit tricks."""
    x = np.arange(1 << 16, dtype=np.uint32)
    x = x - ((x >> 1) & 0x55555555)
    x = (x & 0x33333333) + ((x >> 2) & 0x33333333)
    x = (x + (x >> 4)) & 0x0F0F0F0F
    return ((x * 0x01010101) >> 24).astype(np.uint8)


#: Precomputed popcount of every 16-bit value (numpy view + plain-list view).
POPCOUNT16 = _build_popcount16()
_POPCOUNT16_LIST: list[int] = POPCOUNT16.tolist()


def popcount64(x: int) -> int:
    """Popcount of a native Python int below 2**64 via the 16-bit table."""
    t = _POPCOUNT16_LIST
    return (
        t[x & 0xFFFF]
        + t[(x >> 16) & 0xFFFF]
        + t[(x >> 32) & 0xFFFF]
        + t[(x >> 48) & 0xFFFF]
    )


def popcount_array(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array through the 16-bit table."""
    halves = np.ascontiguousarray(words.astype("<u8", copy=False)).view(np.uint16)
    return POPCOUNT16[halves].reshape(-1, 4).sum(axis=1, dtype=np.int64)


def _popcount_packed_words(packed: np.ndarray) -> np.ndarray:
    """Per-word popcount of a little-endian byte buffer (8 bytes per word)."""
    return POPCOUNT16[packed.view(np.uint16)].reshape(-1, 4).sum(axis=1, dtype=np.int64)


def scatter_segments(
    bits: np.ndarray, boundaries: np.ndarray, unit: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scatter the segments of ``bits`` into one unit-padded 0/1 buffer.

    Shared by the bulk bit-vector constructors: segment ``i`` is
    ``bits[boundaries[i] : boundaries[i + 1]]`` and lands at
    ``buffer[padded_starts[i] : padded_starts[i] + lengths[i]]``, with each
    segment padded with zeros to a multiple of ``unit`` (a machine word for
    plain bitmaps, an RRR block for compressed ones).  Returns
    ``(lengths, padded_starts, buffer)``.
    """
    lengths = np.diff(boundaries)
    k = int(lengths.size)
    units = (lengths + unit - 1) // unit
    padded_starts = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(units * unit, out=padded_starts[1:])
    buffer = np.zeros(int(padded_starts[-1]), dtype=np.uint8)
    segment_of = np.repeat(np.arange(k), lengths)
    scatter = (
        np.arange(int(boundaries[-1] - boundaries[0]))
        + boundaries[0]
        - boundaries[:-1][segment_of]
        + padded_starts[:-1][segment_of]
    )
    buffer[scatter] = np.asarray(bits[boundaries[0] : boundaries[-1]]) != 0
    return lengths, padded_starts, buffer


def _select_in_word(word: int, remaining: int, base_position: int) -> int:
    """Position of the ``remaining``-th set bit of ``word`` (1-based)."""
    position = base_position
    t = _POPCOUNT16_LIST
    for _ in range(4):
        chunk = word & 0xFFFF
        in_chunk = t[chunk]
        if in_chunk >= remaining:
            while True:
                if chunk & 1:
                    remaining -= 1
                    if remaining == 0:
                        return position
                chunk >>= 1
                position += 1
        remaining -= in_chunk
        word >>= 16
        position += 16
    raise QueryError("select walked past the end of a word")  # pragma: no cover


class BitVector:
    """An immutable bit vector supporting access, rank and select.

    Parameters
    ----------
    bits:
        Any iterable of truthy/falsy values; each element becomes one bit.

    Examples
    --------
    >>> bv = BitVector([1, 0, 1, 1, 0])
    >>> bv.rank1(3)
    2
    >>> bv.select1(2)
    2
    """

    def __init__(self, bits: Iterable[int]):
        arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
        mask = arr != 0
        self._n = int(mask.size)
        n_words = (self._n + _WORD_BITS - 1) // _WORD_BITS
        packed = np.packbits(mask, bitorder="little")
        if packed.size != n_words * 8:
            buffer = np.zeros(n_words * 8, dtype=np.uint8)
            buffer[: packed.size] = packed
            packed = buffer
        self._words = packed.view("<u8").astype(np.uint64, copy=False)
        popcounts = _popcount_packed_words(packed)
        # _cum_rank[i] = number of ones in words[0:i]
        self._cum_rank = np.zeros(n_words + 1, dtype=np.int64)
        np.cumsum(popcounts, out=self._cum_rank[1:])
        self._n_ones = int(self._cum_rank[-1])
        # Sampled select directories, built lazily on first select call.
        self._select1_samples: np.ndarray | None = None
        self._cum_rank0: np.ndarray | None = None
        self._select0_samples: np.ndarray | None = None

    def __getattr__(self, name: str):
        # Native-int mirrors of the packed words and the rank directory:
        # scalar rank/access touch these instead of numpy scalars, avoiding
        # per-call dtype boxing.  Materialised on first scalar query so that
        # bulk construction never pays for them.
        if name == "_words_py":
            value = self._words.tolist()
        elif name == "_cum_rank_py":
            value = self._cum_rank.tolist()
        else:
            raise AttributeError(name)
        self.__dict__[name] = value
        return value

    @classmethod
    def _from_packed(cls, n: int, words: np.ndarray, cum_rank: np.ndarray) -> "BitVector":
        """Internal: wrap pre-packed words and a pre-computed rank directory."""
        self = object.__new__(cls)
        self._n = n
        self._words = words
        self._cum_rank = cum_rank
        self._n_ones = int(cum_rank[-1])
        self._select1_samples = None
        self._cum_rank0 = None
        self._select0_samples = None
        return self

    @classmethod
    def build_many(cls, bits: np.ndarray, boundaries: np.ndarray) -> list["BitVector"]:
        """Build one :class:`BitVector` per segment of ``bits`` in bulk.

        ``boundaries`` holds ``k + 1`` segment starts (``bits[boundaries[i] :
        boundaries[i + 1]]`` is segment ``i``).  All segments are packed,
        popcounted and rank-indexed with a handful of whole-array numpy
        operations, so the per-vector cost is object construction only — this
        is what makes level-at-a-time wavelet construction cheap even for
        trees with thousands of small nodes.
        """
        boundaries = np.asarray(boundaries, dtype=np.int64)
        k = int(boundaries.size) - 1
        if k <= 0:
            return []
        lengths, padded_starts, buffer = scatter_segments(bits, boundaries, _WORD_BITS)
        packed = np.packbits(buffer, bitorder="little")
        words_all = packed.view("<u8").astype(np.uint64, copy=False)
        popcounts = _popcount_packed_words(packed)
        cum_all = np.zeros(popcounts.size + 1, dtype=np.int64)
        np.cumsum(popcounts, out=cum_all[1:])
        word_starts = padded_starts // _WORD_BITS
        out: list[BitVector] = []
        for segment in range(k):
            lo = int(word_starts[segment])
            hi = int(word_starts[segment + 1])
            cum = cum_all[lo : hi + 1] - cum_all[lo]
            out.append(cls._from_packed(int(lengths[segment]), words_all[lo:hi], cum))
        return out

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def n_ones(self) -> int:
        """Total number of set bits."""
        return self._n_ones

    @property
    def n_zeros(self) -> int:
        """Total number of unset bits."""
        return self._n - self._n_ones

    def access(self, i: int) -> int:
        """Return the bit at position ``i`` (0-based)."""
        if not 0 <= i < self._n:
            raise QueryError(f"bit index {i} out of range [0, {self._n})")
        return (self._words_py[i >> 6] >> (i & 63)) & 1

    def __getitem__(self, i: int) -> int:
        return self.access(i)

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_list())

    # ------------------------------------------------------------------ #
    # rank / select
    # ------------------------------------------------------------------ #
    def rank1(self, i: int) -> int:
        """Return the number of set bits in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise QueryError(f"rank position {i} out of range [0, {self._n}]")
        word = i >> 6
        offset = i & 63
        result = self._cum_rank_py[word]
        if offset:
            result += popcount64(self._words_py[word] & ((1 << offset) - 1))
        return result

    def rank0(self, i: int) -> int:
        """Return the number of unset bits in positions ``[0, i)``."""
        return i - self.rank1(i)

    def rank(self, bit: int, i: int) -> int:
        """Return ``rank1(i)`` if ``bit`` is truthy, else ``rank0(i)``."""
        return self.rank1(i) if bit else self.rank0(i)

    def rank1_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank1` over an array of positions."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) > self._n:
            raise QueryError(f"rank positions out of range [0, {self._n}]")
        if self._words.size == 0:
            return np.zeros(pos.size, dtype=np.int64)
        word = pos >> 6
        offset = (pos & 63).astype(np.uint64)
        # A position at a word boundary (offset 0) contributes nothing from
        # the partial word; clamp its index so pos == n stays in bounds.
        safe_word = np.minimum(word, self._words.size - 1)
        masked = self._words[safe_word] & ((np.uint64(1) << offset) - np.uint64(1))
        return self._cum_rank[word] + popcount_array(masked)

    def rank0_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank0` over an array of positions."""
        pos = np.asarray(positions, dtype=np.int64)
        return pos - self.rank1_many(pos)

    def access_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`access` over an array of positions."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) >= self._n:
            raise QueryError(f"bit indices out of range [0, {self._n})")
        return ((self._words[pos >> 6] >> (pos & 63).astype(np.uint64)) & np.uint64(1)).astype(
            np.int64
        )

    def _ensure_select1_samples(self) -> np.ndarray:
        if self._select1_samples is None:
            # samples[j] = index of the word containing the (j * rate + 1)-th one
            ks = np.arange(1, self._n_ones + 1, _SELECT_SAMPLE_RATE, dtype=np.int64)
            self._select1_samples = (
                np.searchsorted(self._cum_rank, ks, side="left").astype(np.int64) - 1
            )
        return self._select1_samples

    def select1(self, k: int) -> int:
        """Return the position of the ``k``-th set bit (1-based ``k``)."""
        if not 1 <= k <= self._n_ones:
            raise QueryError(f"select1 argument {k} out of range [1, {self._n_ones}]")
        samples = self._ensure_select1_samples()
        bucket = (k - 1) // _SELECT_SAMPLE_RATE
        lo = int(samples[bucket])
        hi = int(samples[bucket + 1]) if bucket + 1 < samples.size else self._words.size - 1
        # First word whose cumulative count reaches k, inside [lo, hi].
        word = lo + int(np.searchsorted(self._cum_rank[lo + 1 : hi + 2], k, side="left"))
        remaining = k - self._cum_rank_py[word]
        return _select_in_word(self._words_py[word], remaining, word * _WORD_BITS)

    def _ensure_rank0_directory(self) -> np.ndarray:
        if self._cum_rank0 is None:
            word_starts = np.arange(self._cum_rank.size, dtype=np.int64) * _WORD_BITS
            self._cum_rank0 = word_starts - self._cum_rank
        return self._cum_rank0

    def select0(self, k: int) -> int:
        """Return the position of the ``k``-th unset bit (1-based ``k``)."""
        if not 1 <= k <= self.n_zeros:
            raise QueryError(f"select0 argument {k} out of range [1, {self.n_zeros}]")
        cum_rank0 = self._ensure_rank0_directory()
        if self._select0_samples is None:
            ks = np.arange(1, self.n_zeros + 1, _SELECT_SAMPLE_RATE, dtype=np.int64)
            self._select0_samples = (
                np.searchsorted(cum_rank0, ks, side="left").astype(np.int64) - 1
            )
        samples = self._select0_samples
        bucket = (k - 1) // _SELECT_SAMPLE_RATE
        lo = int(samples[bucket])
        hi = int(samples[bucket + 1]) if bucket + 1 < samples.size else self._words.size - 1
        word = lo + int(np.searchsorted(cum_rank0[lo + 1 : hi + 2], k, side="left"))
        remaining = k - int(cum_rank0[word])
        complement = ~self._words_py[word] & 0xFFFFFFFFFFFFFFFF
        return _select_in_word(complement, remaining, word * _WORD_BITS)

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self) -> int:
        """Bits used by the payload plus the rank directory.

        The in-memory Python object keeps one 64-bit counter per word for
        simplicity, but the reported size follows the standard two-level
        rank directory (~25% overhead) that an engineered implementation —
        and the paper's sdsl baselines — would use, so that the
        bits-per-symbol figures are comparable.
        """
        payload = self._n
        directory = self._n // 4 + 128
        return payload + directory

    def to_numpy(self) -> np.ndarray:
        """Materialise the bit vector as a ``uint8`` numpy array."""
        if self._n == 0:
            return np.zeros(0, dtype=np.uint8)
        unpacked = np.unpackbits(
            self._words.astype("<u8", copy=False).view(np.uint8), bitorder="little"
        )
        return unpacked[: self._n]

    def to_list(self) -> list[int]:
        """Materialise the bit vector as a plain Python list."""
        return self.to_numpy().tolist()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BitVector(n={self._n}, ones={self._n_ones})"


def bitvector_from_positions(n: int, ones: Sequence[int]) -> BitVector:
    """Build a :class:`BitVector` of length ``n`` with set bits at ``ones``."""
    bits = np.zeros(n, dtype=np.uint8)
    for position in ones:
        if not 0 <= position < n:
            raise QueryError(f"position {position} out of range [0, {n})")
        bits[position] = 1
    return BitVector(bits)
