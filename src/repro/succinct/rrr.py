"""RRR compressed bit vector (Raman–Raman–Rao), practical variant.

This follows the practical construction of Navarro & Providel ("Fast, small,
simple rank/select on bitmaps", SEA'12) used by the paper: the bit vector is
split into blocks of ``b`` bits (``b`` in {15, 31, 63}); each block is encoded
by its *class* (popcount, ``ceil(log2(b+1))`` bits) and its *offset* (the index
of the block among all blocks of that class, ``ceil(log2(C(b, c)))`` bits).
Rank samples are kept every ``sample_rate`` blocks.

The in-memory Python representation keeps classes, offsets and samples in
numpy arrays for speed; encoding is fully vectorized over all blocks at once
(the combinatorial-number-system sum becomes one fancy-indexed matrix
reduction), and decoded blocks are memoised so hot query regions pay the O(b)
enumerative decode only once.  :meth:`RRRBitVector.size_in_bits` reports the
size of the *succinct encoding* (class bits + offset bits + samples), which is
what the paper plots; the Python object overhead is irrelevant to the
reproduction and is not counted.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import ConstructionError, QueryError
from .bitvector import scatter_segments

_MAX_BLOCK = 63


@lru_cache(maxsize=None)
def _binomial_table(b: int) -> tuple[tuple[int, ...], ...]:
    """Return Pascal's triangle rows 0..b as nested tuples."""
    rows: list[tuple[int, ...]] = []
    for n in range(b + 1):
        row = [1] * (n + 1)
        for k in range(1, n):
            row[k] = rows[n - 1][k - 1] + rows[n - 1][k]
        rows.append(tuple(row))
    return tuple(rows)


@lru_cache(maxsize=None)
def _binomial_matrix(b: int) -> np.ndarray:
    """Dense ``(b+1) x (b+1)`` table with ``C(n, k)`` (0 where ``k > n``).

    ``C(63, 31)`` is below ``2**63``, so int64 holds every entry exactly.
    """
    table = _binomial_table(b)
    dense = np.zeros((b + 1, b + 1), dtype=np.int64)
    for n in range(b + 1):
        dense[n, : n + 1] = table[n]
    return dense


def encode_block(bits: tuple[int, ...] | list[int], b: int) -> tuple[int, int]:
    """Encode a block of exactly ``b`` bits into ``(class, offset)``.

    The offset is the index of the block within the enumeration of all
    length-``b`` blocks having the same popcount, using the combinatorial
    number system (bit 0 is the most significant position).
    """
    if len(bits) != b:
        raise ConstructionError(f"block must have exactly {b} bits, got {len(bits)}")
    table = _binomial_table(b)
    ones = sum(1 for bit in bits if bit)
    offset = 0
    remaining_ones = ones
    for position, bit in enumerate(bits):
        remaining_positions = b - position - 1
        if bit:
            if remaining_ones - 1 <= remaining_positions:
                # skip all blocks that have a 0 at this position
                offset += table[remaining_positions][remaining_ones] if remaining_ones <= remaining_positions else 0
            remaining_ones -= 1
        if remaining_ones == 0:
            break
    return ones, offset


def encode_blocks(blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`encode_block` over a ``(n_blocks, b)`` bit matrix.

    Returns ``(classes, offsets)`` where the offset of each row is the
    combinatorial-number-system rank of the row among all rows with the same
    popcount, identical to the scalar encoder.
    """
    n_blocks, b = blocks.shape
    if n_blocks == 0:
        return np.zeros(0, dtype=np.uint8), np.zeros(0, dtype=np.uint64)
    bits = blocks.astype(np.int64, copy=False)
    classes = bits.sum(axis=1)
    # remaining[p] = ones in bits[p:], i.e. the value of ``remaining_ones``
    # when the scalar encoder inspects position p.
    suffix_ones = classes[:, None] - np.cumsum(bits, axis=1) + bits
    remaining_positions = (b - 1 - np.arange(b, dtype=np.int64))[None, :]
    # The dense table already holds 0 wherever k > n, which is exactly the
    # scalar encoder's "no contribution" branch; masking by ``bits`` covers
    # the zero-bit positions.
    binom = _binomial_matrix(b)
    terms = binom[remaining_positions, suffix_ones]
    offsets = (bits * terms).sum(axis=1)
    return classes.astype(np.uint8), offsets.astype(np.uint64)


def decode_block(cls: int, offset: int, b: int) -> list[int]:
    """Decode ``(class, offset)`` back into a list of ``b`` bits."""
    table = _binomial_table(b)
    bits = [0] * b
    remaining_ones = cls
    for position in range(b):
        if remaining_ones == 0:
            break
        remaining_positions = b - position - 1
        zero_branch = table[remaining_positions][remaining_ones] if remaining_ones <= remaining_positions else 0
        if offset >= zero_branch:
            bits[position] = 1
            offset -= zero_branch
            remaining_ones -= 1
    return bits


@lru_cache(maxsize=1 << 16)
def _decoded_block(cls: int, offset: int, b: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Memoised decode: ``(bits, prefix_popcounts)`` for one encoded block.

    ``prefix_popcounts[i]`` is the number of ones in ``bits[:i]`` (length
    ``b + 1``), so an in-block rank is a single tuple lookup.
    """
    bits = decode_block(cls, offset, b)
    prefix = [0] * (b + 1)
    running = 0
    for i, bit in enumerate(bits):
        running += bit
        prefix[i + 1] = running
    return tuple(bits), tuple(prefix)


def offset_bits(b: int, cls: int) -> int:
    """Number of bits needed to store an offset of class ``cls`` in blocks of ``b``."""
    table = _binomial_table(b)
    count = table[b][cls]
    return max(int(count - 1).bit_length(), 0)


class RRRBitVector:
    """Compressed bit vector with rank/select, parameterised by block size ``b``.

    Parameters
    ----------
    bits:
        Iterable of truthy/falsy values.
    block_size:
        The RRR block size ``b`` (the paper uses 15, 31 or 63; 63 by default).
    sample_rate:
        Number of blocks between absolute rank samples.
    """

    def __init__(self, bits: Iterable[int], block_size: int = 63, sample_rate: int = 32):
        if not 1 <= block_size <= _MAX_BLOCK:
            raise ConstructionError(f"block_size must be in [1, {_MAX_BLOCK}], got {block_size}")
        if sample_rate < 1:
            raise ConstructionError(f"sample_rate must be positive, got {sample_rate}")
        arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
        arr = (arr != 0).astype(np.uint8)
        self._n = int(arr.size)
        self._b = block_size
        self._sample_rate = sample_rate

        n_blocks = (self._n + block_size - 1) // block_size if self._n else 0
        padded = np.zeros(n_blocks * block_size, dtype=np.uint8)
        padded[: self._n] = arr
        blocks = padded.reshape(n_blocks, block_size)

        self._classes, self._offsets = encode_blocks(blocks)
        # Dense per-block cumulative class counts: the in-memory rank
        # directory (one searchsorted away from any block).  The *accounted*
        # structure remains the coarse samples below.
        self._class_cum = np.zeros(n_blocks + 1, dtype=np.int64)
        np.cumsum(self._classes.astype(np.int64), out=self._class_cum[1:])
        self._n_ones = int(self._class_cum[-1])
        # rank samples: ones in blocks [0, k*sample_rate) — the sampled rank
        # directory whose size is charged by :meth:`size_in_bits` and which
        # seeds the select binary searches.
        self._rank_samples = np.zeros(n_blocks // sample_rate + 1, dtype=np.int64)
        if n_blocks:
            boundaries = np.minimum(
                np.arange(self._rank_samples.size, dtype=np.int64) * sample_rate, n_blocks
            )
            self._rank_samples = self._class_cum[boundaries]

    @classmethod
    def _from_parts(
        cls,
        n: int,
        block_size: int,
        sample_rate: int,
        classes: np.ndarray,
        offsets: np.ndarray,
        class_cum: np.ndarray,
    ) -> "RRRBitVector":
        """Internal: wrap pre-encoded blocks and a pre-computed directory."""
        self = object.__new__(cls)
        self._n = n
        self._b = block_size
        self._sample_rate = sample_rate
        self._classes = classes
        self._offsets = offsets
        self._class_cum = class_cum
        self._n_ones = int(class_cum[-1])
        n_blocks = int(classes.size)
        boundaries = np.minimum(
            np.arange(n_blocks // sample_rate + 1, dtype=np.int64) * sample_rate, n_blocks
        )
        self._rank_samples = class_cum[boundaries]
        return self

    @classmethod
    def build_many(
        cls,
        bits: np.ndarray,
        boundaries: np.ndarray,
        block_size: int = 63,
        sample_rate: int = 32,
    ) -> list["RRRBitVector"]:
        """Build one :class:`RRRBitVector` per segment of ``bits`` in bulk.

        Every segment's blocks are gathered into a single ``(blocks, b)``
        matrix and encoded with one vectorized :func:`encode_blocks` call, so
        a wavelet level with thousands of small nodes pays the enumerative
        encoding exactly once.
        """
        if not 1 <= block_size <= _MAX_BLOCK:
            raise ConstructionError(f"block_size must be in [1, {_MAX_BLOCK}], got {block_size}")
        if sample_rate < 1:
            raise ConstructionError(f"sample_rate must be positive, got {sample_rate}")
        boundaries = np.asarray(boundaries, dtype=np.int64)
        k = int(boundaries.size) - 1
        if k <= 0:
            return []
        lengths, padded_starts, buffer = scatter_segments(bits, boundaries, block_size)
        classes_all, offsets_all = encode_blocks(buffer.reshape(-1, block_size))
        cum_all = np.zeros(classes_all.size + 1, dtype=np.int64)
        np.cumsum(classes_all.astype(np.int64), out=cum_all[1:])
        block_starts = padded_starts // block_size
        out: list[RRRBitVector] = []
        for segment in range(k):
            lo = int(block_starts[segment])
            hi = int(block_starts[segment + 1])
            out.append(
                cls._from_parts(
                    int(lengths[segment]),
                    block_size,
                    sample_rate,
                    classes_all[lo:hi],
                    offsets_all[lo:hi],
                    cum_all[lo : hi + 1] - cum_all[lo],
                )
            )
        return out

    def __getattr__(self, name: str):
        # Native-int mirrors of the encoded blocks and the rank directory,
        # materialised on first scalar query so bulk construction never pays
        # for them.
        if name == "_class_cum_py":
            value = self._class_cum.tolist()
        elif name == "_classes_py":
            value = self._classes.tolist()
        elif name == "_offsets_py":
            value = self._offsets.tolist()
        elif name == "_zeros_cum":
            # Cumulative zero counts per block boundary (padding included for
            # the final partial block; harmless, see select0).
            n_blocks = int(self._classes.size)
            value = np.arange(n_blocks + 1, dtype=np.int64) * self._b - self._class_cum
        elif name == "_zero_samples":
            sample_starts = np.minimum(
                np.arange(self._rank_samples.size, dtype=np.int64)
                * self._sample_rate
                * self._b,
                int(self._classes.size) * self._b,
            )
            value = sample_starts - self._rank_samples
        else:
            raise AttributeError(name)
        self.__dict__[name] = value
        return value

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def block_size(self) -> int:
        """The RRR block size ``b``."""
        return self._b

    @property
    def n_ones(self) -> int:
        """Total number of set bits."""
        return self._n_ones

    @property
    def n_zeros(self) -> int:
        """Total number of unset bits."""
        return self._n - self._n_ones

    def _decode(self, block_index: int) -> list[int]:
        return list(self._decoded(block_index)[0])

    def _decoded(self, block_index: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return _decoded_block(
            self._classes_py[block_index], self._offsets_py[block_index], self._b
        )

    def access(self, i: int) -> int:
        """Return the bit at position ``i``."""
        if not 0 <= i < self._n:
            raise QueryError(f"bit index {i} out of range [0, {self._n})")
        block_index, within = divmod(i, self._b)
        return self._decoded(block_index)[0][within]

    def __getitem__(self, i: int) -> int:
        return self.access(i)

    # ------------------------------------------------------------------ #
    # rank / select
    # ------------------------------------------------------------------ #
    def rank1(self, i: int) -> int:
        """Return the number of set bits in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise QueryError(f"rank position {i} out of range [0, {self._n}]")
        if i == 0:
            return 0
        block_index, within = divmod(i, self._b)
        result = self._class_cum_py[block_index]
        if within:
            result += self._decoded(block_index)[1][within]
        return result

    def rank0(self, i: int) -> int:
        """Return the number of unset bits in positions ``[0, i)``."""
        return i - self.rank1(i)

    def rank(self, bit: int, i: int) -> int:
        """Return ``rank1(i)`` if ``bit`` is truthy, else ``rank0(i)``."""
        return self.rank1(i) if bit else self.rank0(i)

    def rank1_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank1` over an array of positions.

        The block part of every rank is answered with one fancy-indexed
        lookup into the cumulative class directory; only the in-block
        residuals fall back to (memoised) block decodes.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) > self._n:
            raise QueryError(f"rank positions out of range [0, {self._n}]")
        block_index = pos // self._b
        within = pos - block_index * self._b
        result = self._class_cum[block_index].copy()
        residual = np.flatnonzero(within)
        if residual.size:
            blocks_py = block_index.tolist()
            within_py = within.tolist()
            decoded = self._decoded
            extra = [
                decoded(blocks_py[idx])[1][within_py[idx]] for idx in residual.tolist()
            ]
            result[residual] += np.asarray(extra, dtype=np.int64)
        return result

    def rank0_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank0` over an array of positions."""
        pos = np.asarray(positions, dtype=np.int64)
        return pos - self.rank1_many(pos)

    def access_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`access` over an array of positions."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) >= self._n:
            raise QueryError(f"bit indices out of range [0, {self._n})")
        decoded = self._decoded
        b = self._b
        return np.asarray(
            [decoded(p // b)[0][p % b] for p in pos.tolist()], dtype=np.int64
        )

    def _select_block(self, k: int, cum: np.ndarray, sample_of_k: int) -> int:
        """First block whose cumulative count (per ``cum``) reaches ``k``.

        The binary search is seeded from the sampled rank directory: only the
        ``sample_rate`` blocks between two consecutive samples are searched.
        """
        lo = sample_of_k * self._sample_rate
        hi = min(lo + self._sample_rate, int(self._classes.size))
        return lo + int(np.searchsorted(cum[lo + 1 : hi + 1], k, side="left"))

    def select1(self, k: int) -> int:
        """Return the position of the ``k``-th set bit (1-based).

        Seeds a block-level binary search from the sampled rank directory and
        finishes with a single block decode, instead of bisecting the whole
        vector with per-step rank calls.
        """
        if not 1 <= k <= self._n_ones:
            raise QueryError(f"select1 argument {k} out of range [1, {self._n_ones}]")
        sample = int(np.searchsorted(self._rank_samples, k, side="left")) - 1
        block = self._select_block(k, self._class_cum, sample)
        remaining = k - self._class_cum_py[block]
        prefix = self._decoded(block)[1]
        within = int(np.searchsorted(np.asarray(prefix), remaining, side="left")) - 1
        return block * self._b + within

    def select0(self, k: int) -> int:
        """Return the position of the ``k``-th unset bit (1-based).

        Mirrors :meth:`select1` on the complemented counts (zeros up to block
        ``i`` are ``i * b - class_cum[i]``), again seeded from the sampled
        rank directory.
        """
        if not 1 <= k <= self.n_zeros:
            raise QueryError(f"select0 argument {k} out of range [1, {self.n_zeros}]")
        zeros_cum = self._zeros_cum
        sample = int(np.searchsorted(self._zero_samples, k, side="left")) - 1
        block = self._select_block(k, zeros_cum, sample)
        remaining = k - int(zeros_cum[block])
        bits, prefix = self._decoded(block)
        # zeros in bits[:i] = i - prefix[i]; find first i with that count == remaining
        zero_prefix = np.arange(self._b + 1, dtype=np.int64) - np.asarray(prefix)
        within = int(np.searchsorted(zero_prefix, remaining, side="left")) - 1
        return block * self._b + within

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self) -> int:
        """Bits of the succinct encoding (classes + offsets + rank samples)."""
        class_bits_each = max(int(self._b).bit_length(), 1)
        class_bits = int(self._classes.size) * class_bits_each
        off_bits = sum(offset_bits(self._b, int(cls)) for cls in self._classes)
        sample_bits = int(self._rank_samples.size) * 64
        return class_bits + off_bits + sample_bits

    def to_numpy(self) -> np.ndarray:
        """Materialise the bit vector as a ``uint8`` numpy array.

        Distinct ``(class, offset)`` pairs are decoded once and broadcast to
        every block sharing them, so repetitive bitmaps expand in O(distinct
        blocks) decodes instead of O(blocks).
        """
        n_blocks = int(self._classes.size)
        if n_blocks == 0:
            return np.zeros(0, dtype=np.uint8)
        pairs = np.stack(
            [self._classes.astype(np.uint64), self._offsets], axis=1
        )
        unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
        decoded = np.zeros((unique.shape[0], self._b), dtype=np.uint8)
        for row, (cls, offset) in enumerate(unique.tolist()):
            decoded[row] = _decoded_block(int(cls), int(offset), self._b)[0]
        return decoded[inverse.ravel()].reshape(-1)[: self._n]

    def to_list(self) -> list[int]:
        """Materialise the bit vector as a plain Python list."""
        return self.to_numpy().tolist()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RRRBitVector(n={self._n}, ones={self._n_ones}, b={self._b})"
