"""RRR compressed bit vector (Raman–Raman–Rao), practical variant.

This follows the practical construction of Navarro & Providel ("Fast, small,
simple rank/select on bitmaps", SEA'12) used by the paper: the bit vector is
split into blocks of ``b`` bits (``b`` in {15, 31, 63}); each block is encoded
by its *class* (popcount, ``ceil(log2(b+1))`` bits) and its *offset* (the index
of the block among all blocks of that class, ``ceil(log2(C(b, c)))`` bits).
Rank samples are kept every ``sample_rate`` blocks.

The in-memory Python representation keeps classes, offsets and samples in
numpy arrays for speed.  :meth:`RRRBitVector.size_in_bits` reports the size of
the *succinct encoding* (class bits + offset bits + samples), which is what
the paper plots; the Python object overhead is irrelevant to the reproduction
and is not counted.  Block decoding is performed with genuine enumerative
(combinatorial number system) decoding, so rank within a block costs O(b) as
in the practical RRR of the paper.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

import numpy as np

from ..exceptions import ConstructionError, QueryError

_MAX_BLOCK = 63


@lru_cache(maxsize=None)
def _binomial_table(b: int) -> tuple[tuple[int, ...], ...]:
    """Return Pascal's triangle rows 0..b as nested tuples."""
    rows: list[tuple[int, ...]] = []
    for n in range(b + 1):
        row = [1] * (n + 1)
        for k in range(1, n):
            row[k] = rows[n - 1][k - 1] + rows[n - 1][k]
        rows.append(tuple(row))
    return tuple(rows)


def encode_block(bits: tuple[int, ...] | list[int], b: int) -> tuple[int, int]:
    """Encode a block of exactly ``b`` bits into ``(class, offset)``.

    The offset is the index of the block within the enumeration of all
    length-``b`` blocks having the same popcount, using the combinatorial
    number system (bit 0 is the most significant position).
    """
    if len(bits) != b:
        raise ConstructionError(f"block must have exactly {b} bits, got {len(bits)}")
    table = _binomial_table(b)
    ones = sum(1 for bit in bits if bit)
    offset = 0
    remaining_ones = ones
    for position, bit in enumerate(bits):
        remaining_positions = b - position - 1
        if bit:
            if remaining_ones - 1 <= remaining_positions:
                # skip all blocks that have a 0 at this position
                offset += table[remaining_positions][remaining_ones] if remaining_ones <= remaining_positions else 0
            remaining_ones -= 1
        if remaining_ones == 0:
            break
    return ones, offset


def decode_block(cls: int, offset: int, b: int) -> list[int]:
    """Decode ``(class, offset)`` back into a list of ``b`` bits."""
    table = _binomial_table(b)
    bits = [0] * b
    remaining_ones = cls
    for position in range(b):
        if remaining_ones == 0:
            break
        remaining_positions = b - position - 1
        zero_branch = table[remaining_positions][remaining_ones] if remaining_ones <= remaining_positions else 0
        if offset >= zero_branch:
            bits[position] = 1
            offset -= zero_branch
            remaining_ones -= 1
    return bits


def offset_bits(b: int, cls: int) -> int:
    """Number of bits needed to store an offset of class ``cls`` in blocks of ``b``."""
    table = _binomial_table(b)
    count = table[b][cls]
    return max(int(count - 1).bit_length(), 0)


class RRRBitVector:
    """Compressed bit vector with rank/select, parameterised by block size ``b``.

    Parameters
    ----------
    bits:
        Iterable of truthy/falsy values.
    block_size:
        The RRR block size ``b`` (the paper uses 15, 31 or 63; 63 by default).
    sample_rate:
        Number of blocks between absolute rank samples.
    """

    def __init__(self, bits: Iterable[int], block_size: int = 63, sample_rate: int = 32):
        if not 1 <= block_size <= _MAX_BLOCK:
            raise ConstructionError(f"block_size must be in [1, {_MAX_BLOCK}], got {block_size}")
        if sample_rate < 1:
            raise ConstructionError(f"sample_rate must be positive, got {sample_rate}")
        arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
        arr = (arr != 0).astype(np.uint8)
        self._n = int(arr.size)
        self._b = block_size
        self._sample_rate = sample_rate

        n_blocks = (self._n + block_size - 1) // block_size if self._n else 0
        padded = np.zeros(n_blocks * block_size, dtype=np.uint8)
        padded[: self._n] = arr
        blocks = padded.reshape(n_blocks, block_size) if n_blocks else padded.reshape(0, block_size)

        classes = np.zeros(n_blocks, dtype=np.uint8)
        offsets = np.zeros(n_blocks, dtype=np.uint64)
        for index in range(n_blocks):
            cls, off = encode_block(tuple(int(x) for x in blocks[index]), block_size)
            classes[index] = cls
            offsets[index] = off
        self._classes = classes
        self._offsets = offsets
        # rank samples: ones in blocks [0, k*sample_rate)
        self._rank_samples = np.zeros(n_blocks // sample_rate + 1, dtype=np.int64)
        if n_blocks:
            cum = np.concatenate(([0], np.cumsum(classes.astype(np.int64))))
            for s in range(self._rank_samples.size):
                block_index = min(s * sample_rate, n_blocks)
                self._rank_samples[s] = cum[block_index]
            self._n_ones = int(cum[-1])
        else:
            self._n_ones = 0

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def block_size(self) -> int:
        """The RRR block size ``b``."""
        return self._b

    @property
    def n_ones(self) -> int:
        """Total number of set bits."""
        return self._n_ones

    @property
    def n_zeros(self) -> int:
        """Total number of unset bits."""
        return self._n - self._n_ones

    def _decode(self, block_index: int) -> list[int]:
        return decode_block(int(self._classes[block_index]), int(self._offsets[block_index]), self._b)

    def access(self, i: int) -> int:
        """Return the bit at position ``i``."""
        if not 0 <= i < self._n:
            raise QueryError(f"bit index {i} out of range [0, {self._n})")
        block_index, within = divmod(i, self._b)
        return self._decode(block_index)[within]

    def __getitem__(self, i: int) -> int:
        return self.access(i)

    # ------------------------------------------------------------------ #
    # rank / select
    # ------------------------------------------------------------------ #
    def rank1(self, i: int) -> int:
        """Return the number of set bits in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise QueryError(f"rank position {i} out of range [0, {self._n}]")
        if i == 0:
            return 0
        block_index, within = divmod(i, self._b)
        sample_index = block_index // self._sample_rate
        result = int(self._rank_samples[sample_index])
        first_block = sample_index * self._sample_rate
        if block_index > first_block:
            result += int(self._classes[first_block:block_index].sum())
        if within:
            block_bits = self._decode(block_index)
            result += sum(block_bits[:within])
        return result

    def rank0(self, i: int) -> int:
        """Return the number of unset bits in positions ``[0, i)``."""
        return i - self.rank1(i)

    def rank(self, bit: int, i: int) -> int:
        """Return ``rank1(i)`` if ``bit`` is truthy, else ``rank0(i)``."""
        return self.rank1(i) if bit else self.rank0(i)

    def select1(self, k: int) -> int:
        """Return the position of the ``k``-th set bit (1-based)."""
        if not 1 <= k <= self._n_ones:
            raise QueryError(f"select1 argument {k} out of range [1, {self._n_ones}]")
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank1(mid + 1) >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def select0(self, k: int) -> int:
        """Return the position of the ``k``-th unset bit (1-based)."""
        if not 1 <= k <= self.n_zeros:
            raise QueryError(f"select0 argument {k} out of range [1, {self.n_zeros}]")
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank0(mid + 1) >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self) -> int:
        """Bits of the succinct encoding (classes + offsets + rank samples)."""
        class_bits_each = max(int(self._b).bit_length(), 1)
        class_bits = int(self._classes.size) * class_bits_each
        off_bits = sum(offset_bits(self._b, int(cls)) for cls in self._classes)
        sample_bits = int(self._rank_samples.size) * 64
        return class_bits + off_bits + sample_bits

    def to_list(self) -> list[int]:
        """Materialise the bit vector as a plain Python list."""
        out: list[int] = []
        for block_index in range(self._classes.size):
            out.extend(self._decode(block_index))
        return out[: self._n]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RRRBitVector(n={self._n}, ones={self._n_ones}, b={self._b})"
