"""Elias–Fano encoding of sparse bit vectors.

The SA-sampling extension of CiNCT and several size-accounting ablations need
a *sparse* bitmap: a length-``n`` bit vector with ``m`` ones where ``m << n``.
A plain bitmap costs ``n`` bits and practical RRR still pays the per-block
class overhead, whereas the Elias–Fano representation stores the sorted
positions of the ones in

    ``m * (2 + ceil(lg(n / m)))`` bits (plus lower-order terms),

which is within a constant of the information-theoretic minimum
``lg C(n, m)``.  It supports ``select1`` in O(1)-ish time (one unary scan over
a constant number of words) and ``rank1`` / ``access`` by binary search, which
is the classic trade-off of the structure.

The interface mirrors :class:`~repro.succinct.bitvector.BitVector` so an
Elias–Fano vector can back any component that only needs rank/select/access
over a sparse set of marked positions (e.g. the marked-row bitmap of the
sampled suffix array).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import ConstructionError, QueryError
from .bitvector import BitVector
from .intvector import bits_needed


class EliasFanoBitVector:
    """A sparse bit vector stored as Elias–Fano encoded positions of its ones.

    Parameters
    ----------
    length:
        Total length ``n`` of the (conceptual) bit vector.
    ones:
        Strictly increasing positions of the one bits, each in ``[0, n)``.

    Examples
    --------
    >>> ef = EliasFanoBitVector(100, [3, 17, 64, 90])
    >>> ef.rank1(18)
    2
    >>> ef.select1(2)
    64
    >>> ef.access(17)
    1
    """

    def __init__(self, length: int, ones: Sequence[int] | Iterable[int]):
        positions = np.asarray(list(ones), dtype=np.int64)
        if length < 0:
            raise ConstructionError("length must be non-negative")
        if positions.size:
            if int(positions.min()) < 0 or int(positions.max()) >= length:
                raise ConstructionError("one positions must lie in [0, length)")
            if np.any(np.diff(positions) <= 0):
                raise ConstructionError("one positions must be strictly increasing")
        self._n = int(length)
        self._m = int(positions.size)
        self._positions = positions

        # Width of the explicitly stored low halves.
        if self._m == 0:
            self._low_width = 0
        else:
            self._low_width = max(int(np.floor(np.log2(max(self._n, 1) / self._m))), 0)

        if self._low_width:
            self._low = positions & ((1 << self._low_width) - 1)
        else:
            self._low = np.zeros(self._m, dtype=np.int64)
        highs = positions >> self._low_width if self._m else positions

        # The high halves are stored in unary: bucket h contributes
        # (count of highs equal to h) one-bits followed by a zero.
        n_buckets = (self._n >> self._low_width) + 1 if self._m else 1
        unary_bits: list[int] = []
        counts = np.bincount(highs, minlength=n_buckets) if self._m else np.zeros(n_buckets, dtype=np.int64)
        for count in counts:
            unary_bits.extend([1] * int(count))
            unary_bits.append(0)
        self._high = BitVector(unary_bits)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def n_ones(self) -> int:
        """Number of one bits ``m``."""
        return self._m

    @property
    def n_zeros(self) -> int:
        """Number of zero bits ``n - m``."""
        return self._n - self._m

    @property
    def low_width(self) -> int:
        """Number of low bits stored explicitly per one-position."""
        return self._low_width

    def access(self, i: int) -> int:
        """Return the bit at position ``i``."""
        self._check_position(i)
        index = int(np.searchsorted(self._positions, i))
        return int(index < self._m and int(self._positions[index]) == i)

    def __getitem__(self, i: int) -> int:
        return self.access(i)

    def __iter__(self) -> Iterator[int]:
        ones = set(int(p) for p in self._positions)
        for i in range(self._n):
            yield int(i in ones)

    # ------------------------------------------------------------------ #
    # rank / select
    # ------------------------------------------------------------------ #
    def rank1(self, i: int) -> int:
        """Number of ones in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise QueryError(f"rank position {i} out of range [0, {self._n}]")
        return int(np.searchsorted(self._positions, i, side="left"))

    def rank0(self, i: int) -> int:
        """Number of zeros in positions ``[0, i)``."""
        return i - self.rank1(i)

    def rank(self, bit: int, i: int) -> int:
        """Generic rank: count of ``bit`` in ``[0, i)``."""
        return self.rank1(i) if bit else self.rank0(i)

    def select1(self, k: int) -> int:
        """Position of the ``k``-th one (1-based ``k``, matching :class:`BitVector`)."""
        if not 1 <= k <= self._m:
            raise QueryError(f"select1 argument {k} out of range [1, {self._m}]")
        return int(self._positions[k - 1])

    def select0(self, k: int) -> int:
        """Position of the ``k``-th zero (1-based ``k``, matching :class:`BitVector`)."""
        if not 1 <= k <= self.n_zeros:
            raise QueryError(f"select0 argument {k} out of range [1, {self.n_zeros}]")
        # The k-th zero is at position (k - 1) + (number of ones before it);
        # the count of preceding ones is found by a small binary search.
        target = k - 1
        low, high = 0, self._m
        while low < high:
            mid = (low + high) // 2
            # zeros strictly before position positions[mid] (exclusive)
            zeros_before = int(self._positions[mid]) - mid
            if zeros_before <= target:
                low = mid + 1
            else:
                high = mid
        return target + low

    def to_positions(self) -> np.ndarray:
        """Return the positions of the one bits as an array (copy)."""
        return self._positions.copy()

    def to_list(self) -> list[int]:
        """Materialise the full bit vector as a Python list (testing helper)."""
        out = [0] * self._n
        for position in self._positions:
            out[int(position)] = 1
        return out

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self) -> int:
        """Storage cost: low halves + unary high halves + constant metadata."""
        low_bits = self._m * self._low_width
        high_bits = len(self._high)
        metadata_bits = 3 * 64  # n, m, low_width
        return low_bits + high_bits + metadata_bits

    def compression_ratio_vs_plain(self) -> float:
        """How much smaller this encoding is than a plain ``n``-bit bitmap."""
        plain = max(self._n, 1)
        return plain / max(self.size_in_bits(), 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"EliasFanoBitVector(n={self._n}, ones={self._m}, low_width={self._low_width})"

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _check_position(self, i: int) -> None:
        if not 0 <= i < self._n:
            raise QueryError(f"position {i} out of range [0, {self._n})")


def elias_fano_from_bits(bits: Sequence[int]) -> EliasFanoBitVector:
    """Build an :class:`EliasFanoBitVector` from an explicit 0/1 sequence."""
    arr = np.asarray(list(bits), dtype=np.int64)
    ones = np.nonzero(arr)[0]
    return EliasFanoBitVector(int(arr.size), ones)


def predicted_elias_fano_bits(length: int, n_ones: int) -> int:
    """The classic ``m (2 + ceil(lg(n/m)))`` size estimate (for tests/ablations)."""
    if n_ones == 0:
        return 3 * 64
    return n_ones * (2 + max(bits_needed(max(length // max(n_ones, 1), 1) - 1), 0)) + 3 * 64
