"""Huffman coding utilities.

Used in two places:

* :mod:`repro.wavelet.huffman_wt` builds a Huffman-*shaped* wavelet tree whose
  shape is the Huffman tree of the stored string.
* :mod:`repro.compressors.huffman_coder` uses canonical Huffman codes as the
  final entropy-coding stage of the MEL and PRESS baselines.

The implementation builds the classic frequency-merged binary tree and derives
both the code for every symbol and the explicit tree topology (needed by the
wavelet tree).  Ties are broken deterministically by symbol value so that
builds are reproducible across runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..exceptions import ConstructionError


@dataclass(slots=True)
class HuffmanNode:
    """A node of a Huffman tree.

    Leaves carry a ``symbol``; internal nodes carry ``left``/``right`` children.
    """

    symbol: int | None = None
    left: "HuffmanNode | None" = None
    right: "HuffmanNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """True when this node holds a symbol."""
        return self.symbol is not None


@dataclass
class HuffmanCode:
    """The result of building a Huffman code over an integer alphabet.

    Attributes
    ----------
    root:
        Root of the Huffman tree (``None`` only for an empty alphabet).
    codes:
        Mapping from symbol to its code as a tuple of bits (0/1), root to leaf.
    lengths:
        Mapping from symbol to code length.
    """

    root: HuffmanNode | None
    codes: dict[int, tuple[int, ...]] = field(default_factory=dict)
    lengths: dict[int, int] = field(default_factory=dict)

    def encoded_length(self, frequencies: Mapping[int, int]) -> int:
        """Total bits needed to encode a string with the given symbol counts."""
        return sum(self.lengths[symbol] * count for symbol, count in frequencies.items())


def build_huffman_code(frequencies: Mapping[int, int]) -> HuffmanCode:
    """Build a Huffman code for the given ``symbol -> count`` mapping.

    Symbols with zero count are ignored.  A single-symbol alphabet receives a
    one-bit code (the degenerate tree has one internal node with a single
    leaf child duplicated on the left), matching the behaviour of practical
    wavelet-tree libraries.
    """
    items = sorted((int(count), int(symbol)) for symbol, count in frequencies.items() if count > 0)
    if not items:
        raise ConstructionError("cannot build a Huffman code over an empty frequency table")

    if len(items) == 1:
        only_symbol = items[0][1]
        leaf = HuffmanNode(symbol=only_symbol)
        root = HuffmanNode(left=leaf, right=None)
        return HuffmanCode(root=root, codes={only_symbol: (0,)}, lengths={only_symbol: 1})

    heap: list[tuple[int, int, HuffmanNode]] = []
    tiebreak = 0
    for count, symbol in items:
        heap.append((count, tiebreak, HuffmanNode(symbol=symbol)))
        tiebreak += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        count_a, _, node_a = heapq.heappop(heap)
        count_b, _, node_b = heapq.heappop(heap)
        merged = HuffmanNode(left=node_a, right=node_b)
        heapq.heappush(heap, (count_a + count_b, tiebreak, merged))
        tiebreak += 1
    root = heap[0][2]

    codes: dict[int, tuple[int, ...]] = {}
    lengths: dict[int, int] = {}

    stack: list[tuple[HuffmanNode, tuple[int, ...]]] = [(root, ())]
    while stack:
        node, prefix = stack.pop()
        if node.is_leaf:
            codes[node.symbol] = prefix  # type: ignore[index]
            lengths[node.symbol] = len(prefix)  # type: ignore[index]
            continue
        if node.left is not None:
            stack.append((node.left, prefix + (0,)))
        if node.right is not None:
            stack.append((node.right, prefix + (1,)))
    return HuffmanCode(root=root, codes=codes, lengths=lengths)


def frequencies_of(sequence: Sequence[int]) -> dict[int, int]:
    """Return a ``symbol -> count`` mapping for an integer sequence."""
    counts: dict[int, int] = {}
    for symbol in sequence:
        counts[symbol] = counts.get(symbol, 0) + 1
    return counts


def average_code_length(code: HuffmanCode, frequencies: Mapping[int, int]) -> float:
    """Average bits per symbol of ``code`` under the empirical distribution."""
    total = sum(frequencies.values())
    if total == 0:
        return 0.0
    return code.encoded_length(frequencies) / total
