"""Succinct data-structure primitives (bit vectors, int vectors, Huffman codes).

These are the building blocks underneath every FM-index variant in the
repository, including CiNCT itself:

* :class:`~repro.succinct.bitvector.BitVector` — plain bitmap with O(1) rank.
* :class:`~repro.succinct.rrr.RRRBitVector` — compressed bitmap (practical RRR)
  with the block-size parameter ``b`` studied in the paper.
* :class:`~repro.succinct.intvector.IntVector` — fixed-width integer arrays.
* :func:`~repro.succinct.huffman.build_huffman_code` — Huffman codes / trees.
"""

from .bitvector import BitVector, bitvector_from_positions
from .eliasfano import EliasFanoBitVector, elias_fano_from_bits, predicted_elias_fano_bits
from .huffman import (
    HuffmanCode,
    HuffmanNode,
    average_code_length,
    build_huffman_code,
    frequencies_of,
)
from .intvector import IntVector, bits_needed, prefix_sums
from .rrr import RRRBitVector, decode_block, encode_block, offset_bits

__all__ = [
    "BitVector",
    "bitvector_from_positions",
    "EliasFanoBitVector",
    "elias_fano_from_bits",
    "predicted_elias_fano_bits",
    "RRRBitVector",
    "encode_block",
    "decode_block",
    "offset_bits",
    "IntVector",
    "bits_needed",
    "prefix_sums",
    "HuffmanCode",
    "HuffmanNode",
    "build_huffman_code",
    "frequencies_of",
    "average_code_length",
]
