"""Fixed-width integer vectors with exact bit-size accounting.

Several parts of CiNCT and the baseline FM-indexes store arrays of small
integers (the ``C[]`` array, correction terms, per-context rank samples, ...).
:class:`IntVector` wraps a numpy array and reports its size as
``len * width`` bits, where the width is the minimum number of bits needed to
represent the largest stored value, matching how the C++/sdsl implementation
would size an ``int_vector``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import QueryError


def bits_needed(value: int) -> int:
    """Minimum number of bits needed to represent ``value`` (at least 1)."""
    if value < 0:
        raise ValueError(f"bits_needed expects a non-negative value, got {value}")
    return max(int(value).bit_length(), 1)


class IntVector:
    """An immutable vector of non-negative integers with a fixed bit width.

    Parameters
    ----------
    values:
        The integers to store.
    width:
        Bit width per element; inferred from the maximum value when omitted.
    """

    def __init__(self, values: Iterable[int], width: int | None = None):
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.int64)
        if arr.size and int(arr.min()) < 0:
            raise ValueError("IntVector stores non-negative integers only")
        self._values = arr
        if width is None:
            width = bits_needed(int(arr.max())) if arr.size else 1
        else:
            if arr.size and bits_needed(int(arr.max())) > width:
                raise ValueError(
                    f"width {width} too small for maximum value {int(arr.max())}"
                )
        self._width = int(width)

    def __len__(self) -> int:
        return int(self._values.size)

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._values.size:
            raise QueryError(f"index {i} out of range [0, {self._values.size})")
        return int(self._values[i])

    def __iter__(self) -> Iterator[int]:
        return iter(int(v) for v in self._values)

    @property
    def width(self) -> int:
        """Bits per element."""
        return self._width

    def to_numpy(self) -> np.ndarray:
        """Return a copy of the underlying values as ``int64``."""
        return self._values.copy()

    def size_in_bits(self) -> int:
        """``len(self) * width`` bits plus a 64-bit length header."""
        return int(self._values.size) * self._width + 64

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"IntVector(n={len(self)}, width={self._width})"


def prefix_sums(counts: Sequence[int]) -> list[int]:
    """Return exclusive prefix sums of ``counts`` (length ``len(counts) + 1``)."""
    out = [0]
    for count in counts:
        out.append(out[-1] + int(count))
    return out
