"""Command-line interface for the CiNCT reproduction.

The CLI wraps the most common workflows so the library is usable without
writing Python:

``repro-cinct stats``
    Print Table-III-style statistics for a named dataset analogue.
``repro-cinct build``
    Build a CiNCT index from a JSONL/CSV trajectory file (or a named
    analogue) and persist it to a directory.
``repro-cinct query``
    Load a persisted index and run a path (suffix-range) query.
``repro-cinct compare``
    Build every FM-index variant on a dataset analogue and print the
    size/time comparison of Fig. 10 for that dataset.

Every sub-command prints plain text to stdout; exit status 0 means success.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from .analysis.stats import dataset_statistics
from .bench.harness import build_index, bwt_of_bundle, format_table, sample_query_workload
from .core.cinct import CiNCT
from .datasets.registry import load_dataset, paper_dataset_names
from .exceptions import ReproError
from .io.dataset_io import load_dataset_csv, load_dataset_jsonl
from .io.index_io import load_cinct, save_cinct

_DEFAULT_VARIANTS = ("CiNCT", "UFMI", "ICB-WM", "ICB-Huff", "FM-GMR", "FM-AP-HYB")


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=paper_dataset_names(),
        help="name of a built-in dataset analogue",
    )
    parser.add_argument("--input", type=Path, help="path to a JSONL or CSV trajectory file")
    parser.add_argument("--scale", type=float, default=0.2, help="size multiplier for analogues")
    parser.add_argument("--seed", type=int, default=None, help="seed for analogue generation")


def _load_trajectories(args: argparse.Namespace) -> tuple[str, list[list[object]]]:
    """Resolve ``--dataset``/``--input`` into (name, symbol-free trajectories)."""
    if args.input is not None:
        path = Path(args.input)
        if path.suffix.lower() in {".jsonl", ".json"}:
            dataset = load_dataset_jsonl(path)
        elif path.suffix.lower() == ".csv":
            dataset = load_dataset_csv(path)
        else:
            raise ReproError(f"unsupported input format: {path.suffix} (use .jsonl or .csv)")
        return dataset.name, [list(t.edges) for t in dataset]
    if args.dataset is None:
        raise ReproError("either --dataset or --input is required")
    bundle = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    return bundle.name, [list(t) for t in bundle.symbol_trajectories]


# --------------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------------- #
def _command_stats(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    stats = dataset_statistics(bundle.name, bundle.text, bundle.sigma)
    print(format_table([stats.as_row()]))
    return 0


def _command_build(args: argparse.Namespace) -> int:
    name, trajectories = _load_trajectories(args)
    started = time.perf_counter()
    index, trajectory_string = CiNCT.from_trajectories(
        trajectories,
        block_size=args.block_size,
        sa_sample_rate=args.sa_sample_rate,
    )
    elapsed = time.perf_counter() - started
    bwt_result = None
    # from_trajectories builds the BWT internally; rebuild the artefacts once
    # more for persistence (still linear apart from the suffix sort).
    from .strings.bwt import burrows_wheeler_transform

    bwt_result = burrows_wheeler_transform(trajectory_string.text, sigma=trajectory_string.sigma)
    save_cinct(index, bwt_result, args.output, trajectory_string=trajectory_string)
    print(f"dataset           : {name}")
    print(f"trajectories      : {trajectory_string.n_trajectories}")
    print(f"string length |T| : {index.length}")
    print(f"alphabet sigma    : {index.sigma}")
    print(f"index size        : {index.size_in_bits()} bits "
          f"({index.bits_per_symbol():.2f} bits/symbol)")
    print(f"construction time : {elapsed:.2f} s")
    print(f"saved to          : {args.output}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    saved = load_cinct(args.index)
    path = [_parse_edge(token) for token in args.path]
    if saved.alphabet is not None:
        try:
            pattern = saved.alphabet.encode_path(path)
        except ReproError:
            print("path: not found (unknown road segment)")
            return 0
    else:
        pattern = [int(token) for token in args.path]
    started = time.perf_counter()
    count = saved.index.count(pattern)
    elapsed = (time.perf_counter() - started) * 1e6
    print(f"path      : {' -> '.join(str(p) for p in path)}")
    print(f"matches   : {count}")
    print(f"query time: {elapsed:.1f} us")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    bwt_result = bwt_of_bundle(bundle)
    patterns = sample_query_workload(bwt_result, args.pattern_length, args.n_patterns, seed=0)
    rows = []
    for variant in args.variants:
        built = build_index(variant, bwt_result, block_size=args.block_size)
        started = time.perf_counter()
        for pattern in patterns:
            built.index.suffix_range(pattern)
        mean_us = (time.perf_counter() - started) / max(len(patterns), 1) * 1e6
        rows.append(
            {
                "method": variant,
                "bits/symbol": round(built.bits_per_symbol(), 2),
                "search (us)": round(mean_us, 1),
                "build (s)": round(built.build_seconds, 2),
            }
        )
    print(format_table(rows, title=f"{bundle.name} — size vs search time"))
    return 0


def _parse_edge(token: str) -> object:
    """Interpret a CLI path token as an int when possible, else a string."""
    try:
        return int(token)
    except ValueError:
        return token


# --------------------------------------------------------------------------- #
# parser wiring
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-cinct",
        description="CiNCT: compressed indexing and retrieval for vehicular trajectories",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser("stats", help="print Table-III statistics for a dataset analogue")
    stats.add_argument("--dataset", choices=paper_dataset_names(), required=True)
    stats.add_argument("--scale", type=float, default=0.2)
    stats.add_argument("--seed", type=int, default=None)
    stats.set_defaults(handler=_command_stats)

    build = subparsers.add_parser("build", help="build and persist a CiNCT index")
    _add_dataset_arguments(build)
    build.add_argument("--output", type=Path, required=True, help="directory for the saved index")
    build.add_argument("--block-size", type=int, default=63, help="RRR block size b")
    build.add_argument("--sa-sample-rate", type=int, default=None, help="suffix-array sampling rate")
    build.set_defaults(handler=_command_build)

    query = subparsers.add_parser("query", help="run a path query against a saved index")
    query.add_argument("--index", type=Path, required=True, help="directory of the saved index")
    query.add_argument("path", nargs="+", help="road segments of the query path, in travel order")
    query.set_defaults(handler=_command_query)

    compare = subparsers.add_parser("compare", help="compare index variants on a dataset analogue")
    compare.add_argument("--dataset", choices=paper_dataset_names(), required=True)
    compare.add_argument("--scale", type=float, default=0.2)
    compare.add_argument("--seed", type=int, default=None)
    compare.add_argument("--block-size", type=int, default=63)
    compare.add_argument("--pattern-length", type=int, default=10)
    compare.add_argument("--n-patterns", type=int, default=20)
    compare.add_argument(
        "--variants",
        nargs="+",
        default=list(_DEFAULT_VARIANTS),
        choices=list(_DEFAULT_VARIANTS),
    )
    compare.set_defaults(handler=_command_compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.handler(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
