"""Command-line interface for the CiNCT reproduction.

The CLI sits on the :class:`~repro.engine.TrajectoryEngine` facade, so every
sub-command works with every registered index backend (``--backend``):

``repro-cinct stats``
    Print Table-III-style statistics for a named dataset analogue.
``repro-cinct build``
    Build an index from a JSONL/CSV trajectory file (or a named analogue)
    with any registered backend and persist it to a directory.
``repro-cinct query``
    Load a persisted index and run a path query (optionally a strict-path
    query with ``--t-start``/``--t-end``); ``--verbose`` adds result-cache
    and interval-cache statistics and the growth epoch, ``--no-cache``
    bypasses the result cache.
``repro-cinct compare``
    Build every requested backend on a dataset analogue and print the
    size/time comparison of Fig. 10, including ``size_in_bits`` and
    bits/symbol per backend straight from the registry.
``repro-cinct serve``
    Load a persisted index and serve it over HTTP with micro-batch
    coalescing and admission control (see :mod:`repro.service`); flags
    default to the ``REPRO_SERVE_*`` environment variables.

Every sub-command prints plain text to stdout; exit status 0 means success.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Hashable, Sequence

from .analysis.stats import dataset_statistics
from .bench.harness import format_table
from .datasets.registry import load_dataset, paper_dataset_names
from .engine import (
    EngineConfig,
    available_backends,
    backend_spec,
    build_engine,
    sample_paths,
)
from .exceptions import AlphabetError, ReproError
from .io.dataset_io import load_dataset_csv, load_dataset_jsonl
from .io.index_io import load_cinct, load_index


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=paper_dataset_names(),
        help="name of a built-in dataset analogue",
    )
    parser.add_argument("--input", type=Path, help="path to a JSONL or CSV trajectory file")
    parser.add_argument("--scale", type=float, default=0.2, help="size multiplier for analogues")
    parser.add_argument("--seed", type=int, default=None, help="seed for analogue generation")


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="cinct",
        help=f"index backend (one of: {', '.join(available_backends())})",
    )
    parser.add_argument("--block-size", type=int, default=63, help="RRR block size b")
    parser.add_argument(
        "--sa-sample-rate",
        type=int,
        default=None,
        help="suffix-array sampling rate (enables locate / strict-path queries)",
    )
    parser.add_argument(
        "--tail-max-symbols",
        type=int,
        default=None,
        help="seal the mutable ingest tail into a compressed partition once it "
        "holds this many symbols (enables the LSM-style tail)",
    )
    parser.add_argument(
        "--tail-max-trajectories",
        type=int,
        default=None,
        help="seal the mutable ingest tail once it holds this many trajectories "
        "(enables the LSM-style tail)",
    )
    parser.add_argument(
        "--compaction",
        choices=("inline", "background", "off"),
        default="inline",
        help="how the partitioned backend seals its ingest tail: on the "
        "ingesting thread (inline), on a worker thread (background), or never (off)",
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=1,
        help="fleet shards (>1 builds a sharded engine with round-robin routing)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        help="bound on the sharded fan-out dispatchers (default: min(shards, CPUs))",
    )
    _add_reliability_arguments(parser)


def _add_reliability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shard-executor",
        choices=("serial", "threads", "processes"),
        default=None,
        help="sharded fan-out strategy (processes = persistent worker pool; "
        "default: the config the index was built/saved with)",
    )
    parser.add_argument(
        "--shard-deadline",
        type=float,
        default=None,
        help="seconds one per-shard fan-out attempt may run before timing out",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=None,
        help="extra fan-out attempts per shard after a retryable failure",
    )
    parser.add_argument(
        "--degraded-results",
        action="store_true",
        help="merge surviving shards when a shard fails (results flagged degraded)",
    )


def _apply_reliability_overrides(engine, args: argparse.Namespace) -> None:
    """Apply query-time reliability/executor flags to a freshly loaded fleet."""
    if getattr(args, "shard_executor", None) and hasattr(engine, "configure_executor"):
        engine.configure_executor(args.shard_executor)
    wants_override = (
        args.shard_deadline is not None
        or args.shard_retries is not None
        or args.degraded_results
    )
    if not wants_override:
        return
    if not hasattr(engine, "configure_reliability"):
        # Single-engine index: there is no fan-out to police.
        return
    engine.configure_reliability(
        deadline=args.shard_deadline,
        retries=args.shard_retries,
        degraded_results=True if args.degraded_results else None,
    )


def _load_trajectories(args: argparse.Namespace):
    """Resolve ``--dataset``/``--input`` into (name, trajectory collection)."""
    if args.input is not None:
        path = Path(args.input)
        if path.suffix.lower() in {".jsonl", ".json"}:
            dataset = load_dataset_jsonl(path)
        elif path.suffix.lower() == ".csv":
            dataset = load_dataset_csv(path)
        else:
            raise ReproError(f"unsupported input format: {path.suffix} (use .jsonl or .csv)")
        return dataset.name, dataset
    if args.dataset is None:
        raise ReproError("either --dataset or --input is required")
    bundle = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    return bundle.name, [list(t) for t in bundle.symbol_trajectories]


def _engine_config(args: argparse.Namespace) -> EngineConfig:
    return EngineConfig(
        backend=backend_spec(args.backend).name,
        block_size=args.block_size,
        sa_sample_rate=args.sa_sample_rate,
        tail_max_symbols=args.tail_max_symbols,
        tail_max_trajectories=args.tail_max_trajectories,
        compaction=args.compaction,
        num_shards=args.num_shards,
        shard_workers=args.shard_workers,
        shard_executor=args.shard_executor or "threads",
        shard_deadline=args.shard_deadline,
        shard_retries=args.shard_retries or 0,
        degraded_results=bool(args.degraded_results),
    )


# --------------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------------- #
def _command_stats(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    stats = dataset_statistics(bundle.name, bundle.text, bundle.sigma)
    print(format_table([stats.as_row()]))
    return 0


def _command_build(args: argparse.Namespace) -> int:
    name, trajectories = _load_trajectories(args)
    config = _engine_config(args)
    started = time.perf_counter()
    engine = build_engine(trajectories, config)
    elapsed = time.perf_counter() - started
    engine.save(args.output)
    print(f"dataset           : {name}")
    print(f"backend           : {engine.spec.display_name} ({engine.backend_name})")
    if config.num_shards > 1:
        print(f"shards            : {config.num_shards}")
    print(f"trajectories      : {engine.n_trajectories}")
    print(f"string length |T| : {engine.length}")
    print(f"alphabet sigma    : {engine.sigma}")
    print(f"index size        : {engine.size_in_bits()} bits "
          f"({engine.bits_per_symbol():.2f} bits/symbol)")
    temporal_bits = engine.temporal_size_in_bits()
    if temporal_bits:
        store = engine.timestamp_store
        print(f"temporal store    : {temporal_bits} bits "
              f"({store.n_timestamped}/{store.n_trajectories} trajectories timestamped)")
    print(f"construction time : {elapsed:.2f} s")
    print(f"saved to          : {args.output}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    path = [_parse_edge(token) for token in args.path]
    if (args.t_start is None) != (args.t_end is None):
        raise ReproError("provide both --t-start and --t-end, or neither")
    index_dir = Path(args.index)
    if not (index_dir / "engine.json").exists() and (index_dir / "index.json").exists():
        # A directory written by the legacy save_cinct format.
        return _query_legacy(args, path)
    engine = load_index(index_dir, mmap=args.mmap)
    _apply_reliability_overrides(engine, args)
    if args.no_cache:
        engine.disable_cache()
    started = time.perf_counter()
    try:
        if args.t_start is not None:
            matches = engine.strict_path(path, args.t_start, args.t_end)
            count = len(matches)
        else:
            matches = None
            count = engine.count(path)
    except AlphabetError:
        print("path: not found (unknown road segment)")
        return 0
    elapsed = (time.perf_counter() - started) * 1e6
    print(f"backend   : {engine.spec.display_name}")
    num_shards = getattr(engine, "num_shards", 1)
    if num_shards > 1:
        print(f"shards    : {num_shards}")
    print(f"path      : {' -> '.join(str(p) for p in path)}")
    print(f"matches   : {count}")
    print(f"query time: {elapsed:.1f} us")
    if args.verbose:
        # One engine.stats() snapshot drives the whole verbose block, so the
        # cache/epoch/health lines are a single consistent observation (the
        # same document the serving tier's /stats endpoint reports).
        snapshot = engine.stats()
        cache = snapshot["cache"]
        state = "on" if cache["enabled"] else "off"
        print(
            f"cache     : {state} "
            f"(hits={cache['hits']} misses={cache['misses']} "
            f"size={cache['size']}/{cache['capacity']} "
            f"evictions={cache['evictions']})"
        )
        intervals = snapshot["interval_cache"]
        interval_state = "on" if intervals["enabled"] else "off"
        print(
            f"intervals : {interval_state} "
            f"(hits={intervals['hits']} misses={intervals['misses']} "
            f"size={intervals['size']}/{intervals['capacity']} "
            f"evictions={intervals['evictions']})"
        )
        print(f"epoch     : {snapshot['epoch']}")
        health = snapshot["health"]
        print(
            f"health    : {health['status']} "
            f"({health['failing_shards']}/{health['num_shards']} shards failing)"
        )
        if "policy" in health:
            print(f"policy    : {health['policy']}")
            print(f"degraded  : {'on' if health['degraded_results'] else 'off'}")
        executor = snapshot["executor"]
        workers = executor.get("workers") or []
        if workers:
            pids = ",".join(str(row["pid"]) for row in workers)
            restarts = sum(int(row["restarts"]) for row in workers)
            print(
                f"executor  : {executor['mode']} "
                f"(workers={len(workers)} pids={pids} restarts={restarts})"
            )
        else:
            print(f"executor  : {executor['mode']}")
        ingest = snapshot.get("ingest")
        if ingest and ingest["tail"]["enabled"]:
            tail = ingest["tail"]
            compaction = ingest["compaction"]
            print(
                f"tail      : {tail['trajectories']} trajectories, "
                f"{tail['symbols']} symbols uncompressed"
            )
            print(
                f"compaction: {compaction['mode']} "
                f"(count={compaction['count']} failures={compaction['failures']} "
                f"tiered_merges={compaction['tiered_merges']} "
                f"in_flight={'yes' if compaction['in_flight'] else 'no'})"
            )
    if matches is not None:
        for match in matches[:10]:
            window = ""
            if match.start_time is not None and match.end_time is not None:
                window = f"  time [{match.start_time:.1f}, {match.end_time:.1f}]"
            print(
                f"  trajectory {match.trajectory_id} "
                f"edges [{match.start_edge_index}, {match.end_edge_index}]{window}"
            )
    return 0


def _query_legacy(args: argparse.Namespace, path: list[Hashable]) -> int:
    """Query a directory written by the legacy ``save_cinct`` format."""
    saved = load_cinct(args.index)
    if args.t_start is not None:
        raise ReproError("legacy CiNCT directories do not support strict-path queries")
    if args.verbose or args.no_cache:
        # Legacy directories are queried without the engine pipeline, so
        # there is no result cache to report on or bypass.
        print("note      : legacy save_cinct index; no result cache (engine-only)")
    if saved.alphabet is not None:
        try:
            pattern = saved.alphabet.encode_path(path)
        except AlphabetError:
            print("path: not found (unknown road segment)")
            return 0
    else:
        pattern = [int(token) for token in path]
    started = time.perf_counter()
    count = saved.index.count(pattern)
    elapsed = (time.perf_counter() - started) * 1e6
    print(f"path      : {' -> '.join(str(p) for p in path)}")
    print(f"matches   : {count}")
    print(f"query time: {elapsed:.1f} us")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    trajectories = [list(t) for t in bundle.symbol_trajectories]
    paths = sample_paths(trajectories, args.pattern_length, args.n_patterns, seed=0)
    # The pipeline dedupes identical plans inside a batch, so only distinct
    # patterns execute; report the mean over the work actually performed.
    n_distinct = len({tuple(path) for path in paths})
    rows = []
    # Resolve aliases, dedupe, and iterate in the deterministic
    # available_backends() order so the output rows are stable across runs.
    requested = {backend_spec(name).name for name in args.variants}
    ordered = [name for name in available_backends() if name in requested]
    for name in ordered:
        spec = backend_spec(name)
        config = EngineConfig(
            backend=spec.name,
            block_size=args.block_size,
            num_shards=args.num_shards,
            shard_workers=args.shard_workers,
            shard_executor=args.shard_executor or "threads",
        )
        started = time.perf_counter()
        engine = build_engine(trajectories, config)
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        engine.count_many(paths)
        mean_us = (time.perf_counter() - started) / max(n_distinct, 1) * 1e6
        method = spec.display_name
        if args.num_shards > 1:
            method = f"{method} x{args.num_shards}"
        rows.append(
            {
                "method": method,
                "size (bits)": engine.size_in_bits(),
                # exact TimestampStore accounting (0 without timestamps)
                "temporal (bits)": engine.temporal_size_in_bits(),
                "bits/symbol": round(engine.bits_per_symbol(), 2),
                "search (us)": round(mean_us, 1),
                "build (s)": round(build_seconds, 2),
            }
        )
    print(format_table(rows, title=f"{bundle.name} — size vs search time"))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported here so the serving tier is only paid for by serving processes.
    from .service import ServiceConfig, run_service

    engine = load_index(Path(args.index), mmap=args.mmap)
    _apply_reliability_overrides(engine, args)
    config = ServiceConfig.from_env(
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_batch_size=args.max_batch_size,
        max_queue_depth=args.max_queue_depth,
        default_deadline=args.default_deadline,
        worker_threads=args.worker_threads,
    )
    print(f"index     : {args.index}")
    print(f"backend   : {engine.spec.display_name}")
    num_shards = getattr(engine, "num_shards", 1)
    if num_shards > 1:
        print(f"shards    : {num_shards}")
        print(f"executor  : {engine.executor_info()['mode']}")
    if args.mmap:
        print("mmap      : on (index arrays mapped read-only)")
    try:
        run_service(engine, config)
    finally:
        # Stop any shard worker processes deterministically; leaving them to
        # interpreter-exit finalizers races multiprocessing's own exit hook.
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    return 0


def _parse_edge(token: str) -> Hashable:
    """Interpret a CLI path token as an int when possible, else a string."""
    try:
        return int(token)
    except ValueError:
        return token


# --------------------------------------------------------------------------- #
# parser wiring
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-cinct",
        description="CiNCT: compressed indexing and retrieval for vehicular trajectories",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser("stats", help="print Table-III statistics for a dataset analogue")
    stats.add_argument("--dataset", choices=paper_dataset_names(), required=True)
    stats.add_argument("--scale", type=float, default=0.2)
    stats.add_argument("--seed", type=int, default=None)
    stats.set_defaults(handler=_command_stats)

    build = subparsers.add_parser("build", help="build and persist an index (any backend)")
    _add_dataset_arguments(build)
    _add_backend_arguments(build)
    build.add_argument("--output", type=Path, required=True, help="directory for the saved index")
    build.set_defaults(handler=_command_build)

    query = subparsers.add_parser("query", help="run a path query against a saved index")
    query.add_argument("--index", type=Path, required=True, help="directory of the saved index")
    query.add_argument("--t-start", type=float, default=None, help="strict-path window start")
    query.add_argument("--t-end", type=float, default=None, help="strict-path window end")
    query.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the index arrays read-only instead of copying them",
    )
    query.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the engine's plan-keyed result cache for this query",
    )
    query.add_argument(
        "--verbose",
        action="store_true",
        help="also print result-cache and interval-cache statistics, the "
        "growth epoch, engine health, and ingest tail/compaction counters",
    )
    _add_reliability_arguments(query)
    query.add_argument("path", nargs="+", help="road segments of the query path, in travel order")
    query.set_defaults(handler=_command_query)

    compare = subparsers.add_parser("compare", help="compare index backends on a dataset analogue")
    compare.add_argument("--dataset", choices=paper_dataset_names(), required=True)
    compare.add_argument("--scale", type=float, default=0.2)
    compare.add_argument("--seed", type=int, default=None)
    compare.add_argument("--block-size", type=int, default=63)
    compare.add_argument(
        "--num-shards",
        type=int,
        default=1,
        help="build every backend as a sharded fleet with this many shards",
    )
    compare.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        help="bound on the sharded fan-out dispatchers (default: min(shards, CPUs))",
    )
    compare.add_argument(
        "--shard-executor",
        choices=("serial", "threads", "processes"),
        default=None,
        help="sharded fan-out strategy for every built fleet",
    )
    compare.add_argument("--pattern-length", type=int, default=10)
    compare.add_argument("--n-patterns", type=int, default=20)
    compare.add_argument(
        "--backends",
        "--variants",
        dest="variants",
        nargs="+",
        default=list(available_backends()),
        metavar="BACKEND",
        help="registry keys or display names (default: every registered backend)",
    )
    compare.set_defaults(handler=_command_compare)

    serve = subparsers.add_parser(
        "serve",
        help="serve a saved index over HTTP with micro-batch coalescing",
    )
    serve.add_argument("--index", type=Path, required=True, help="directory of the saved index")
    serve.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the index arrays read-only (workers share the pages)",
    )
    # Service flags default to None so ServiceConfig.from_env applies the
    # precedence flag > REPRO_SERVE_* env var > built-in default.
    serve.add_argument("--host", default=None, help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, help="TCP port (0 = ephemeral)")
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=None,
        help="micro-batch window length in milliseconds",
    )
    serve.add_argument(
        "--max-batch-size",
        type=int,
        default=None,
        help="requests per micro-batch (1 disables coalescing)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="admission bound; excess requests are shed with HTTP 503",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        help="per-request deadline in seconds (absent = no deadline)",
    )
    serve.add_argument(
        "--worker-threads",
        type=int,
        default=None,
        help="threads executing engine batches",
    )
    _add_reliability_arguments(serve)
    serve.set_defaults(handler=_command_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.handler(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
