"""Lossless temporal storage for NCT timestamps.

The paper deliberately leaves timestamp compression out of scope but notes
(Section VII) that CiNCT composes with a temporal index.  This module provides
the minimal such companion structure: per-trajectory delta-encoded timestamps
plus an interval table supporting "which trajectories were active during
``[t1, t2]``" filtering, which is what the strict-path query needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConstructionError, QueryError
from ..succinct import bits_needed
from ..trajectories.model import Trajectory


@dataclass
class TemporalIndex:
    """Delta-encoded timestamps and per-trajectory activity intervals."""

    starts: np.ndarray
    deltas: list[np.ndarray]
    ends: np.ndarray

    @classmethod
    def from_trajectories(cls, trajectories: Sequence[Trajectory]) -> "TemporalIndex":
        """Build the temporal index; every trajectory must carry timestamps."""
        starts: list[float] = []
        ends: list[float] = []
        deltas: list[np.ndarray] = []
        for trajectory in trajectories:
            if trajectory.timestamps is None:
                raise ConstructionError(
                    f"trajectory {trajectory.trajectory_id} has no timestamps; "
                    "the temporal index requires them"
                )
            times = np.asarray(trajectory.timestamps, dtype=np.float64)
            if np.any(np.diff(times) < 0):
                raise ConstructionError(
                    f"trajectory {trajectory.trajectory_id} has decreasing timestamps"
                )
            starts.append(float(times[0]))
            ends.append(float(times[-1]))
            deltas.append(np.diff(times))
        return cls(
            starts=np.asarray(starts, dtype=np.float64),
            deltas=deltas,
            ends=np.asarray(ends, dtype=np.float64),
        )

    @property
    def n_trajectories(self) -> int:
        """Number of indexed trajectories."""
        return int(self.starts.size)

    def timestamp(self, trajectory_id: int, edge_index: int) -> float:
        """Timestamp of the ``edge_index``-th segment of a trajectory."""
        if not 0 <= trajectory_id < self.n_trajectories:
            raise QueryError(f"trajectory id {trajectory_id} out of range")
        deltas = self.deltas[trajectory_id]
        if not 0 <= edge_index <= deltas.size:
            raise QueryError(f"edge index {edge_index} out of range for trajectory {trajectory_id}")
        return float(self.starts[trajectory_id] + deltas[:edge_index].sum())

    def active_during(self, t_start: float, t_end: float) -> list[int]:
        """Trajectory IDs whose activity interval intersects ``[t_start, t_end]``."""
        if t_end < t_start:
            raise QueryError("t_end must not precede t_start")
        mask = (self.starts <= t_end) & (self.ends >= t_start)
        return [int(i) for i in np.nonzero(mask)[0]]

    def size_in_bits(self, delta_resolution: float = 1.0) -> int:
        """Approximate storage cost with deltas quantised at ``delta_resolution``.

        This is an estimate only; the engine facade reports the *exact*
        encoded size of its :class:`~repro.temporal.TimestampStore` instead
        (:meth:`~repro.engine.TrajectoryEngine.temporal_size_in_bits`).
        """
        bits = self.n_trajectories * 64  # absolute start times
        for deltas in self.deltas:
            if deltas.size == 0:
                continue
            max_delta = max(int(round(float(deltas.max()) / delta_resolution)), 1)
            bits += deltas.size * bits_needed(max_delta)
        return bits
