"""Strict path queries on top of CiNCT (the application of Section VII).

A *strict path query* (Krogh et al.) asks for the trajectories that travelled
along a given path ``P`` during a time interval ``[t1, t2]``.  Following the
architecture of SNT-index / Koide et al. that the paper cites, the spatial
part is answered with a suffix-range query and per-occurrence locate on the
compressed index, and the temporal part with the companion
:class:`~repro.queries.temporal.TemporalIndex`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from ..core.cinct import CiNCT
from ..exceptions import EMPTY_PATH_MESSAGE, QueryError
from ..network.road_network import EdgeId
from ..queries.temporal import TemporalIndex
from ..strings.trajectory_string import TrajectoryString
from ..trajectories.model import TrajectoryDataset


@dataclass(frozen=True)
class StrictPathMatch:
    """One match of a strict path query."""

    trajectory_id: int
    start_edge_index: int
    end_edge_index: int
    start_time: float | None
    end_time: float | None


def resolve_text_position(
    trajectory_string: TrajectoryString,
    text_position: int,
    pattern_length: int,
) -> tuple[int, int, int] | None:
    """Map a trajectory-string position to travel-order coordinates.

    Given the start position (in the stored, reversed text) of a
    ``pattern_length``-symbol occurrence, return ``(trajectory_index,
    start_edge_index, end_edge_index)`` in travel order, or ``None`` when the
    position falls on a separator or the occurrence would cross a trajectory
    boundary.  Shared by :class:`StrictPathIndex` and the engine backends so
    every locate-capable index resolves matches identically.
    """
    offsets = trajectory_string.trajectory_offsets
    lengths = trajectory_string.trajectory_lengths
    trajectory_index = bisect_right(offsets, text_position) - 1
    if trajectory_index < 0 or trajectory_index >= len(offsets):
        return None
    offset = offsets[trajectory_index]
    length = lengths[trajectory_index]
    within = text_position - offset
    if within >= length:
        return None  # the position falls on a separator, not a segment
    # The trajectory is stored reversed: text offset `within` is travel
    # index (length - 1 - within); the match covers pattern_length
    # positions going *forward* in the text, i.e. backwards in travel
    # order, ending at that travel index.
    end_travel_index = length - 1 - within
    start_travel_index = end_travel_index - (pattern_length - 1)
    if start_travel_index < 0:
        return None
    return trajectory_index, start_travel_index, end_travel_index


class StrictPathIndex:
    """Spatio-temporal index answering strict path queries.

    Parameters
    ----------
    dataset:
        The trajectory dataset (timestamps are optional; without them only
        purely spatial strict-path queries are supported).
    block_size:
        RRR block size of the underlying CiNCT index.
    sa_sample_rate:
        Suffix-array sampling rate used for locate.
    """

    def __init__(self, dataset: TrajectoryDataset, block_size: int = 63, sa_sample_rate: int = 16):
        self._dataset = dataset
        self._trajectory_string: TrajectoryString = dataset.to_trajectory_string()
        self._index = CiNCT.from_text(
            self._trajectory_string.text,
            sigma=self._trajectory_string.sigma,
            block_size=block_size,
            sa_sample_rate=sa_sample_rate,
        )
        has_timestamps = all(t.timestamps is not None for t in dataset.trajectories)
        self._temporal = TemporalIndex.from_trajectories(dataset.trajectories) if has_timestamps else None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def cinct(self) -> CiNCT:
        """The underlying CiNCT index."""
        return self._index

    @property
    def temporal(self) -> TemporalIndex | None:
        """The temporal companion index (``None`` without timestamps)."""
        return self._temporal

    def size_in_bits(self) -> int:
        """Spatial index plus temporal index."""
        bits = self._index.size_in_bits()
        if self._temporal is not None:
            bits += self._temporal.size_in_bits()
        return bits

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def count_path(self, path: Sequence[EdgeId]) -> int:
        """Number of traversals of ``path`` across all trajectories."""
        pattern = self._encode(path)
        return self._index.count(pattern)

    def count_paths(self, paths: Sequence[Sequence[EdgeId]]) -> list[int]:
        """Batched :meth:`count_path`: one backward-search pass for all paths.

        The whole workload runs through :meth:`CiNCT.count_many`, which
        advances every path simultaneously with vectorized wavelet ranks.
        """
        patterns = [self._encode(path) for path in paths]
        return self._index.count_many(patterns)

    def query(
        self,
        path: Sequence[EdgeId],
        t_start: float | None = None,
        t_end: float | None = None,
    ) -> list[StrictPathMatch]:
        """Find trajectories that traversed ``path`` (optionally within a time window).

        Parameters
        ----------
        path:
            Road segments in travel order.
        t_start, t_end:
            When both are given, only traversals that started no earlier than
            ``t_start`` and finished no later than ``t_end`` are returned
            (the strict-path-query semantics).
        """
        if (t_start is None) != (t_end is None):
            raise QueryError("provide both t_start and t_end, or neither")
        if t_start is not None and self._temporal is None:
            raise QueryError("the dataset has no timestamps; temporal filtering is unavailable")
        pattern = self._encode(path)
        found = self._index.suffix_range(pattern)
        if found is None:
            return []
        sp, ep = found
        matches: list[StrictPathMatch] = []
        # One batched locate for the whole suffix range: every occurrence
        # LF-walks to its sampled ancestor in lockstep.
        text_positions = self._index.locate_many(range(sp, ep))
        for text_position in text_positions:
            match = self._match_from_text_position(text_position, len(pattern))
            if match is None:
                continue
            if t_start is not None:
                if match.start_time is None or match.end_time is None:
                    continue
                if match.start_time < t_start or match.end_time > t_end:
                    continue
            matches.append(match)
        matches.sort(key=lambda m: (m.trajectory_id, m.start_edge_index))
        return matches

    def matching_trajectory_ids(
        self,
        path: Sequence[EdgeId],
        t_start: float | None = None,
        t_end: float | None = None,
    ) -> list[int]:
        """Distinct trajectory IDs returned by :meth:`query`."""
        return sorted({match.trajectory_id for match in self.query(path, t_start, t_end)})

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _encode(self, path: Sequence[EdgeId]) -> list[int]:
        if not path:
            raise QueryError(EMPTY_PATH_MESSAGE)
        return self._trajectory_string.encode_pattern(list(path))

    def _match_from_text_position(self, text_position: int, pattern_length: int) -> StrictPathMatch | None:
        resolved = resolve_text_position(self._trajectory_string, text_position, pattern_length)
        if resolved is None:
            return None
        trajectory_index, start_travel_index, end_travel_index = resolved
        trajectory = self._dataset.trajectories[trajectory_index]
        start_time = end_time = None
        if trajectory.timestamps is not None:
            start_time = trajectory.timestamps[start_travel_index]
            end_time = trajectory.timestamps[end_travel_index]
        return StrictPathMatch(
            trajectory_id=trajectory.trajectory_id
            if trajectory.trajectory_id is not None
            else trajectory_index,
            start_edge_index=start_travel_index,
            end_edge_index=end_travel_index,
            start_time=start_time,
            end_time=end_time,
        )
