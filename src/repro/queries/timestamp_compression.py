"""Timestamp compression companions for CiNCT (Section VII composition).

The paper compresses spatial paths only and points out that existing
timestamp compressors — lossless delta coding (Brisaboa et al.) and lossy
bounded-error schemes (PRESS, COMPRESS) — can be combined with CiNCT.  This
module implements both families so the strict-path-query layer (and the
examples) can demonstrate the composition:

* :class:`DeltaTimestampCodec` — lossless: per-trajectory start time plus
  integer-quantised deltas stored at the minimal fixed width;
* :class:`BoundedErrorTimestampCodec` — lossy: deltas quantised to a
  user-chosen resolution, guaranteeing a per-sample reconstruction error of at
  most half the resolution (the classic bounded-error guarantee of the lossy
  NCT compressors the paper cites).

Both codecs report exact bit sizes so benchmarks can chart the space/accuracy
trade-off alongside the spatial index sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConstructionError, QueryError
from ..succinct import bits_needed
from ..trajectories.model import Trajectory


@dataclass
class EncodedTimestamps:
    """Compressed timestamps of one trajectory."""

    start: float
    quantised_deltas: np.ndarray
    resolution: float
    delta_width: int

    @property
    def n_samples(self) -> int:
        """Number of timestamps encoded (deltas + the explicit start)."""
        return int(self.quantised_deltas.size) + 1

    def size_in_bits(self) -> int:
        """Bits used: a 64-bit start plus fixed-width deltas plus the width byte."""
        return 64 + int(self.quantised_deltas.size) * self.delta_width + 8

    def decode(self) -> np.ndarray:
        """Reconstruct the timestamp sequence."""
        deltas = self.quantised_deltas.astype(np.float64) * self.resolution
        return self.start + np.concatenate(([0.0], np.cumsum(deltas)))


class DeltaTimestampCodec:
    """Lossless delta coding of per-segment timestamps.

    Timestamps are assumed to be given at integral multiples of ``resolution``
    (1 second by default, which is how the paper's datasets are sampled); any
    finer fraction is preserved exactly only if it is representable at that
    resolution, otherwise :class:`BoundedErrorTimestampCodec` should be used.
    """

    def __init__(self, resolution: float = 1.0):
        if resolution <= 0:
            raise ConstructionError("resolution must be positive")
        self.resolution = float(resolution)

    def encode(self, timestamps: Sequence[float]) -> EncodedTimestamps:
        """Encode one non-decreasing timestamp sequence."""
        times = np.asarray(timestamps, dtype=np.float64)
        if times.size == 0:
            raise ConstructionError("cannot encode an empty timestamp sequence")
        deltas = np.diff(times)
        if np.any(deltas < 0):
            raise ConstructionError("timestamps must be non-decreasing")
        quantised = np.rint(deltas / self.resolution).astype(np.int64)
        width = bits_needed(int(quantised.max())) if quantised.size and quantised.max() > 0 else 1
        return EncodedTimestamps(
            start=float(times[0]),
            quantised_deltas=quantised,
            resolution=self.resolution,
            delta_width=width,
        )

    def encode_trajectory(self, trajectory: Trajectory) -> EncodedTimestamps:
        """Encode the timestamps attached to a trajectory."""
        if trajectory.timestamps is None:
            raise ConstructionError(
                f"trajectory {trajectory.trajectory_id} carries no timestamps"
            )
        return self.encode(trajectory.timestamps)

    def max_error(self) -> float:
        """Worst-case per-sample reconstruction error (half the resolution)."""
        return self.resolution / 2.0


class BoundedErrorTimestampCodec(DeltaTimestampCodec):
    """Lossy delta coding with a configurable time resolution.

    A coarser ``resolution`` (e.g. 5 seconds) shrinks the delta width at the
    cost of a bounded reconstruction error; the guarantee is that every
    reconstructed *delta* is within half a resolution step of the original,
    so the error on the k-th timestamp is at most ``k * resolution / 2`` in
    the worst case and typically far smaller because rounding errors cancel.
    """

    def __init__(self, resolution: float = 5.0):
        super().__init__(resolution=resolution)


@dataclass
class TimestampStoreStatistics:
    """Aggregate size/accuracy statistics over a compressed dataset."""

    n_trajectories: int
    n_samples: int
    total_bits: int
    mean_absolute_error: float
    max_absolute_error: float

    @property
    def bits_per_timestamp(self) -> float:
        """Average storage per timestamp."""
        return self.total_bits / max(self.n_samples, 1)


class CompressedTimestampStore:
    """Compressed timestamps for a whole dataset, addressable by trajectory.

    This is the *analysis* companion: it keeps the original timestamps so
    :meth:`statistics` can report the reconstruction error of lossy codecs
    (the Section-VII size/accuracy trade-off).  For lossless timestamp
    storage inside the engine — including ``None`` gaps and npz persistence —
    use :class:`repro.temporal.TimestampStore` instead.

    Parameters
    ----------
    trajectories:
        Trajectories carrying timestamps.
    codec:
        The codec to apply (lossless by default).
    """

    def __init__(
        self,
        trajectories: Sequence[Trajectory],
        codec: DeltaTimestampCodec | None = None,
    ):
        if not trajectories:
            raise ConstructionError("the timestamp store needs at least one trajectory")
        self.codec = codec or DeltaTimestampCodec()
        self._encoded: list[EncodedTimestamps] = []
        self._originals: list[np.ndarray] = []
        for trajectory in trajectories:
            encoded = self.codec.encode_trajectory(trajectory)
            self._encoded.append(encoded)
            self._originals.append(np.asarray(trajectory.timestamps, dtype=np.float64))

    @property
    def n_trajectories(self) -> int:
        """Number of trajectories stored."""
        return len(self._encoded)

    def timestamps(self, trajectory_id: int) -> np.ndarray:
        """Reconstructed timestamps of one trajectory."""
        self._check_id(trajectory_id)
        return self._encoded[trajectory_id].decode()

    def timestamp(self, trajectory_id: int, edge_index: int) -> float:
        """Reconstructed timestamp of one segment of one trajectory."""
        times = self.timestamps(trajectory_id)
        if not 0 <= edge_index < times.size:
            raise QueryError(
                f"edge index {edge_index} out of range for trajectory {trajectory_id}"
            )
        return float(times[edge_index])

    def size_in_bits(self) -> int:
        """Total compressed size across all trajectories."""
        return sum(encoded.size_in_bits() for encoded in self._encoded)

    def statistics(self) -> TimestampStoreStatistics:
        """Size and reconstruction-error statistics of the store."""
        errors: list[float] = []
        n_samples = 0
        for encoded, original in zip(self._encoded, self._originals):
            reconstructed = encoded.decode()
            errors.extend(np.abs(reconstructed - original).tolist())
            n_samples += int(original.size)
        errors_arr = np.asarray(errors, dtype=np.float64)
        return TimestampStoreStatistics(
            n_trajectories=self.n_trajectories,
            n_samples=n_samples,
            total_bits=self.size_in_bits(),
            mean_absolute_error=float(errors_arr.mean()) if errors_arr.size else 0.0,
            max_absolute_error=float(errors_arr.max()) if errors_arr.size else 0.0,
        )

    def _check_id(self, trajectory_id: int) -> None:
        if not 0 <= trajectory_id < self.n_trajectories:
            raise QueryError(f"trajectory id {trajectory_id} out of range")
