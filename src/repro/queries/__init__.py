"""Query layer: temporal index, timestamp compression and strict path queries."""

from .strict_path import StrictPathIndex, StrictPathMatch
from .temporal import TemporalIndex
from .timestamp_compression import (
    BoundedErrorTimestampCodec,
    CompressedTimestampStore,
    DeltaTimestampCodec,
    EncodedTimestamps,
    TimestampStoreStatistics,
)

__all__ = [
    "TemporalIndex",
    "StrictPathIndex",
    "StrictPathMatch",
    "DeltaTimestampCodec",
    "BoundedErrorTimestampCodec",
    "EncodedTimestamps",
    "CompressedTimestampStore",
    "TimestampStoreStatistics",
]
