"""Suffix array construction for integer sequences.

Two constructions are provided:

* :func:`suffix_array` — an O(n log n) prefix-doubling algorithm vectorised
  with numpy; this is the production path and scales to the multi-hundred-
  thousand-symbol trajectory strings used by the benchmark harness.
* :func:`suffix_array_naive` — an O(n^2 log n) comparison sort kept as a
  reference implementation for property tests on small inputs.

The trajectory strings built by :mod:`repro.strings.trajectory_string` always
terminate with the unique, lexicographically smallest symbol ``#``, which is
the standard requirement for a well-defined Burrows–Wheeler transform.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConstructionError


def suffix_array_naive(text: Sequence[int]) -> np.ndarray:
    """Reference O(n^2 log n) suffix array (sort suffixes directly)."""
    items = list(int(x) for x in text)
    n = len(items)
    order = sorted(range(n), key=lambda i: items[i:])
    return np.asarray(order, dtype=np.int64)


def suffix_array(text: Sequence[int] | np.ndarray) -> np.ndarray:
    """Build the suffix array of an integer sequence via prefix doubling.

    Parameters
    ----------
    text:
        Sequence of non-negative integers.

    Returns
    -------
    numpy.ndarray
        ``sa`` such that ``text[sa[0]:] < text[sa[1]:] < ...``.
    """
    arr = np.asarray(text, dtype=np.int64)
    n = int(arr.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if arr.min() < 0:
        raise ConstructionError("suffix_array expects non-negative symbols")

    # Initial ranks are the dense ranks of single symbols.
    rank = np.unique(arr, return_inverse=True)[1].astype(np.int64)
    gap = 1
    while True:
        second = np.full(n, -1, dtype=np.int64)
        if gap < n:
            second[: n - gap] = rank[gap:]
        order = np.lexsort((second, rank))
        keys_first = rank[order]
        keys_second = second[order]
        changed = np.empty(n, dtype=np.int64)
        changed[0] = 0
        if n > 1:
            changed[1:] = (
                (keys_first[1:] != keys_first[:-1]) | (keys_second[1:] != keys_second[:-1])
            ).astype(np.int64)
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[order] = np.cumsum(changed)
        rank = new_rank
        if int(rank.max()) == n - 1:
            return order.astype(np.int64)
        gap *= 2
        if gap >= 2 * n:  # pragma: no cover - defensive; cannot trigger with distinct sentinel
            return order.astype(np.int64)


def inverse_suffix_array(sa: np.ndarray) -> np.ndarray:
    """Return ``isa`` with ``isa[sa[j]] = j``."""
    isa = np.empty_like(sa)
    isa[sa] = np.arange(sa.size, dtype=sa.dtype)
    return isa
