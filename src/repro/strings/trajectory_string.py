"""Trajectory-string construction (Definition 2 of the paper).

A set of NCTs ``{T_1, ..., T_N}`` is concatenated into a single string

    ``T = rev(T_1) $ rev(T_2) $ ... rev(T_N) $ #``

where every trajectory is *reversed*, ``$`` separates trajectories and ``#``
terminates the string.  Reversal makes the FM-index backward search walk the
query pattern in travel order, which is what the suffix-range query semantics
of the paper rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..exceptions import ConstructionError
from .alphabet import END_SYMBOL, SEP_SYMBOL, Alphabet


@dataclass
class TrajectoryString:
    """A trajectory string plus the bookkeeping needed to interpret it.

    Attributes
    ----------
    text:
        The concatenated, reversed, separator-delimited symbol sequence.
    alphabet:
        Mapping between road-segment IDs and internal symbols.
    trajectory_lengths:
        Length (number of edges) of each input trajectory, in input order.
    trajectory_offsets:
        Start position of each (reversed) trajectory within ``text``.
    """

    text: np.ndarray
    alphabet: Alphabet
    trajectory_lengths: list[int]
    trajectory_offsets: list[int]

    @property
    def length(self) -> int:
        """Total length of the trajectory string (including ``$``/``#``)."""
        return int(self.text.size)

    @property
    def n_trajectories(self) -> int:
        """Number of trajectories concatenated into the string."""
        return len(self.trajectory_lengths)

    @property
    def sigma(self) -> int:
        """Alphabet size (road segments + the two special symbols)."""
        return self.alphabet.sigma

    def trajectory_symbols(self, k: int) -> np.ndarray:
        """Return the ``k``-th trajectory, in travel order, as internal symbols."""
        if not 0 <= k < self.n_trajectories:
            raise ConstructionError(f"trajectory index {k} out of range")
        start = self.trajectory_offsets[k]
        length = self.trajectory_lengths[k]
        return self.text[start : start + length][::-1].copy()

    def trajectory_edges(self, k: int) -> list[Hashable]:
        """Return the ``k``-th trajectory as the original road-segment IDs."""
        return self.alphabet.decode_path(int(s) for s in self.trajectory_symbols(k))

    def encode_pattern(self, path: Sequence[Hashable]) -> list[int]:
        """Encode a query path (road-segment IDs, travel order) into symbols."""
        return self.alphabet.encode_path(path)


def build_trajectory_string(
    trajectories: Sequence[Sequence[Hashable]],
    alphabet: Alphabet | None = None,
) -> TrajectoryString:
    """Build the trajectory string of Definition 2 from raw trajectories.

    Parameters
    ----------
    trajectories:
        Sequence of trajectories, each a sequence of road-segment IDs in
        travel order.  Empty trajectories are rejected.
    alphabet:
        Optional pre-built alphabet (useful to share symbol assignments across
        datasets); new edges found in ``trajectories`` are added to it.
    """
    if not trajectories:
        raise ConstructionError("cannot build a trajectory string from zero trajectories")
    if alphabet is None:
        alphabet = Alphabet()

    pieces: list[np.ndarray] = []
    lengths: list[int] = []
    offsets: list[int] = []
    cursor = 0
    for index, trajectory in enumerate(trajectories):
        if len(trajectory) == 0:
            raise ConstructionError(f"trajectory {index} is empty")
        symbols = [alphabet.add(edge_id) for edge_id in trajectory]
        reversed_symbols = np.asarray(symbols[::-1], dtype=np.int64)
        pieces.append(reversed_symbols)
        pieces.append(np.asarray([SEP_SYMBOL], dtype=np.int64))
        lengths.append(len(symbols))
        offsets.append(cursor)
        cursor += len(symbols) + 1
    pieces.append(np.asarray([END_SYMBOL], dtype=np.int64))
    text = np.concatenate(pieces)
    return TrajectoryString(
        text=text,
        alphabet=alphabet,
        trajectory_lengths=lengths,
        trajectory_offsets=offsets,
    )


def trajectory_string_from_symbols(
    symbol_trajectories: Sequence[Sequence[int]],
    sigma: int | None = None,
) -> np.ndarray:
    """Build only the raw symbol text from trajectories already given as symbols.

    This low-level variant is used by the synthetic dataset generators, which
    produce integer edge symbols directly.  Symbols must be ``>= 2`` (0 and 1
    are reserved for ``#`` and ``$``).
    """
    if not symbol_trajectories:
        raise ConstructionError("cannot build a trajectory string from zero trajectories")
    pieces: list[np.ndarray] = []
    for index, trajectory in enumerate(symbol_trajectories):
        arr = np.asarray(trajectory, dtype=np.int64)
        if arr.size == 0:
            raise ConstructionError(f"trajectory {index} is empty")
        if int(arr.min()) < 2:
            raise ConstructionError("edge symbols must be >= 2 (0/1 are reserved)")
        if sigma is not None and int(arr.max()) >= sigma:
            raise ConstructionError(f"symbol {int(arr.max())} exceeds sigma {sigma}")
        pieces.append(arr[::-1])
        pieces.append(np.asarray([SEP_SYMBOL], dtype=np.int64))
    pieces.append(np.asarray([END_SYMBOL], dtype=np.int64))
    return np.concatenate(pieces)
