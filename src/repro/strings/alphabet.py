"""Alphabet handling for trajectory strings.

The paper indexes sequences of road-segment identifiers plus two special
symbols: ``#`` (end of the whole trajectory string) and ``$`` (trajectory
separator), with the lexicographic order ``# < $ < w`` for every road segment
``w``.  Internally every symbol is a small non-negative integer:

* ``END_SYMBOL``  (= 0) plays the role of ``#``;
* ``SEP_SYMBOL``  (= 1) plays the role of ``$``;
* road segments are mapped to dense integers starting at
  ``FIRST_EDGE_SYMBOL`` (= 2), in an arbitrary but fixed order (the paper
  notes that any ordering of the road segments works).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from ..exceptions import AlphabetError, unknown_segment_message

END_SYMBOL = 0
SEP_SYMBOL = 1
FIRST_EDGE_SYMBOL = 2


class Alphabet:
    """A bidirectional mapping between road-segment IDs and internal symbols.

    Parameters
    ----------
    edge_ids:
        The road-segment identifiers (any hashable values).  Duplicates are
        ignored; insertion order determines the symbol assignment, making
        builds deterministic.

    Examples
    --------
    >>> alpha = Alphabet(["e1", "e2", "e3"])
    >>> alpha.encode("e2")
    3
    >>> alpha.decode(3)
    'e2'
    >>> alpha.sigma
    5
    """

    def __init__(self, edge_ids: Iterable[Hashable] = ()):
        self._edge_to_symbol: dict[Hashable, int] = {}
        self._symbol_to_edge: list[Hashable] = []
        for edge_id in edge_ids:
            self.add(edge_id)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, edge_id: Hashable) -> int:
        """Register ``edge_id`` (if new) and return its symbol."""
        symbol = self._edge_to_symbol.get(edge_id)
        if symbol is None:
            symbol = FIRST_EDGE_SYMBOL + len(self._symbol_to_edge)
            self._edge_to_symbol[edge_id] = symbol
            self._symbol_to_edge.append(edge_id)
        return symbol

    @classmethod
    def from_trajectories(cls, trajectories: Iterable[Sequence[Hashable]]) -> "Alphabet":
        """Build an alphabet containing every edge appearing in ``trajectories``."""
        alphabet = cls()
        for trajectory in trajectories:
            for edge_id in trajectory:
                alphabet.add(edge_id)
        return alphabet

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        """Number of distinct road segments registered."""
        return len(self._symbol_to_edge)

    @property
    def sigma(self) -> int:
        """Total alphabet size including ``#`` and ``$``."""
        return self.n_edges + FIRST_EDGE_SYMBOL

    def encode(self, edge_id: Hashable) -> int:
        """Return the internal symbol for ``edge_id``."""
        try:
            return self._edge_to_symbol[edge_id]
        except KeyError:
            raise AlphabetError(unknown_segment_message(edge_id)) from None

    def decode(self, symbol: int) -> Hashable:
        """Return the road-segment ID for an internal ``symbol``."""
        index = symbol - FIRST_EDGE_SYMBOL
        if not 0 <= index < len(self._symbol_to_edge):
            raise AlphabetError(f"symbol {symbol} does not map to a road segment")
        return self._symbol_to_edge[index]

    def __contains__(self, edge_id: Hashable) -> bool:
        return edge_id in self._edge_to_symbol

    def __len__(self) -> int:
        return self.sigma

    def encode_path(self, path: Sequence[Hashable]) -> list[int]:
        """Encode a sequence of road-segment IDs into internal symbols."""
        return [self.encode(edge_id) for edge_id in path]

    def decode_path(self, symbols: Sequence[int]) -> list[Hashable]:
        """Decode a sequence of internal symbols into road-segment IDs."""
        return [self.decode(symbol) for symbol in symbols]

    def is_edge_symbol(self, symbol: int) -> bool:
        """True when ``symbol`` denotes a road segment (not ``#``/``$``)."""
        return FIRST_EDGE_SYMBOL <= symbol < self.sigma

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Alphabet(n_edges={self.n_edges})"
