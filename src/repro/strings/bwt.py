"""Burrows–Wheeler transform and the ``C[]`` array.

For a text ``T`` of length ``n`` whose last symbol is a unique minimum
(``#`` in the trajectory-string model), the BWT computed from rotations (as in
the paper's Fig. 2) coincides with the suffix-array formulation used here:
``Tbwt[j] = T[(SA[j] - 1) mod n]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConstructionError
from .suffix_array import inverse_suffix_array, suffix_array


@dataclass
class BWTResult:
    """The BWT of a text together with the arrays FM-indexes need.

    Attributes
    ----------
    text:
        The original text (integer symbols).
    bwt:
        The Burrows–Wheeler transform of ``text``.
    suffix_array:
        The suffix array used to compute the BWT.
    counts:
        ``counts[w]`` is the number of occurrences of symbol ``w`` in ``text``.
    c_array:
        ``c_array[w]`` is the number of symbols in ``text`` strictly smaller
        than ``w`` (the classic FM-index ``C[]``); has length ``sigma + 1`` so
        ``c_array[w + 1]`` is always valid.
    """

    text: np.ndarray
    bwt: np.ndarray
    suffix_array: np.ndarray
    counts: np.ndarray
    c_array: np.ndarray

    @property
    def length(self) -> int:
        """Length of the text / BWT."""
        return int(self.text.size)

    @property
    def sigma(self) -> int:
        """Alphabet size (largest symbol + 1)."""
        return int(self.counts.size)

    def suffix_range_of_symbol(self, symbol: int) -> tuple[int, int]:
        """Return the suffix range ``[C[w], C[w+1])`` of a single symbol."""
        return int(self.c_array[symbol]), int(self.c_array[symbol + 1])


def compute_counts(text: np.ndarray, sigma: int | None = None) -> np.ndarray:
    """Return per-symbol occurrence counts of ``text``."""
    if text.size == 0:
        return np.zeros(0 if sigma is None else sigma, dtype=np.int64)
    max_symbol = int(text.max())
    if sigma is None:
        sigma = max_symbol + 1
    elif sigma <= max_symbol:
        raise ConstructionError(f"sigma {sigma} too small for max symbol {max_symbol}")
    return np.bincount(text, minlength=sigma).astype(np.int64)


def compute_c_array(counts: np.ndarray) -> np.ndarray:
    """Return the exclusive prefix sums of ``counts`` (length ``sigma + 1``)."""
    c = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=c[1:])
    return c


def burrows_wheeler_transform(text: Sequence[int] | np.ndarray, sigma: int | None = None) -> BWTResult:
    """Compute the BWT of ``text`` (which must end with a unique minimal symbol).

    Raises
    ------
    ConstructionError
        If ``text`` is empty or its final symbol is not a unique minimum.
    """
    arr = np.asarray(text, dtype=np.int64)
    if arr.size == 0:
        raise ConstructionError("cannot compute the BWT of an empty text")
    last = int(arr[-1])
    if int(arr.min()) != last or int(np.count_nonzero(arr == last)) != 1:
        raise ConstructionError(
            "the text must terminate with a unique, lexicographically smallest symbol"
        )
    sa = suffix_array(arr)
    bwt = arr[(sa - 1) % arr.size]
    counts = compute_counts(arr, sigma)
    c_array = compute_c_array(counts)
    return BWTResult(text=arr, bwt=bwt, suffix_array=sa, counts=counts, c_array=c_array)


def lf_mapping(result: BWTResult) -> np.ndarray:
    """Return the LF-mapping array: ``lf[j]`` is the BWT row of ``T[SA[j]-1:]``."""
    bwt = result.bwt
    n = bwt.size
    lf = np.zeros(n, dtype=np.int64)
    occ = np.zeros(result.sigma, dtype=np.int64)
    for j in range(n):
        symbol = int(bwt[j])
        lf[j] = int(result.c_array[symbol]) + int(occ[symbol])
        occ[symbol] += 1
    return lf


def invert_bwt(result: BWTResult) -> np.ndarray:
    """Reconstruct the original text from its BWT via repeated LF-mapping."""
    n = result.length
    lf = lf_mapping(result)
    out = np.zeros(n, dtype=np.int64)
    # Row 0 of the sorted-rotation matrix starts with the terminal symbol, so
    # the text position preceding the terminator is recovered first; walk
    # backwards filling the output right to left.
    j = 0
    for position in range(n - 1, -1, -1):
        out[position] = result.bwt[j]
        j = int(lf[j])
    # The walk reproduces the text rotated by one (terminator first); rotate back.
    return np.roll(out, -1)


def isa_of_text_position(result: BWTResult, i: int) -> int:
    """Return ``ISA[i]``, the BWT row whose suffix starts at text position ``i``."""
    isa = inverse_suffix_array(result.suffix_array)
    return int(isa[i])
