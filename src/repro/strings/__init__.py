"""Strings substrate: alphabets, trajectory strings, suffix arrays and BWT."""

from .alphabet import END_SYMBOL, FIRST_EDGE_SYMBOL, SEP_SYMBOL, Alphabet
from .bwt import (
    BWTResult,
    burrows_wheeler_transform,
    compute_c_array,
    compute_counts,
    invert_bwt,
    lf_mapping,
)
from .suffix_array import inverse_suffix_array, suffix_array, suffix_array_naive
from .trajectory_string import (
    TrajectoryString,
    build_trajectory_string,
    trajectory_string_from_symbols,
)

__all__ = [
    "Alphabet",
    "END_SYMBOL",
    "SEP_SYMBOL",
    "FIRST_EDGE_SYMBOL",
    "suffix_array",
    "suffix_array_naive",
    "inverse_suffix_array",
    "BWTResult",
    "burrows_wheeler_transform",
    "compute_counts",
    "compute_c_array",
    "lf_mapping",
    "invert_bwt",
    "TrajectoryString",
    "build_trajectory_string",
    "trajectory_string_from_symbols",
]
