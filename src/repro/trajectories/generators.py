"""Synthetic trajectory generators.

These generators produce the workload *analogues* of the paper's datasets
(each function's docstring documents its substitution).  All of them are
deterministic given a seeded :class:`numpy.random.Generator`.

* :func:`straight_biased_walks` — random walks on a road network where the
  successor with the smallest turn angle is strongly preferred, reproducing
  the "vehicles mostly go straight" property that both RML and MEL exploit.
* :func:`shortest_path_trips` — origin/destination trips routed along shortest
  paths (the MO-gen analogue).
* :func:`inject_gaps` — replaces a fraction of transitions with "teleports" to
  non-adjacent segments, reproducing the noisy Singapore dataset.
* :func:`interpolate_gaps` — repairs gapped transitions with shortest paths,
  reproducing the Singapore-2 preprocessing.
* :func:`random_walk_symbols` — uniform random walks on a Poisson random
  graph, producing symbol sequences directly (the RandWalk dataset).
* :func:`sparse_state_walks` — walks on a deep, very sparse synthetic state
  graph (the Chess analogue: d-bar well below 2).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..exceptions import DatasetError, NetworkError
from ..network.road_network import EdgeId, RoadNetwork
from .model import Trajectory


def _pick_weighted(options: Sequence[EdgeId], weights: Sequence[float], rng: np.random.Generator) -> EdgeId:
    total = float(sum(weights))
    probabilities = [w / total for w in weights]
    index = int(rng.choice(len(options), p=probabilities))
    return options[index]


def straight_biased_walks(
    network: RoadNetwork,
    n_trajectories: int,
    min_length: int,
    max_length: int,
    rng: np.random.Generator,
    straight_bias: float = 4.0,
    forbid_u_turns: bool = True,
    start_time: float = 0.0,
    seconds_per_edge: float = 30.0,
) -> list[Trajectory]:
    """Generate NCTs as turn-biased random walks over ``network``.

    At each step the successor segments of the current segment are weighted by
    ``exp(-straight_bias * turn_angle)``, so going straight is much more
    likely than turning — the statistical property that gives real vehicular
    data its low conditional entropy.
    """
    if n_trajectories < 1:
        raise DatasetError("n_trajectories must be positive")
    if not 1 <= min_length <= max_length:
        raise DatasetError("need 1 <= min_length <= max_length")
    all_edges = list(network.edges())
    if not all_edges:
        raise NetworkError("the network has no edges")
    trajectories: list[Trajectory] = []
    clock = start_time
    for trip in range(n_trajectories):
        length = int(rng.integers(min_length, max_length + 1))
        current = all_edges[int(rng.integers(0, len(all_edges)))]
        edges = [current]
        timestamps = [clock]
        for _ in range(length - 1):
            successors = network.successor_edges(current)
            if forbid_u_turns and len(successors) > 1:
                u_turn = (network.segment(current).head, network.segment(current).tail)
                successors = [e for e in successors if e != u_turn] or successors
            if not successors:
                break
            weights = [math.exp(-straight_bias * network.turn_angle(current, nxt)) for nxt in successors]
            current = _pick_weighted(successors, weights, rng)
            edges.append(current)
            clock += seconds_per_edge
            timestamps.append(clock)
        clock += seconds_per_edge * 5
        trajectories.append(Trajectory(edges=edges, timestamps=timestamps, trajectory_id=trip))
    return trajectories


def shortest_path_trips(
    network: RoadNetwork,
    n_trajectories: int,
    rng: np.random.Generator,
    min_hops: int = 4,
    max_attempts_factor: int = 20,
    start_time: float = 0.0,
    seconds_per_edge: float = 30.0,
) -> list[Trajectory]:
    """Generate origin/destination trips routed along shortest paths.

    This is the moving-object-generator analogue (MO-gen): vehicles pick a
    random origin and destination intersection and follow the shortest route.
    """
    if n_trajectories < 1:
        raise DatasetError("n_trajectories must be positive")
    nodes = list(network.nodes())
    if len(nodes) < 2:
        raise NetworkError("the network needs at least two nodes")
    trajectories: list[Trajectory] = []
    clock = start_time
    attempts = 0
    max_attempts = n_trajectories * max_attempts_factor
    while len(trajectories) < n_trajectories and attempts < max_attempts:
        attempts += 1
        source, target = (nodes[int(i)] for i in rng.choice(len(nodes), size=2, replace=False))
        try:
            edges = network.shortest_path_edges(source, target)
        except NetworkError:
            continue
        if len(edges) < min_hops:
            continue
        timestamps = [clock + k * seconds_per_edge for k in range(len(edges))]
        clock = timestamps[-1] + seconds_per_edge * 5
        trajectories.append(Trajectory(edges=edges, timestamps=timestamps, trajectory_id=len(trajectories)))
    if len(trajectories) < n_trajectories:
        raise DatasetError(
            f"could only generate {len(trajectories)} of {n_trajectories} trips; "
            "the network may be too small or poorly connected"
        )
    return trajectories


def inject_gaps(
    trajectories: Sequence[Trajectory],
    network: RoadNetwork,
    gap_probability: float,
    rng: np.random.Generator,
    n_gap_partners: int | None = 8,
) -> list[Trajectory]:
    """Replace a fraction of transitions with jumps to non-adjacent segments.

    Models the raw Singapore dataset, where GPS outages make consecutive
    reported segments physically disconnected; the resulting ET-graph is much
    denser (high d-bar), which is exactly the regime where CiNCT's advantage
    shrinks (Table III: d-bar 26.8 for Singapore vs 4.0 for Singapore-2).

    Parameters
    ----------
    n_gap_partners:
        Real GPS outages re-acquire on a limited set of segments (the same
        dropout spots recur trip after trip), so by default each segment jumps
        to one of ``n_gap_partners`` fixed partner segments drawn once per
        dataset.  Pass ``None`` for fully uniform teleports.
    """
    if not 0.0 <= gap_probability <= 1.0:
        raise DatasetError("gap_probability must lie in [0, 1]")
    if n_gap_partners is not None and n_gap_partners < 1:
        raise DatasetError("n_gap_partners must be positive (or None)")
    all_edges = list(network.edges())
    partner_table: dict[EdgeId, list[EdgeId]] = {}

    def gap_target(source: EdgeId) -> EdgeId:
        if n_gap_partners is None:
            return all_edges[int(rng.integers(0, len(all_edges)))]
        partners = partner_table.get(source)
        if partners is None:
            chosen = rng.choice(len(all_edges), size=min(n_gap_partners, len(all_edges)), replace=False)
            partners = [all_edges[int(i)] for i in chosen]
            partner_table[source] = partners
        return partners[int(rng.integers(0, len(partners)))]

    gapped: list[Trajectory] = []
    for trajectory in trajectories:
        edges = list(trajectory.edges)
        for position in range(1, len(edges)):
            if rng.random() < gap_probability:
                edges[position] = gap_target(edges[position - 1])
        gapped.append(
            Trajectory(
                edges=edges,
                timestamps=list(trajectory.timestamps) if trajectory.timestamps else None,
                trajectory_id=trajectory.trajectory_id,
            )
        )
    return gapped


def interpolate_gaps(
    trajectories: Sequence[Trajectory],
    network: RoadNetwork,
) -> list[Trajectory]:
    """Repair disconnected transitions with shortest paths (Singapore-2).

    Every transition whose segments are not physically connected is replaced
    by the shortest path between them; unreachable gaps fall back to keeping
    the raw transition (mirroring how a practical pipeline would handle them).
    Timestamps of interpolated segments are linearly filled in.
    """
    repaired: list[Trajectory] = []
    for trajectory in trajectories:
        edges: list[EdgeId] = [trajectory.edges[0]]
        times: list[float] | None = (
            [trajectory.timestamps[0]] if trajectory.timestamps is not None else None
        )
        for position in range(1, len(trajectory.edges)):
            previous = edges[-1]
            current = trajectory.edges[position]
            current_time = trajectory.timestamps[position] if trajectory.timestamps else None
            if network.segment(previous).head == network.segment(current).tail:
                filler: list[EdgeId] = []
            else:
                try:
                    filler = network.shortest_path_between_edges(previous, current)
                except NetworkError:
                    filler = []
            inserted = filler + [current]
            edges.extend(inserted)
            if times is not None and current_time is not None:
                previous_time = times[-1]
                step = (current_time - previous_time) / len(inserted)
                times.extend(previous_time + step * (k + 1) for k in range(len(inserted)))
        repaired.append(Trajectory(edges=edges, timestamps=times, trajectory_id=trajectory.trajectory_id))
    return repaired


def random_walk_symbols(
    sigma: int,
    average_out_degree: float,
    total_symbols: int,
    rng: np.random.Generator,
    walk_length: int = 100,
) -> list[list[int]]:
    """Uniform random walks on a directed Poisson graph, as symbol sequences.

    This is the RandWalk dataset of Section VI-E: the alphabet has ``sigma``
    road segments (symbols 2 .. sigma+1), each with ``max(1, Poisson(d))``
    successors, and walks of ``walk_length`` steps are generated until
    ``total_symbols`` symbols have been produced.
    """
    if sigma < 2:
        raise DatasetError("sigma must be at least 2")
    if average_out_degree <= 0:
        raise DatasetError("average_out_degree must be positive")
    if total_symbols < walk_length:
        raise DatasetError("total_symbols must be at least walk_length")
    successors: list[np.ndarray] = []
    for state in range(sigma):
        degree = max(1, int(rng.poisson(average_out_degree)))
        degree = min(degree, sigma - 1)
        choices = rng.choice(sigma - 1, size=degree, replace=False)
        choices = np.where(choices >= state, choices + 1, choices)
        successors.append(choices.astype(np.int64))

    walks: list[list[int]] = []
    produced = 0
    while produced < total_symbols:
        state = int(rng.integers(0, sigma))
        walk = [state + 2]
        for _ in range(walk_length - 1):
            nxt = successors[state]
            state = int(nxt[int(rng.integers(0, nxt.size))])
            walk.append(state + 2)
        walks.append(walk)
        produced += len(walk)
    return walks


def sparse_state_walks(
    n_states: int,
    n_walks: int,
    walk_length: int,
    rng: np.random.Generator,
    branching_probability: float = 0.35,
    max_branches: int = 3,
) -> list[list[int]]:
    """Walks on a very sparse synthetic state graph (the Chess analogue).

    Each state has one "main line" successor and, with probability
    ``branching_probability``, up to ``max_branches - 1`` extra successors;
    walks overwhelmingly follow the main line.  The resulting ET-graph has an
    average out-degree well below 2, matching the Chess dataset's d-bar of 1.6.
    """
    if n_states < 4:
        raise DatasetError("n_states must be at least 4")
    successors: list[list[int]] = []
    for state in range(n_states):
        main = (state + 1) % n_states
        options = [main]
        if rng.random() < branching_probability:
            extra = int(rng.integers(1, max_branches))
            for _ in range(extra):
                options.append(int(rng.integers(0, n_states)))
        successors.append(options)
    walks: list[list[int]] = []
    for _ in range(n_walks):
        state = int(rng.integers(0, n_states))
        walk = [state + 2]
        for _ in range(walk_length - 1):
            options = successors[state]
            if len(options) == 1 or rng.random() < 0.85:
                state = options[0]
            else:
                state = options[int(rng.integers(1, len(options)))]
            walk.append(state + 2)
        walks.append(walk)
    return walks
