"""GPS trace simulation.

The Roma dataset of the paper is produced by HMM map matching of raw GPS
points onto the road network.  To exercise that entire pipeline we simulate
noisy GPS observations along generated trips; the map matcher in
:mod:`repro.mapmatching` then recovers NCTs from them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError
from ..network.road_network import RoadNetwork
from .model import Trajectory


@dataclass(frozen=True)
class GPSPoint:
    """One GPS observation: planar coordinates plus a timestamp."""

    x: float
    y: float
    timestamp: float


@dataclass
class GPSTrace:
    """A sequence of GPS observations emitted by one vehicle."""

    points: list[GPSPoint]
    source_trajectory_id: int | None = None

    def __len__(self) -> int:
        return len(self.points)


def simulate_gps_trace(
    network: RoadNetwork,
    trajectory: Trajectory,
    rng: np.random.Generator,
    noise_std: float = 10.0,
    points_per_edge: int = 2,
    seconds_per_edge: float = 30.0,
) -> GPSTrace:
    """Emit noisy GPS points along a trajectory.

    Points are sampled at evenly spaced fractions of every segment and
    perturbed with isotropic Gaussian noise of standard deviation
    ``noise_std`` (in the same units as the node coordinates).
    """
    if points_per_edge < 1:
        raise DatasetError("points_per_edge must be at least 1")
    points: list[GPSPoint] = []
    clock = trajectory.timestamps[0] if trajectory.timestamps else 0.0
    for edge_id in trajectory.edges:
        segment = network.segment(edge_id)
        ax, ay = network.coordinate(segment.tail)
        bx, by = network.coordinate(segment.head)
        for k in range(points_per_edge):
            fraction = (k + 0.5) / points_per_edge
            x = ax + fraction * (bx - ax) + float(rng.normal(0.0, noise_std))
            y = ay + fraction * (by - ay) + float(rng.normal(0.0, noise_std))
            points.append(GPSPoint(x=x, y=y, timestamp=clock))
            clock += seconds_per_edge / points_per_edge
    return GPSTrace(points=points, source_trajectory_id=trajectory.trajectory_id)
