"""Trajectory substrate: data model, synthetic generators and GPS simulation."""

from .generators import (
    inject_gaps,
    interpolate_gaps,
    random_walk_symbols,
    shortest_path_trips,
    sparse_state_walks,
    straight_biased_walks,
)
from .gps import GPSPoint, GPSTrace, simulate_gps_trace
from .model import Trajectory, TrajectoryDataset, symbol_trajectories

__all__ = [
    "Trajectory",
    "TrajectoryDataset",
    "symbol_trajectories",
    "straight_biased_walks",
    "shortest_path_trips",
    "inject_gaps",
    "interpolate_gaps",
    "random_walk_symbols",
    "sparse_state_walks",
    "GPSPoint",
    "GPSTrace",
    "simulate_gps_trace",
]
