"""Trajectory data model.

A network-constrained trajectory (Definition 1) is a sequence of physically
connected road segments, optionally annotated with per-segment timestamps.
:class:`TrajectoryDataset` groups trajectories with the network they live on
and converts them into the trajectory-string representation consumed by the
indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..exceptions import DatasetError
from ..network.road_network import EdgeId, RoadNetwork
from ..strings.alphabet import Alphabet
from ..strings.trajectory_string import TrajectoryString, build_trajectory_string


@dataclass
class Trajectory:
    """One NCT: road segments in travel order, with optional timestamps."""

    edges: list[EdgeId]
    timestamps: list[float] | None = None
    trajectory_id: int | None = None

    def __post_init__(self) -> None:
        if not self.edges:
            raise DatasetError("a trajectory must contain at least one road segment")
        if self.timestamps is not None and len(self.timestamps) != len(self.edges):
            raise DatasetError(
                "timestamps must align with edges "
                f"({len(self.timestamps)} timestamps for {len(self.edges)} edges)"
            )

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[EdgeId]:
        return iter(self.edges)

    def is_connected(self, network: RoadNetwork) -> bool:
        """True when consecutive segments are physically connected on ``network``."""
        return network.validate_trajectory(self.edges)

    def time_interval(self) -> tuple[float, float] | None:
        """Overall ``(start, end)`` time span, or ``None`` without timestamps."""
        if self.timestamps is None:
            return None
        return (self.timestamps[0], self.timestamps[-1])


@dataclass
class TrajectoryDataset:
    """A named collection of trajectories, optionally tied to a road network."""

    name: str
    trajectories: list[Trajectory]
    network: RoadNetwork | None = None
    description: str = ""
    _alphabet: Alphabet | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.trajectories:
            raise DatasetError(f"dataset {self.name!r} contains no trajectories")
        for index, trajectory in enumerate(self.trajectories):
            if trajectory.trajectory_id is None:
                trajectory.trajectory_id = index

    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.trajectories)

    @property
    def total_edges(self) -> int:
        """Total number of road-segment observations across all trajectories."""
        return sum(len(t) for t in self.trajectories)

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet over every segment appearing in the dataset."""
        if self._alphabet is None:
            self._alphabet = Alphabet.from_trajectories(t.edges for t in self.trajectories)
        return self._alphabet

    def distinct_edges(self) -> int:
        """Number of distinct road segments observed."""
        return self.alphabet.n_edges

    def to_trajectory_string(self) -> TrajectoryString:
        """Concatenate the dataset into the trajectory string of Definition 2."""
        return build_trajectory_string([t.edges for t in self.trajectories], alphabet=self.alphabet)

    def connected_fraction(self) -> float:
        """Fraction of transitions that are physically connected on the network.

        The Singapore dataset of the paper contains many transitions without a
        physical connection ("gaps"); this statistic quantifies that property
        for synthetic analogues.  Returns 1.0 when no network is attached.
        """
        if self.network is None:
            return 1.0
        connected = 0
        total = 0
        for trajectory in self.trajectories:
            for first, second in zip(trajectory.edges, trajectory.edges[1:]):
                total += 1
                if self.network.segment(first).head == self.network.segment(second).tail:
                    connected += 1
        return connected / total if total else 1.0

    def subset(self, n: int, name: str | None = None) -> "TrajectoryDataset":
        """Return a dataset containing only the first ``n`` trajectories."""
        if n < 1:
            raise DatasetError("subset size must be at least 1")
        return TrajectoryDataset(
            name=name or f"{self.name}-subset{n}",
            trajectories=self.trajectories[:n],
            network=self.network,
            description=self.description,
        )


def symbol_trajectories(dataset: TrajectoryDataset) -> list[list[int]]:
    """Encode every trajectory of ``dataset`` into internal symbols."""
    alphabet = dataset.alphabet
    return [alphabet.encode_path(t.edges) for t in dataset.trajectories]
