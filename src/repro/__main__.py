"""``python -m repro`` — the ``repro-cinct`` command-line interface.

Equivalent to ``python -m repro.cli`` and the installed console script; see
:mod:`repro.cli` for the sub-commands.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
