"""CiNCT reproduction: compressed indexing and retrieval for NCT trajectories.

This package reimplements, in pure Python, the system described in

    Koide, Tadokoro, Xiao, Ishikawa.
    "CiNCT: Compression and retrieval for massive vehicular trajectories via
    relative movement labeling", ICDE 2018.

The public API is re-exported here; the repository's top-level ``README.md``
has a quickstart and the full backend inventory.

The recommended entry point is the engine facade, which speaks raw edge
sequences and works identically for every registered index backend::

    from repro.engine import TrajectoryEngine, EngineConfig

    trajectories = [["e1", "e2", "e3"], ["e2", "e3", "e4"]]
    engine = TrajectoryEngine.build(trajectories, EngineConfig(backend="cinct"))
    engine.count(["e2", "e3"])  # -> 2
    engine.save("my-index")     # reload with TrajectoryEngine.load("my-index")

The per-structure entry points (:meth:`CiNCT.from_trajectories`,
:func:`build_baseline`, :class:`StrictPathIndex`, ...) remain available for
code that needs a specific structure directly::

    from repro import CiNCT

    index, trajectory_string = CiNCT.from_trajectories(trajectories)
    pattern = trajectory_string.encode_pattern(["e2", "e3"])
    index.count(pattern)        # -> 2
"""

from .engine import (
    EngineConfig,
    TrajectoryEngine,
    available_backends,
    register_backend,
)
from .core import (
    CiNCT,
    ConstructionBreakdown,
    CorrectionTerms,
    ETGraph,
    Partition,
    PartitionedCiNCT,
    RMLFunction,
    build_rml,
    compute_correction_terms,
    label_bwt,
    labelled_entropy,
    pseudo_rank,
)
from .exceptions import (
    AlphabetError,
    ConstructionError,
    DatasetError,
    DeadlineExceededError,
    IndexCorruptionError,
    NetworkError,
    QueryError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    ShardExecutionError,
)
from .fmindex import (
    AlphabetPartitionedFMIndex,
    FixedBlockFMIndex,
    FMIndexBase,
    GMRFMIndex,
    ICBHuffmanFMIndex,
    ICBWaveletMatrixFMIndex,
    LinearScanIndex,
    UncompressedFMIndex,
    available_baselines,
    build_baseline,
)
from .io import (
    load_cinct,
    load_dataset_csv,
    load_dataset_jsonl,
    load_index,
    save_cinct,
    save_dataset_csv,
    save_dataset_jsonl,
    save_index,
)
from .network import RoadNetwork, grid_network, poisson_out_degree_graph
from .queries import (
    BoundedErrorTimestampCodec,
    CompressedTimestampStore,
    DeltaTimestampCodec,
    StrictPathIndex,
    StrictPathMatch,
    TemporalIndex,
)
from .strings import (
    Alphabet,
    BWTResult,
    TrajectoryString,
    build_trajectory_string,
    burrows_wheeler_transform,
    suffix_array,
)
from .temporal import TimestampStore
from .trajectories import Trajectory, TrajectoryDataset

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engine facade
    "TrajectoryEngine",
    "EngineConfig",
    "available_backends",
    "register_backend",
    # core
    "CiNCT",
    "ConstructionBreakdown",
    "PartitionedCiNCT",
    "Partition",
    "ETGraph",
    "RMLFunction",
    "build_rml",
    "label_bwt",
    "labelled_entropy",
    "CorrectionTerms",
    "compute_correction_terms",
    "pseudo_rank",
    # strings
    "Alphabet",
    "TrajectoryString",
    "build_trajectory_string",
    "BWTResult",
    "burrows_wheeler_transform",
    "suffix_array",
    # fm-index baselines
    "FMIndexBase",
    "UncompressedFMIndex",
    "ICBWaveletMatrixFMIndex",
    "ICBHuffmanFMIndex",
    "GMRFMIndex",
    "AlphabetPartitionedFMIndex",
    "FixedBlockFMIndex",
    "LinearScanIndex",
    "build_baseline",
    "available_baselines",
    # persistence
    "save_index",
    "load_index",
    "save_cinct",
    "load_cinct",
    "save_dataset_jsonl",
    "load_dataset_jsonl",
    "save_dataset_csv",
    "load_dataset_csv",
    # network & trajectories
    "RoadNetwork",
    "grid_network",
    "poisson_out_degree_graph",
    "Trajectory",
    "TrajectoryDataset",
    # queries
    "StrictPathIndex",
    "StrictPathMatch",
    "TemporalIndex",
    "DeltaTimestampCodec",
    "BoundedErrorTimestampCodec",
    "CompressedTimestampStore",
    "TimestampStore",
    # exceptions
    "ReproError",
    "ConstructionError",
    "QueryError",
    "AlphabetError",
    "DatasetError",
    "NetworkError",
    "IndexCorruptionError",
    "ShardExecutionError",
    "ServiceError",
    "ServiceOverloadError",
    "DeadlineExceededError",
]
