"""CiNCT reproduction: compressed indexing and retrieval for NCT trajectories.

This package reimplements, in pure Python, the system described in

    Koide, Tadokoro, Xiao, Ishikawa.
    "CiNCT: Compression and retrieval for massive vehicular trajectories via
    relative movement labeling", ICDE 2018.

The public API is re-exported here; see README.md for a quickstart and
DESIGN.md for the full system inventory.

Typical usage::

    from repro import CiNCT

    trajectories = [["e1", "e2", "e3"], ["e2", "e3", "e4"]]
    index, trajectory_string = CiNCT.from_trajectories(trajectories)
    pattern = trajectory_string.encode_pattern(["e2", "e3"])
    index.count(pattern)        # -> 2
"""

from .core import (
    CiNCT,
    ConstructionBreakdown,
    CorrectionTerms,
    ETGraph,
    Partition,
    PartitionedCiNCT,
    RMLFunction,
    build_rml,
    compute_correction_terms,
    label_bwt,
    labelled_entropy,
    pseudo_rank,
)
from .exceptions import (
    AlphabetError,
    ConstructionError,
    DatasetError,
    NetworkError,
    QueryError,
    ReproError,
)
from .fmindex import (
    AlphabetPartitionedFMIndex,
    FixedBlockFMIndex,
    FMIndexBase,
    GMRFMIndex,
    ICBHuffmanFMIndex,
    ICBWaveletMatrixFMIndex,
    LinearScanIndex,
    UncompressedFMIndex,
    available_baselines,
    build_baseline,
)
from .io import (
    load_cinct,
    load_dataset_csv,
    load_dataset_jsonl,
    save_cinct,
    save_dataset_csv,
    save_dataset_jsonl,
)
from .network import RoadNetwork, grid_network, poisson_out_degree_graph
from .queries import (
    BoundedErrorTimestampCodec,
    CompressedTimestampStore,
    DeltaTimestampCodec,
    StrictPathIndex,
    StrictPathMatch,
    TemporalIndex,
)
from .strings import (
    Alphabet,
    BWTResult,
    TrajectoryString,
    build_trajectory_string,
    burrows_wheeler_transform,
    suffix_array,
)
from .trajectories import Trajectory, TrajectoryDataset

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CiNCT",
    "ConstructionBreakdown",
    "PartitionedCiNCT",
    "Partition",
    "ETGraph",
    "RMLFunction",
    "build_rml",
    "label_bwt",
    "labelled_entropy",
    "CorrectionTerms",
    "compute_correction_terms",
    "pseudo_rank",
    # strings
    "Alphabet",
    "TrajectoryString",
    "build_trajectory_string",
    "BWTResult",
    "burrows_wheeler_transform",
    "suffix_array",
    # fm-index baselines
    "FMIndexBase",
    "UncompressedFMIndex",
    "ICBWaveletMatrixFMIndex",
    "ICBHuffmanFMIndex",
    "GMRFMIndex",
    "AlphabetPartitionedFMIndex",
    "FixedBlockFMIndex",
    "LinearScanIndex",
    "build_baseline",
    "available_baselines",
    # persistence
    "save_cinct",
    "load_cinct",
    "save_dataset_jsonl",
    "load_dataset_jsonl",
    "save_dataset_csv",
    "load_dataset_csv",
    # network & trajectories
    "RoadNetwork",
    "grid_network",
    "poisson_out_degree_graph",
    "Trajectory",
    "TrajectoryDataset",
    # queries
    "StrictPathIndex",
    "StrictPathMatch",
    "TemporalIndex",
    "DeltaTimestampCodec",
    "BoundedErrorTimestampCodec",
    "CompressedTimestampStore",
    # exceptions
    "ReproError",
    "ConstructionError",
    "QueryError",
    "AlphabetError",
    "DatasetError",
    "NetworkError",
]
