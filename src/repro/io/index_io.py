"""Persistence of BWT artefacts, CiNCT indexes, and whole engines.

Building a CiNCT index has one super-linear step — suffix-array construction —
followed by a chain of strictly linear steps (ET-graph, RML, labelling,
wavelet-tree packing; Section VI-G of the paper).  The persistence layer
therefore stores

* the BWT artefacts (text, BWT, suffix array, counts, ``C[]``) as a compressed
  ``.npz`` archive, and
* the index parameters plus the alphabet as a JSON sidecar,

and reloading rebuilds the succinct structures in linear time from those
arrays, never re-sorting suffixes.  This mirrors how the reference C++
implementation persists the ``sdsl`` structures while remaining a plain,
inspection-friendly on-disk format.

Two generations of index persistence live here:

* :func:`save_index` / :func:`load_index` — the universal layer: they
  round-trip a whole :class:`~repro.engine.TrajectoryEngine` for *any*
  registered backend by dispatching through the backend registry
  (``engine.json`` + a compressed ``timestamps.npz`` written by the
  :class:`~repro.temporal.TimestampStore` + backend-specific archives);
* :func:`save_cinct` / :func:`load_cinct` — the original CiNCT-only format
  (``index.json`` + ``bwt.npz``), kept as a compatibility shim for existing
  callers and previously saved directories.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Hashable

import numpy as np

from ..core.cinct import CiNCT
from ..exceptions import (
    ConstructionError,
    DatasetError,
    IndexCorruptionError,
    ReproError,
)
from ..reliability import faults
from ..strings.alphabet import Alphabet
from ..strings.bwt import BWTResult
from ..strings.trajectory_string import TrajectoryString
from .npzutil import ensure_npz_suffix, load_npz_arrays

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine.engine import TrajectoryEngine
    from ..engine.sharding import ShardedTrajectoryEngine

_FORMAT_VERSION = 1
#: version 1 embedded raw timestamp lists in ``engine.json``; version 2 moved
#: them to a compressed ``timestamps.npz`` artefact; version 3 adds the
#: engine's growth ``epoch`` (the result-cache invalidation counter bumped by
#: ``add_batch``/``consolidate``); version 4 adds the sharded fleet layout —
#: a top-level shard manifest (``"shards"`` key) whose entries name per-shard
#: subdirectories, each holding an ordinary single-engine document; version 5
#: adds crash safety and integrity: saves stage into a ``.tmp-<pid>`` sibling
#: directory promoted wholesale via rename, and ``engine.json`` carries a
#: ``"manifest"`` of per-artefact SHA-256 checksums and byte sizes that
#: :func:`load_index` verifies, raising
#: :class:`~repro.exceptions.IndexCorruptionError` naming any torn artefact.
#: All five versions load; v1–v4 documents load without checksum
#: verification and come back at their recorded (or zero) epoch.
_ENGINE_FORMAT_VERSION = 5
_SUPPORTED_ENGINE_VERSIONS = frozenset({1, 2, 3, 4, 5})
_TIMESTAMP_ARCHIVE = "timestamps.npz"
_ENGINE_DOCUMENT = "engine.json"

#: Exceptions a torn/truncated ``.npz`` (or json) artefact can raise when
#: parsed; the persistence layer normalizes every one of them into
#: :class:`IndexCorruptionError` naming the artefact.
_ARTEFACT_PARSE_ERRORS = (
    zipfile.BadZipFile,
    OSError,
    EOFError,
    KeyError,
    ValueError,
)


# --------------------------------------------------------------------------- #
# BWT artefacts
# --------------------------------------------------------------------------- #
def save_bwt_result(bwt_result: BWTResult, path: str | Path) -> Path:
    """Save the arrays of a :class:`BWTResult` as an ``.npz`` archive.

    The archive is written **uncompressed** (``ZIP_STORED`` members), so
    :func:`load_bwt_result` can memory-map the array payloads straight out
    of the file (``mmap_mode="r"``) instead of decompressing and copying
    them — the layout behind ``load_index(..., mmap=True)``.  Integer
    trajectory symbols compress poorly anyway, and the save-time manifest
    checksums the file bytes either way.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(
        path,
        format_version=np.asarray([_FORMAT_VERSION], dtype=np.int64),
        text=bwt_result.text,
        bwt=bwt_result.bwt,
        suffix_array=bwt_result.suffix_array,
        counts=bwt_result.counts,
        c_array=bwt_result.c_array,
    )
    return ensure_npz_suffix(path)


def _as_int64(array: np.ndarray) -> np.ndarray:
    """int64 view of a loaded archive member, copying only on dtype mismatch.

    Memory-mapped members must pass through untouched (an ``astype`` copy
    would silently materialise the window and drop page sharing); archives
    written on a platform with a different default integer width still get
    the converting copy.
    """
    if array.dtype == np.int64:
        return array
    return array.astype(np.int64)


def load_bwt_result(path: str | Path, mmap_mode: str | None = None) -> BWTResult:
    """Load a :class:`BWTResult` previously written by :func:`save_bwt_result`.

    With ``mmap_mode="r"`` the arrays come back as read-only ``np.memmap``
    windows into the archive (for uncompressed members; compressed legacy
    archives fall back to a full parse), so reloading costs header parsing
    and the index pages are shared across processes mapping the same file.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"BWT archive not found: {path}")
    try:
        archive = load_npz_arrays(path, mmap_mode=mmap_mode)
        version = int(archive["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ConstructionError(
                f"unsupported BWT archive version {version} (expected {_FORMAT_VERSION})"
            )
        return BWTResult(
            text=_as_int64(archive["text"]),
            bwt=_as_int64(archive["bwt"]),
            suffix_array=_as_int64(archive["suffix_array"]),
            counts=_as_int64(archive["counts"]),
            c_array=_as_int64(archive["c_array"]),
        )
    except _ARTEFACT_PARSE_ERRORS as error:
        # A torn/truncated archive surfaces as BadZipFile / KeyError /
        # ValueError depending on where the bytes were cut; normalize all of
        # them into the one canonical corruption error naming the artefact.
        raise IndexCorruptionError(
            f"index artefact {path.name!r} is corrupt or truncated "
            f"({type(error).__name__}: {error}) at {path}"
        ) from error


# --------------------------------------------------------------------------- #
# CiNCT indexes
# --------------------------------------------------------------------------- #
@dataclass
class SavedIndex:
    """A reloaded CiNCT index together with its query-encoding alphabet."""

    index: CiNCT
    alphabet: Alphabet | None

    def encode_pattern(self, path: list[Hashable]) -> list[int]:
        """Encode a query path using the persisted alphabet."""
        if self.alphabet is None:
            raise ConstructionError("this index was saved without an alphabet")
        return self.alphabet.encode_path(path)


def _edge_to_json(edge: Hashable) -> object:
    if isinstance(edge, tuple):
        return [_edge_to_json(item) for item in edge]
    return edge


def _edge_from_json(value: object) -> Hashable:
    if isinstance(value, list):
        return tuple(_edge_from_json(item) for item in value)
    return value  # type: ignore[return-value]


def _alphabet_to_json(alphabet: Alphabet) -> list[object]:
    return [_edge_to_json(alphabet.decode(symbol)) for symbol in range(2, alphabet.sigma)]


def _alphabet_from_json(edges: list[object]) -> Alphabet:
    return Alphabet(_edge_from_json(edge) for edge in edges)


def save_cinct(
    index: CiNCT,
    bwt_result: BWTResult,
    directory: str | Path,
    trajectory_string: TrajectoryString | None = None,
) -> Path:
    """Persist a CiNCT index (BWT artefacts + parameters + optional alphabet).

    .. deprecated::
        This is the original CiNCT-only format, kept as a compatibility shim.
        New code should persist through :meth:`repro.engine.TrajectoryEngine.save`
        (:func:`save_index`), which handles every registered backend.

    Parameters
    ----------
    index:
        The built index (provides the construction parameters to persist).
    bwt_result:
        The BWT artefacts the index was built from.
    directory:
        Target directory; created if missing.  Two files are written:
        ``bwt.npz`` and ``index.json``.
    trajectory_string:
        When given, its alphabet is persisted too so reloaded indexes can
        encode query paths expressed as original road-segment IDs.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_bwt_result(bwt_result, directory / "bwt.npz")
    metadata: dict[str, object] = {
        "format_version": _FORMAT_VERSION,
        "block_size": index.block_size,
        "labeling_strategy": index.labeling_strategy,
        "bitvector_backend": index.bitvector_backend,
        "sa_sample_rate": index._sa_sample_rate,
        "length": index.length,
        "sigma": index.sigma,
    }
    if trajectory_string is not None:
        metadata["alphabet"] = _alphabet_to_json(trajectory_string.alphabet)
    with (directory / "index.json").open("w", encoding="utf-8") as handle:
        json.dump(metadata, handle, indent=2)
    return directory


def load_cinct(directory: str | Path) -> SavedIndex:
    """Reload a CiNCT index persisted by :func:`save_cinct`.

    The succinct structures are rebuilt in linear time from the stored BWT;
    the suffix array is *not* recomputed.
    """
    directory = Path(directory)
    metadata_path = directory / "index.json"
    if not metadata_path.exists():
        raise DatasetError(f"index metadata not found: {metadata_path}")
    with metadata_path.open("r", encoding="utf-8") as handle:
        metadata = json.load(handle)
    version = int(metadata.get("format_version", -1))
    if version != _FORMAT_VERSION:
        raise ConstructionError(
            f"unsupported index format version {version} (expected {_FORMAT_VERSION})"
        )
    bwt_result = load_bwt_result(directory / "bwt.npz")
    if bwt_result.length != int(metadata["length"]) or bwt_result.sigma != int(metadata["sigma"]):
        raise ConstructionError(
            "index metadata does not match the stored BWT "
            f"(length {metadata['length']} vs {bwt_result.length}, "
            f"sigma {metadata['sigma']} vs {bwt_result.sigma})"
        )
    index = CiNCT(
        bwt_result,
        block_size=int(metadata["block_size"]),
        labeling_strategy=metadata["labeling_strategy"],
        bitvector_backend=metadata["bitvector_backend"],
        sa_sample_rate=metadata["sa_sample_rate"],
    )
    alphabet = None
    if "alphabet" in metadata:
        alphabet = _alphabet_from_json(metadata["alphabet"])
    return SavedIndex(index=index, alphabet=alphabet)


# --------------------------------------------------------------------------- #
# universal engine persistence (registry-dispatched, crash-safe)
# --------------------------------------------------------------------------- #
def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _manifest_of(directory: Path, files: list[Path]) -> dict[str, dict[str, object]]:
    """Per-artefact integrity records, keyed by path relative to the index."""
    manifest: dict[str, dict[str, object]] = {}
    for path in sorted(files):
        manifest[path.relative_to(directory).as_posix()] = {
            "sha256": _sha256_of(path),
            "bytes": path.stat().st_size,
        }
    return manifest


def _verify_manifest(directory: Path, manifest: dict) -> None:
    """Check every manifest entry; raise naming the first torn artefact."""
    for name, entry in manifest.items():
        path = directory / name
        if not path.exists():
            raise IndexCorruptionError(
                f"index artefact {name!r} is missing from {directory}"
            )
        expected_bytes = int(entry["bytes"])
        actual_bytes = path.stat().st_size
        if actual_bytes != expected_bytes:
            raise IndexCorruptionError(
                f"index artefact {name!r} is truncated or padded "
                f"(expected {expected_bytes} bytes, found {actual_bytes}) "
                f"at {directory}"
            )
        if _sha256_of(path) != str(entry["sha256"]):
            raise IndexCorruptionError(
                f"index artefact {name!r} failed SHA-256 verification "
                f"at {directory}"
            )


def save_index(
    engine: "TrajectoryEngine | ShardedTrajectoryEngine", directory: str | Path
) -> Path:
    """Persist a :class:`~repro.engine.TrajectoryEngine` of *any* backend.

    The engine-level state (config, backend name, alphabet) lands in
    ``engine.json``; per-trajectory timestamps go to a compressed
    ``timestamps.npz`` written by the
    :class:`~repro.temporal.TimestampStore` (never as raw JSON arrays); the
    backend writes its own archives via
    :meth:`~repro.engine.backends.EngineBackend.save_state` and returns the
    metadata needed to reload them.  :func:`load_index` dispatches back
    through the registry, so any backend registered with
    :func:`repro.engine.register_backend` round-trips without touching this
    module.

    Saves are **crash-safe**: everything is written into a
    ``<name>.tmp-<pid>`` sibling directory first and promoted into place by
    directory rename only once complete, so a crash at any artefact-write
    boundary leaves a previously saved index bit-identically loadable.  The
    promote replaces the target directory *wholesale* — artefacts from an
    earlier save with a different layout (more shards, more partitions)
    cannot linger.  ``engine.json`` carries a ``"manifest"`` of per-artefact
    SHA-256 checksums and byte sizes (format v5) that :func:`load_index`
    verifies.

    A :class:`~repro.engine.sharding.ShardedTrajectoryEngine` persists as a
    top-level shard manifest (``engine.json`` with a ``"shards"`` list and
    the global alphabet) plus one ``shard_NN`` subdirectory per populated
    shard, each itself a loadable single-engine index; the fleet manifest
    checksums each shard's ``engine.json``, whose own manifest covers that
    shard's artefacts.
    """
    directory = Path(directory)
    if not directory.name:  # e.g. Path(".") — rename needs a real leaf name
        directory = directory.resolve()
    directory.parent.mkdir(parents=True, exist_ok=True)
    staging = directory.parent / f"{directory.name}.tmp-{os.getpid()}"
    if staging.exists():  # a stale staging dir from a crashed previous save
        shutil.rmtree(staging)
    try:
        _write_index(engine, staging)
        _promote(staging, directory)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return directory


def _promote(staging: Path, directory: Path) -> None:
    """Atomically swap the fully written staging directory into place.

    ``os.replace`` cannot overwrite a non-empty directory, so an existing
    index is renamed aside first and removed after the swap; every artefact
    write happened inside ``staging``, so no crash point here can tear the
    index itself (the narrow rename-aside window can at worst leave the new
    index under the retired name, never a half-written mixture).
    """
    if directory.exists():
        retired = directory.parent / f"{directory.name}.tmp-{os.getpid()}-old"
        if retired.exists():
            shutil.rmtree(retired)
        os.rename(directory, retired)
        os.rename(staging, directory)
        shutil.rmtree(retired)
    else:
        os.rename(staging, directory)


def _write_index(
    engine: "TrajectoryEngine | ShardedTrajectoryEngine",
    directory: Path,
    stage_prefix: str = "",
) -> None:
    """Write one engine's complete artefact set + manifest into ``directory``.

    ``stage_prefix`` namespaces the crash-injection stages
    (:func:`repro.reliability.faults.maybe_crash_save`) so tests can target
    a boundary inside a specific shard (``"shard_01/backend"``).
    """
    from ..engine.sharding import ShardedTrajectoryEngine

    directory.mkdir(parents=True, exist_ok=True)
    if isinstance(engine, ShardedTrajectoryEngine):
        _write_sharded(engine, directory, stage_prefix)
        return
    backend_meta = engine.backend.save_state(directory)
    faults.maybe_crash_save(f"{stage_prefix}backend")
    # Uncompressed so load_index(..., mmap=True) can map the payload arrays.
    engine.timestamp_store.save(directory / _TIMESTAMP_ARCHIVE, compress=False)
    faults.maybe_crash_save(f"{stage_prefix}timestamps")
    artefacts = [path for path in directory.rglob("*") if path.is_file()]
    document: dict[str, object] = {
        "format_version": _ENGINE_FORMAT_VERSION,
        "backend": engine.backend_name,
        "config": engine.config.as_dict(),
        "alphabet": _alphabet_to_json(engine.alphabet),
        "timestamps_file": _TIMESTAMP_ARCHIVE,
        "epoch": int(engine.epoch),
        "backend_meta": backend_meta,
        "manifest": _manifest_of(directory, artefacts),
    }
    with (directory / _ENGINE_DOCUMENT).open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    faults.maybe_crash_save(f"{stage_prefix}document")


def _write_sharded(
    engine: "ShardedTrajectoryEngine", directory: Path, stage_prefix: str
) -> None:
    """Write the sharded layout: fleet manifest + per-shard subdirectories."""
    shard_dirs: list[str | None] = []
    shard_documents: list[Path] = []
    for shard_id, shard in enumerate(engine.shards):
        if shard is None:
            shard_dirs.append(None)  # a shard the router never populated
            continue
        name = f"shard_{shard_id:02d}"
        _write_index(shard, directory / name, stage_prefix=f"{stage_prefix}{name}/")
        shard_dirs.append(name)
        shard_documents.append(directory / name / _ENGINE_DOCUMENT)
    document: dict[str, object] = {
        "format_version": _ENGINE_FORMAT_VERSION,
        "backend": engine.backend_name,
        "config": engine.config.as_dict(),
        "alphabet": _alphabet_to_json(engine.alphabet),
        "num_shards": engine.num_shards,
        "shards": shard_dirs,
        # Chain of trust: the fleet document checksums each shard's
        # engine.json; the shard documents' own manifests cover their
        # artefacts, so every file is hashed exactly once.
        "manifest": _manifest_of(directory, shard_documents),
    }
    with (directory / _ENGINE_DOCUMENT).open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    faults.maybe_crash_save(f"{stage_prefix}document")


def load_index(
    directory: str | Path, *, mmap: bool = False
) -> "TrajectoryEngine | ShardedTrajectoryEngine":
    """Reload an engine persisted by :func:`save_index` (any backend).

    Every engine document generation loads: version 4+ shard manifests come
    back as a :class:`~repro.engine.sharding.ShardedTrajectoryEngine` (each
    shard subdirectory reloaded through this function), v1–v3 documents (and
    v4 documents without a shard list) as a single unsharded engine —
    version 2 reads the compressed ``timestamps.npz`` artefact, version 1
    (legacy) the raw timestamp lists embedded in ``engine.json``.  Version-5
    documents carry an artefact ``manifest`` that is verified (existence,
    byte size, SHA-256) before anything is parsed; any mismatch, missing
    artefact or torn archive raises
    :class:`~repro.exceptions.IndexCorruptionError` naming the offending
    file.  Older documents load unchecksummed and upgrade to v5 on the next
    :func:`save_index`.  Directories written by the legacy
    :func:`save_cinct` are detected and rejected with a pointer to
    :func:`load_cinct`.

    ``mmap=True`` loads the large immutable arrays (BWT artefacts, the raw
    linear-scan text, the timestamp payloads) as read-only ``np.memmap``
    windows into their archives instead of decompress-and-copy parses: the
    succinct structures still rebuild in linear time, but the backing arrays
    fault in lazily from the page cache and are **shared** between every
    process mapping the same files — N shard workers hold one physical copy
    of the index.  Growth after an mmap load is copy-on-grow: new batches
    build new in-memory arrays, the mapped pages are never written (they are
    read-only — an accidental write raises), and the on-disk archives stay
    byte-identical until the next :func:`save_index`.  Archives written
    before the uncompressed layout load with ``mmap=True`` too, falling back
    to a full parse member by member.  Checksum verification is unchanged —
    the manifest hashes file bytes, which the page cache makes cheap.
    """
    from ..engine.config import EngineConfig
    from ..engine.engine import TrajectoryEngine
    from ..engine.registry import backend_spec
    from ..temporal.store import TimestampStore

    directory = Path(directory)
    document_path = directory / _ENGINE_DOCUMENT
    if not document_path.exists():
        if (directory / "index.json").exists():
            raise DatasetError(
                f"{directory} holds a legacy CiNCT-only index; load it with "
                "repro.load_cinct instead"
            )
        raise DatasetError(f"engine metadata not found: {document_path}")
    try:
        with document_path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
        raise IndexCorruptionError(
            f"index artefact {_ENGINE_DOCUMENT!r} is corrupt or truncated "
            f"({type(error).__name__}: {error}) at {document_path}"
        ) from error
    version = int(document.get("format_version", -1))
    if version not in _SUPPORTED_ENGINE_VERSIONS:
        raise ConstructionError(
            f"unsupported engine format version {version} "
            f"(expected one of {sorted(_SUPPORTED_ENGINE_VERSIONS)})"
        )
    if version >= 5 and "manifest" in document:
        _verify_manifest(directory, document["manifest"])
    if "shards" in document:
        return _load_sharded(directory, document, mmap=mmap)
    config = EngineConfig.from_dict(document["config"])
    spec = backend_spec(document["backend"])
    alphabet = _alphabet_from_json(document["alphabet"])
    try:
        if mmap:
            # Only pass the kwarg when asked for: third-party loaders
            # registered before the mmap layer keep working for plain loads.
            backend = spec.loader(
                directory, document.get("backend_meta", {}), config, alphabet,
                mmap=True,
            )
        else:
            backend = spec.loader(
                directory, document.get("backend_meta", {}), config, alphabet
            )
    except ReproError:
        raise
    except _ARTEFACT_PARSE_ERRORS as error:
        raise IndexCorruptionError(
            f"backend {document['backend']!r} artefacts are corrupt or "
            f"incomplete ({type(error).__name__}: {error}) at {directory}"
        ) from error
    if "timestamps_file" in document:
        timestamps_path = directory / str(document["timestamps_file"])
        if not timestamps_path.exists():
            raise IndexCorruptionError(
                f"index artefact {timestamps_path.name!r} is missing "
                f"from {directory}"
            )
        try:
            store = TimestampStore.load(
                timestamps_path, mmap_mode="r" if mmap else None
            )
        except ReproError:
            raise
        except _ARTEFACT_PARSE_ERRORS as error:
            raise IndexCorruptionError(
                f"index artefact {timestamps_path.name!r} is corrupt or "
                f"truncated ({type(error).__name__}: {error}) at {timestamps_path}"
            ) from error
    else:
        # Legacy version-1 documents embed raw per-trajectory lists.
        store = TimestampStore(
            list(times) if times is not None else None
            for times in document.get("timestamps", [])
        )
    # Version-1/2 documents predate growth epochs; they resume at epoch 0.
    epoch = int(document.get("epoch", 0))
    return TrajectoryEngine(backend, config, store, epoch=epoch)


def _load_sharded(
    directory: Path, document: dict, *, mmap: bool = False
) -> "ShardedTrajectoryEngine":
    """Reassemble a sharded fleet from a format-v4/v5 shard manifest."""
    from ..engine.config import EngineConfig
    from ..engine.engine import TrajectoryEngine
    from ..engine.sharding import ShardedTrajectoryEngine

    config = EngineConfig.from_dict(document["config"])
    alphabet = _alphabet_from_json(document["alphabet"])
    shard_dirs = document["shards"]
    if int(document.get("num_shards", len(shard_dirs))) != len(shard_dirs):
        raise ConstructionError(
            "corrupt shard manifest: num_shards does not match the shard list"
        )
    shards: list[TrajectoryEngine | None] = []
    for entry in shard_dirs:
        if entry is None:
            shards.append(None)
            continue
        shard_dir = directory / str(entry)
        if not (shard_dir / _ENGINE_DOCUMENT).exists():
            raise IndexCorruptionError(
                f"shard directory {entry!r} is missing or incomplete "
                f"(no {_ENGINE_DOCUMENT}) at {directory}"
            )
        shard = load_index(shard_dir, mmap=mmap)
        if not isinstance(shard, TrajectoryEngine):
            raise ConstructionError(
                f"shard directory {entry!r} does not hold a single-shard engine"
            )
        shards.append(shard)
    return ShardedTrajectoryEngine(shards, config, alphabet)
