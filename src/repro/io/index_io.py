"""Persistence of BWT artefacts and CiNCT indexes.

Building a CiNCT index has one super-linear step — suffix-array construction —
followed by a chain of strictly linear steps (ET-graph, RML, labelling,
wavelet-tree packing; Section VI-G of the paper).  The persistence layer
therefore stores

* the BWT artefacts (text, BWT, suffix array, counts, ``C[]``) as a compressed
  ``.npz`` archive, and
* the index parameters plus the alphabet as a JSON sidecar,

and reloading rebuilds the succinct structures in linear time from those
arrays, never re-sorting suffixes.  This mirrors how the reference C++
implementation persists the ``sdsl`` structures while remaining a plain,
inspection-friendly on-disk format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable

import numpy as np

from ..core.cinct import CiNCT
from ..exceptions import ConstructionError, DatasetError
from ..strings.alphabet import Alphabet
from ..strings.bwt import BWTResult
from ..strings.trajectory_string import TrajectoryString

_FORMAT_VERSION = 1


# --------------------------------------------------------------------------- #
# BWT artefacts
# --------------------------------------------------------------------------- #
def save_bwt_result(bwt_result: BWTResult, path: str | Path) -> Path:
    """Save the arrays of a :class:`BWTResult` as a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=np.asarray([_FORMAT_VERSION], dtype=np.int64),
        text=bwt_result.text,
        bwt=bwt_result.bwt,
        suffix_array=bwt_result.suffix_array,
        counts=bwt_result.counts,
        c_array=bwt_result.c_array,
    )
    # np.savez appends ``.npz`` when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_bwt_result(path: str | Path) -> BWTResult:
    """Load a :class:`BWTResult` previously written by :func:`save_bwt_result`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"BWT archive not found: {path}")
    with np.load(path) as archive:
        version = int(archive["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ConstructionError(
                f"unsupported BWT archive version {version} (expected {_FORMAT_VERSION})"
            )
        return BWTResult(
            text=archive["text"].astype(np.int64),
            bwt=archive["bwt"].astype(np.int64),
            suffix_array=archive["suffix_array"].astype(np.int64),
            counts=archive["counts"].astype(np.int64),
            c_array=archive["c_array"].astype(np.int64),
        )


# --------------------------------------------------------------------------- #
# CiNCT indexes
# --------------------------------------------------------------------------- #
@dataclass
class SavedIndex:
    """A reloaded CiNCT index together with its query-encoding alphabet."""

    index: CiNCT
    alphabet: Alphabet | None

    def encode_pattern(self, path: list[Hashable]) -> list[int]:
        """Encode a query path using the persisted alphabet."""
        if self.alphabet is None:
            raise ConstructionError("this index was saved without an alphabet")
        return self.alphabet.encode_path(path)


def _edge_to_json(edge: Hashable) -> object:
    if isinstance(edge, tuple):
        return [_edge_to_json(item) for item in edge]
    return edge


def _edge_from_json(value: object) -> Hashable:
    if isinstance(value, list):
        return tuple(_edge_from_json(item) for item in value)
    return value  # type: ignore[return-value]


def _alphabet_to_json(alphabet: Alphabet) -> list[object]:
    return [_edge_to_json(alphabet.decode(symbol)) for symbol in range(2, alphabet.sigma)]


def _alphabet_from_json(edges: list[object]) -> Alphabet:
    return Alphabet(_edge_from_json(edge) for edge in edges)


def save_cinct(
    index: CiNCT,
    bwt_result: BWTResult,
    directory: str | Path,
    trajectory_string: TrajectoryString | None = None,
) -> Path:
    """Persist a CiNCT index (BWT artefacts + parameters + optional alphabet).

    Parameters
    ----------
    index:
        The built index (provides the construction parameters to persist).
    bwt_result:
        The BWT artefacts the index was built from.
    directory:
        Target directory; created if missing.  Two files are written:
        ``bwt.npz`` and ``index.json``.
    trajectory_string:
        When given, its alphabet is persisted too so reloaded indexes can
        encode query paths expressed as original road-segment IDs.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_bwt_result(bwt_result, directory / "bwt.npz")
    metadata: dict[str, object] = {
        "format_version": _FORMAT_VERSION,
        "block_size": index.block_size,
        "labeling_strategy": index.labeling_strategy,
        "bitvector_backend": index.bitvector_backend,
        "sa_sample_rate": index._sa_sample_rate,
        "length": index.length,
        "sigma": index.sigma,
    }
    if trajectory_string is not None:
        metadata["alphabet"] = _alphabet_to_json(trajectory_string.alphabet)
    with (directory / "index.json").open("w", encoding="utf-8") as handle:
        json.dump(metadata, handle, indent=2)
    return directory


def load_cinct(directory: str | Path) -> SavedIndex:
    """Reload a CiNCT index persisted by :func:`save_cinct`.

    The succinct structures are rebuilt in linear time from the stored BWT;
    the suffix array is *not* recomputed.
    """
    directory = Path(directory)
    metadata_path = directory / "index.json"
    if not metadata_path.exists():
        raise DatasetError(f"index metadata not found: {metadata_path}")
    with metadata_path.open("r", encoding="utf-8") as handle:
        metadata = json.load(handle)
    version = int(metadata.get("format_version", -1))
    if version != _FORMAT_VERSION:
        raise ConstructionError(
            f"unsupported index format version {version} (expected {_FORMAT_VERSION})"
        )
    bwt_result = load_bwt_result(directory / "bwt.npz")
    if bwt_result.length != int(metadata["length"]) or bwt_result.sigma != int(metadata["sigma"]):
        raise ConstructionError(
            "index metadata does not match the stored BWT "
            f"(length {metadata['length']} vs {bwt_result.length}, "
            f"sigma {metadata['sigma']} vs {bwt_result.sigma})"
        )
    index = CiNCT(
        bwt_result,
        block_size=int(metadata["block_size"]),
        labeling_strategy=metadata["labeling_strategy"],
        bitvector_backend=metadata["bitvector_backend"],
        sa_sample_rate=metadata["sa_sample_rate"],
    )
    alphabet = None
    if "alphabet" in metadata:
        alphabet = _alphabet_from_json(metadata["alphabet"])
    return SavedIndex(index=index, alphabet=alphabet)
