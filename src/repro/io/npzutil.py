"""Tiny helpers shared by the ``.npz``-writing persistence paths.

Besides suffix normalisation this module owns :func:`load_npz_arrays`, the
zero-copy ``.npz`` reader behind ``load_index(..., mmap=True)``: an ``.npz``
archive is a ZIP container of ``.npy`` members, and when a member is stored
**uncompressed** (``ZIP_STORED`` — what plain ``np.savez`` writes) its array
data sits contiguously in the archive file at a computable offset, so the
reader can hand back an ``np.memmap`` window into the archive instead of
decompressing and copying the payload.  Loading an index then costs parsing a
few hundred header bytes per array; the array pages fault in lazily from the
OS page cache and are **shared** between every process that maps the same
archive — N shard workers hold one physical copy of the index.

Compressed members (``np.savez_compressed`` — every archive written before
the mmap-able layout, and the default for human-facing exports where size
matters) fall back to the ordinary decompress-and-copy parse, so old saves
load with ``mmap=True`` transparently, just without the sharing.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np


def ensure_npz_suffix(path: Path) -> Path:
    """Normalise a path to the name ``np.savez`` actually wrote.

    ``np.savez``/``np.savez_compressed`` append ``.npz`` when the target has a
    different suffix; callers returning the written path must mirror that.
    """
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def _member_data_offset(path: Path, info: zipfile.ZipInfo, header_bytes: int) -> int:
    """Absolute file offset of a stored member's array data.

    ``info.header_offset`` points at the member's *local file header*, whose
    length is 30 fixed bytes plus the filename and extra fields actually
    written there (the central directory's copies can differ, so the local
    header is read directly); the ``.npy`` magic + header consume
    ``header_bytes`` more.
    """
    with path.open("rb") as handle:
        handle.seek(info.header_offset)
        local_header = handle.read(30)
    if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
        raise ValueError(f"corrupt zip local header for member {info.filename!r}")
    name_length = int.from_bytes(local_header[26:28], "little")
    extra_length = int.from_bytes(local_header[28:30], "little")
    return info.header_offset + 30 + name_length + extra_length + header_bytes


def load_npz_arrays(
    path: str | Path, mmap_mode: str | None = None
) -> dict[str, np.ndarray]:
    """Load every array of an ``.npz`` archive, memory-mapping when possible.

    With ``mmap_mode=None`` this is ``np.load`` materialised into a plain
    dict.  With a mode (``"r"`` for the read-only sharing the persistence
    layer uses), each uncompressed member comes back as an ``np.memmap``
    window straight into the archive file; compressed members and
    object-dtype members fall back to a full parse.  Read-only maps raise on
    any write attempt, which is exactly the guard the copy-on-grow tests
    rely on.
    """
    path = Path(path)
    if mmap_mode is None:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            name = info.filename
            key = name[:-4] if name.endswith(".npy") else name
            if info.compress_type != zipfile.ZIP_STORED:
                with archive.open(info) as member:
                    arrays[key] = np.lib.format.read_array(member)
                continue
            with archive.open(info) as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(member)
                else:  # an .npy generation this reader does not know
                    member.seek(0)
                    arrays[key] = np.lib.format.read_array(member)
                    continue
                header_bytes = member.tell()
            if dtype.hasobject:
                with archive.open(info) as member:
                    arrays[key] = np.lib.format.read_array(member)
                continue
            if int(np.prod(shape)) == 0:
                # Zero-byte payloads cannot be mapped; an empty array is
                # indistinguishable from one anyway.
                arrays[key] = np.empty(shape, dtype=dtype)
                continue
            arrays[key] = np.memmap(
                path,
                dtype=dtype,
                mode=mmap_mode,
                offset=_member_data_offset(path, info, header_bytes),
                shape=shape,
                order="F" if fortran else "C",
            )
    return arrays
