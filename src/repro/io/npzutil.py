"""Tiny helpers shared by the ``.npz``-writing persistence paths."""

from __future__ import annotations

from pathlib import Path


def ensure_npz_suffix(path: Path) -> Path:
    """Normalise a path to the name ``np.savez`` actually wrote.

    ``np.savez``/``np.savez_compressed`` append ``.npz`` when the target has a
    different suffix; callers returning the written path must mirror that.
    """
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
