"""Dataset and index persistence.

* :mod:`repro.io.dataset_io` — read/write trajectory datasets as JSON Lines or
  CSV so real NCT exports can be fed to the library;
* :mod:`repro.io.index_io` — persist the BWT artefacts and index parameters so
  a CiNCT index can be reloaded without recomputing the suffix array (the only
  super-linear construction step).
"""

from .dataset_io import (
    load_dataset_csv,
    load_dataset_jsonl,
    save_dataset_csv,
    save_dataset_jsonl,
)
from .index_io import (
    SavedIndex,
    load_bwt_result,
    load_cinct,
    save_bwt_result,
    save_cinct,
)

__all__ = [
    "save_dataset_jsonl",
    "load_dataset_jsonl",
    "save_dataset_csv",
    "load_dataset_csv",
    "SavedIndex",
    "save_bwt_result",
    "load_bwt_result",
    "save_cinct",
    "load_cinct",
]
