"""Dataset and index persistence.

* :mod:`repro.io.dataset_io` — read/write trajectory datasets as JSON Lines or
  CSV so real NCT exports can be fed to the library;
* :mod:`repro.io.index_io` — persist index state so it can be reloaded without
  recomputing the suffix array (the only super-linear construction step):
  :func:`save_index`/:func:`load_index` round-trip a whole
  :class:`~repro.engine.TrajectoryEngine` for any registered backend, while
  :func:`save_cinct`/:func:`load_cinct` remain as the legacy CiNCT-only shim.
"""

from .dataset_io import (
    load_dataset_csv,
    load_dataset_jsonl,
    save_dataset_csv,
    save_dataset_jsonl,
)
from .index_io import (
    SavedIndex,
    load_bwt_result,
    load_cinct,
    load_index,
    save_bwt_result,
    save_cinct,
    save_index,
)

__all__ = [
    "save_dataset_jsonl",
    "load_dataset_jsonl",
    "save_dataset_csv",
    "load_dataset_csv",
    "SavedIndex",
    "save_bwt_result",
    "load_bwt_result",
    "save_cinct",
    "load_cinct",
    "save_index",
    "load_index",
]
