"""Reading and writing trajectory datasets.

Two plain-text formats are supported so that externally produced NCT exports
(map-matched GPS, simulator output, ...) can be loaded without writing any
code:

* **JSON Lines** — one JSON object per trajectory with ``edges`` and optional
  ``timestamps`` keys.  Edge IDs may be strings, integers or (JSON) arrays;
  arrays are converted back to tuples on load so they stay hashable.
* **CSV** — one row per observation with ``trajectory_id, edge, timestamp``
  columns, the common shape of map-matching tool output.

Both loaders return a :class:`~repro.trajectories.model.TrajectoryDataset`
(without a road network, which is not needed for indexing).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Hashable

from ..exceptions import DatasetError
from ..trajectories.model import Trajectory, TrajectoryDataset


def _edge_to_json(edge: Hashable) -> object:
    """Convert an edge ID into a JSON-serialisable value."""
    if isinstance(edge, tuple):
        return list(edge)
    return edge


def _edge_from_json(value: object) -> Hashable:
    """Convert a JSON value back into a hashable edge ID."""
    if isinstance(value, list):
        return tuple(_edge_from_json(item) for item in value)
    return value  # type: ignore[return-value]


# --------------------------------------------------------------------------- #
# JSON Lines
# --------------------------------------------------------------------------- #
def save_dataset_jsonl(dataset: TrajectoryDataset, path: str | Path) -> Path:
    """Write a dataset as JSON Lines (one trajectory per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for trajectory in dataset:
            record: dict[str, object] = {
                "trajectory_id": trajectory.trajectory_id,
                "edges": [_edge_to_json(edge) for edge in trajectory.edges],
            }
            if trajectory.timestamps is not None:
                record["timestamps"] = list(trajectory.timestamps)
            handle.write(json.dumps(record) + "\n")
    return path


def load_dataset_jsonl(path: str | Path, name: str | None = None) -> TrajectoryDataset:
    """Load a dataset written by :func:`save_dataset_jsonl` (or compatible)."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    trajectories: list[Trajectory] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise DatasetError(f"{path}:{line_number + 1}: invalid JSON: {error}") from None
            if "edges" not in record or not record["edges"]:
                raise DatasetError(f"{path}:{line_number + 1}: trajectory without edges")
            timestamps = record.get("timestamps")
            trajectories.append(
                Trajectory(
                    edges=[_edge_from_json(edge) for edge in record["edges"]],
                    timestamps=list(timestamps) if timestamps is not None else None,
                    trajectory_id=record.get("trajectory_id"),
                )
            )
    if not trajectories:
        raise DatasetError(f"dataset file {path} contains no trajectories")
    return TrajectoryDataset(name=name or path.stem, trajectories=trajectories)


# --------------------------------------------------------------------------- #
# CSV
# --------------------------------------------------------------------------- #
def save_dataset_csv(dataset: TrajectoryDataset, path: str | Path) -> Path:
    """Write a dataset as CSV with one (trajectory_id, edge, timestamp) row per observation."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["trajectory_id", "edge", "timestamp"])
        for trajectory in dataset:
            for index, edge in enumerate(trajectory.edges):
                timestamp = ""
                if trajectory.timestamps is not None:
                    timestamp = repr(trajectory.timestamps[index])
                writer.writerow([trajectory.trajectory_id, json.dumps(_edge_to_json(edge)), timestamp])
    return path


def load_dataset_csv(path: str | Path, name: str | None = None) -> TrajectoryDataset:
    """Load a dataset written by :func:`save_dataset_csv` (or compatible)."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    edges_by_id: dict[int, list[Hashable]] = {}
    times_by_id: dict[int, list[float]] = {}
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"trajectory_id", "edge"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise DatasetError(f"{path}: CSV must have at least columns {sorted(required)}")
        for row in reader:
            trajectory_id = int(row["trajectory_id"])
            edge = _edge_from_json(json.loads(row["edge"]))
            edges_by_id.setdefault(trajectory_id, []).append(edge)
            timestamp = row.get("timestamp", "")
            if timestamp:
                times_by_id.setdefault(trajectory_id, []).append(float(timestamp))
    if not edges_by_id:
        raise DatasetError(f"dataset file {path} contains no observations")

    trajectories: list[Trajectory] = []
    for trajectory_id in sorted(edges_by_id):
        edges = edges_by_id[trajectory_id]
        timestamps = times_by_id.get(trajectory_id)
        if timestamps is not None and len(timestamps) != len(edges):
            raise DatasetError(
                f"{path}: trajectory {trajectory_id} has {len(timestamps)} timestamps "
                f"for {len(edges)} edges"
            )
        trajectories.append(
            Trajectory(edges=edges, timestamps=timestamps, trajectory_id=trajectory_id)
        )
    return TrajectoryDataset(name=name or path.stem, trajectories=trajectories)
