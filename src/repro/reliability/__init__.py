"""Reliability test tooling: fault injection for shards and persistence.

The production-side reliability machinery (shard deadlines, retries, degraded
merges, health) lives in :mod:`repro.engine.reliability`; this package holds
the *fault side* — the hooks that make a named shard raise, hang, or delay,
crash a save between artefact writes, and corrupt artefacts on disk — kept
separate so the engine never imports test tooling beyond two cheap probes.
"""

from .faults import (
    FAULT_MODES,
    FaultInjected,
    SimulatedCrash,
    clear_faults,
    corrupt_artifact,
    faults_active,
    inject_save_crash,
    inject_shard_fault,
    maybe_crash_save,
    maybe_inject_shard_fault,
    reload_env,
    save_crash,
    shard_fault,
)

__all__ = [
    "FAULT_MODES",
    "FaultInjected",
    "SimulatedCrash",
    "clear_faults",
    "corrupt_artifact",
    "faults_active",
    "inject_save_crash",
    "inject_shard_fault",
    "maybe_crash_save",
    "maybe_inject_shard_fault",
    "reload_env",
    "save_crash",
    "shard_fault",
]
