"""Fault injection hooks for reliability testing and benchmarking.

Production code paths call two cheap probes — :func:`maybe_inject_shard_fault`
at the start of every shard attempt and :func:`maybe_crash_save` at every
artefact-write boundary of the persistence layer — which are no-ops unless a
fault has been armed.  Tests, benchmarks, and CI arm faults either through the
API (:func:`inject_shard_fault` / :func:`inject_save_crash`, or the
``shard_fault`` / ``save_crash`` context managers) or through environment
variables, so a CLI smoke can exercise failure paths without touching code:

``REPRO_SHARD_FAULT=<shard>:<mode>[:<delay_ms>[:<times>]]``
    Make shard ``<shard>`` misbehave on its next ``<times>`` attempts (all
    attempts when omitted).  Modes: ``raise`` (raise :class:`FaultInjected`),
    ``hang`` (sleep ``delay_ms``, default 30000 — long enough to blow any
    sane per-shard deadline), ``delay`` (sleep ``delay_ms``, default 50,
    then proceed normally), ``worker_crash`` (hard-kill the executing
    process with ``os._exit`` — under the process executor this kills the
    shard's worker child; the thread/serial executors degrade it to
    ``raise``, since killing the parent would take the test runner with it).

Under ``shard_executor="processes"`` the fault bookkeeping stays in the
parent: the executor *takes* the armed fault with :func:`take_shard_fault`
(decrementing ``times`` exactly once) and ships the ``(mode, delay_ms)``
action to the worker, which applies it inside the child process — so
``hang`` makes the deadline kill a real hung process and ``worker_crash``
genuinely dies mid-batch.  Environment specs therefore propagate into child
processes without the children re-reading (and double-counting) the
variable.

``REPRO_SAVE_CRASH=<stage>``
    Raise :class:`SimulatedCrash` immediately after the named artefact-write
    stage of ``save_index`` (``backend``, ``timestamps``, ``document``, or a
    shard-prefixed stage such as ``shard_01/backend``), leaving the staging
    directory torn and the previously promoted index untouched.

On-disk corruption is injected directly with :func:`corrupt_artifact`
(truncate / flip a byte / delete), used by the persistence tests and the CI
corruption smoke to prove checksum verification catches torn artefacts.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

#: Recognised shard fault modes.
FAULT_MODES = ("raise", "hang", "delay", "worker_crash")

_DEFAULT_HANG_MS = 30_000.0
_DEFAULT_DELAY_MS = 50.0

_SHARD_FAULT_ENV = "REPRO_SHARD_FAULT"
_SAVE_CRASH_ENV = "REPRO_SAVE_CRASH"


class FaultInjected(RuntimeError):
    """Raised by an armed ``raise``-mode shard fault (a transient failure)."""


class SimulatedCrash(RuntimeError):
    """Raised by an armed save-crash fault to model dying mid-save."""


@dataclass
class _ShardFault:
    shard_id: int
    mode: str
    delay_ms: float
    times: int | None  # remaining attempts to affect; None = every attempt


_lock = threading.Lock()
_shard_faults: dict[int, _ShardFault] = {}
_save_crash_stage: str | None = None
_env_loaded = False


def _parse_shard_fault(spec: str) -> _ShardFault:
    parts = spec.split(":")
    if len(parts) < 2:
        raise ValueError(
            f"malformed {_SHARD_FAULT_ENV} value {spec!r} "
            "(expected <shard>:<mode>[:<delay_ms>[:<times>]])"
        )
    shard_id = int(parts[0])
    mode = parts[1].strip().lower()
    if mode not in FAULT_MODES:
        raise ValueError(f"unknown shard fault mode {mode!r} (one of {FAULT_MODES})")
    delay_ms = _DEFAULT_HANG_MS if mode == "hang" else _DEFAULT_DELAY_MS
    if len(parts) > 2 and parts[2]:
        delay_ms = float(parts[2])
    times = int(parts[3]) if len(parts) > 3 and parts[3] else None
    return _ShardFault(shard_id=shard_id, mode=mode, delay_ms=delay_ms, times=times)


def _ensure_env() -> None:
    global _env_loaded, _save_crash_stage
    if _env_loaded:
        return
    with _lock:
        if _env_loaded:
            return
        spec = os.environ.get(_SHARD_FAULT_ENV)
        if spec:
            fault = _parse_shard_fault(spec)
            _shard_faults.setdefault(fault.shard_id, fault)
        stage = os.environ.get(_SAVE_CRASH_ENV)
        if stage and _save_crash_stage is None:
            _save_crash_stage = stage
        _env_loaded = True


def reload_env() -> None:
    """Re-read the fault environment variables (for tests that set them)."""
    global _env_loaded
    with _lock:
        _env_loaded = False
    _ensure_env()


# --------------------------------------------------------------------------- #
# arming / clearing
# --------------------------------------------------------------------------- #
def inject_shard_fault(
    shard_id: int,
    mode: str,
    *,
    delay_ms: float | None = None,
    times: int | None = None,
) -> None:
    """Arm a fault on one shard: ``raise``, ``hang``, or ``delay``.

    ``times`` bounds how many attempts the fault affects (``None`` = every
    attempt until cleared) — ``times=1`` with retries enabled models a
    transient failure the retry recovers from.
    """
    if mode not in FAULT_MODES:
        raise ValueError(f"unknown shard fault mode {mode!r} (one of {FAULT_MODES})")
    if delay_ms is None:
        delay_ms = _DEFAULT_HANG_MS if mode == "hang" else _DEFAULT_DELAY_MS
    with _lock:
        _shard_faults[int(shard_id)] = _ShardFault(
            shard_id=int(shard_id), mode=mode, delay_ms=float(delay_ms), times=times
        )


def inject_save_crash(stage: str) -> None:
    """Arm a simulated crash right after the named save stage."""
    global _save_crash_stage
    with _lock:
        _save_crash_stage = stage


def clear_faults() -> None:
    """Disarm every fault (shard faults and save crashes)."""
    global _save_crash_stage, _env_loaded
    with _lock:
        _shard_faults.clear()
        _save_crash_stage = None
        _env_loaded = True  # explicit clear also overrides the environment


def faults_active() -> bool:
    """True when any fault is currently armed."""
    _ensure_env()
    with _lock:
        return bool(_shard_faults) or _save_crash_stage is not None


@contextmanager
def shard_fault(
    shard_id: int,
    mode: str,
    *,
    delay_ms: float | None = None,
    times: int | None = None,
) -> Iterator[None]:
    """Context-managed :func:`inject_shard_fault`; disarms that shard on exit."""
    inject_shard_fault(shard_id, mode, delay_ms=delay_ms, times=times)
    try:
        yield
    finally:
        with _lock:
            _shard_faults.pop(int(shard_id), None)


@contextmanager
def save_crash(stage: str) -> Iterator[None]:
    """Context-managed :func:`inject_save_crash`; disarms on exit."""
    global _save_crash_stage
    inject_save_crash(stage)
    try:
        yield
    finally:
        with _lock:
            _save_crash_stage = None


# --------------------------------------------------------------------------- #
# probes (called from production code paths)
# --------------------------------------------------------------------------- #
def take_shard_fault(shard_id: int) -> tuple[str, float] | None:
    """Claim the armed fault for ``shard_id`` without applying it.

    Returns ``(mode, delay_ms)`` and decrements the fault's ``times`` budget
    (exactly as :func:`maybe_inject_shard_fault` would), or ``None`` when no
    fault is armed.  The process executor calls this in the parent and ships
    the action to the shard's worker, which applies it via
    :func:`apply_shard_fault` inside the child.
    """
    _ensure_env()
    if not _shard_faults:
        return None
    with _lock:
        fault = _shard_faults.get(int(shard_id))
        if fault is None:
            return None
        if fault.times is not None:
            fault.times -= 1
            if fault.times <= 0:
                del _shard_faults[int(shard_id)]
    return fault.mode, fault.delay_ms


def apply_shard_fault(shard_id: int, action: tuple[str, float] | None) -> None:
    """Execute a fault action claimed by :func:`take_shard_fault`.

    Runs in whichever process should misbehave: ``worker_crash`` hard-kills
    the current process (no cleanup, no exception — modelling a segfault or
    OOM kill), ``hang``/``delay`` sleep, ``raise`` raises
    :class:`FaultInjected`.
    """
    if action is None:
        return
    mode, delay_ms = action
    if mode == "worker_crash":
        os._exit(17)
    if mode in ("hang", "delay"):
        time.sleep(delay_ms / 1000.0)
        return
    raise FaultInjected(f"injected fault: shard {shard_id} raises")


def maybe_inject_shard_fault(shard_id: int) -> None:
    """Apply the armed fault for ``shard_id``, if any (called per attempt).

    The in-process probe used by the serial/thread executors and the growth
    paths.  ``worker_crash`` degrades to ``raise`` here: there is no child
    process to kill, and ``os._exit`` in the parent would take the caller's
    whole interpreter down.
    """
    action = take_shard_fault(shard_id)
    if action is None:
        return
    mode, delay_ms = action
    if mode == "worker_crash":
        raise FaultInjected(
            f"injected fault: shard {shard_id} worker_crash (no worker process; raised)"
        )
    apply_shard_fault(shard_id, (mode, delay_ms))


def maybe_crash_save(stage: str) -> None:
    """Crash (raise :class:`SimulatedCrash`) if ``stage`` is the armed one."""
    _ensure_env()
    if _save_crash_stage is not None and stage == _save_crash_stage:
        raise SimulatedCrash(f"simulated crash after writing {stage!r}")


# --------------------------------------------------------------------------- #
# artefact corruption (between save and load)
# --------------------------------------------------------------------------- #
def corrupt_artifact(path: str | Path, mode: str = "truncate") -> Path:
    """Corrupt one on-disk artefact: ``truncate`` | ``flip`` | ``delete``.

    ``truncate`` keeps the first half of the file (a torn write), ``flip``
    XORs one byte in the middle (silent bit rot), ``delete`` removes the file
    entirely.  Returns the path for chaining into assertions.
    """
    path = Path(path)
    if mode == "delete":
        path.unlink()
        return path
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
    elif mode == "flip":
        if not data:
            raise ValueError(f"cannot flip a byte of empty file {path}")
        middle = len(data) // 2
        corrupted = bytearray(data)
        corrupted[middle] ^= 0xFF
        path.write_bytes(bytes(corrupted))
    else:
        raise ValueError(f"unknown corruption mode {mode!r} (truncate|flip|delete)")
    return path


__all__ = [
    "FAULT_MODES",
    "FaultInjected",
    "SimulatedCrash",
    "apply_shard_fault",
    "clear_faults",
    "corrupt_artifact",
    "faults_active",
    "inject_save_crash",
    "inject_shard_fault",
    "maybe_crash_save",
    "maybe_inject_shard_fault",
    "reload_env",
    "save_crash",
    "shard_fault",
    "take_shard_fault",
]
