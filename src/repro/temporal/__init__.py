"""Temporal storage subsystem: compressed per-trajectory timestamps."""

from .store import TimestampStore

__all__ = ["TimestampStore"]
