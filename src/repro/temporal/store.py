"""The :class:`TimestampStore`: compressed per-trajectory timestamp storage.

The paper compresses spatial paths only and notes (Section VII) that CiNCT
composes with a temporal companion.  This module is that companion's storage
layer: one delta-encoded entry per trajectory, tolerating ``None`` gaps for
trajectories that carry no timestamps, with an ``.npz``-backed on-disk format
so whole-engine persistence never serialises raw timestamp lists as JSON.

Encoding is built on :class:`~repro.queries.timestamp_compression.DeltaTimestampCodec`
and is **always lossless**: a trajectory whose timestamps sit at integral
multiples of the codec resolution (how the paper's datasets are sampled) is
stored as a 64-bit start plus minimal-width integer deltas; any trajectory the
codec cannot reproduce bit-exactly falls back to raw ``float64`` samples.  The
representation choice is per trajectory, deterministic, and verified at encode
time, so decoded timestamps are identical to the originals before and after a
save/load round-trip.

:meth:`TimestampStore.size_in_bits` reports the *exact* encoded size (presence
bitmap + per-entry payloads), replacing the ``delta_resolution`` guess the
engine previously made through :meth:`TemporalIndex.size_in_bits`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import ConstructionError, DatasetError, QueryError
from ..io.npzutil import ensure_npz_suffix
from ..queries.timestamp_compression import DeltaTimestampCodec, EncodedTimestamps

_STORE_FORMAT_VERSION = 1

#: entry kinds in the flat archive layout
_KIND_NONE = 0
_KIND_DELTA = 1
_KIND_RAW = 2

#: One sampled prefix sum is kept every this many quantised deltas, so a
#: point lookup decodes at most this many deltas instead of the whole entry.
POINT_SAMPLE_RATE = 32


class _Entry:
    """One trajectory's stored timestamps (delta-encoded or raw fallback)."""

    __slots__ = ("encoded", "raw", "_anchors")

    def __init__(self, encoded: EncodedTimestamps | None, raw: np.ndarray | None):
        self.encoded = encoded
        self.raw = raw
        # Sampled prefix sums over the expanded deltas, built lazily on the
        # first point lookup (bulk decode paths never pay for them).
        self._anchors: np.ndarray | None = None

    @property
    def n_samples(self) -> int:
        if self.encoded is not None:
            return self.encoded.n_samples
        assert self.raw is not None
        return int(self.raw.size)

    def decode(self) -> np.ndarray:
        if self.encoded is not None:
            return self.encoded.decode()
        assert self.raw is not None
        return self.raw.copy()

    def timestamp_at(self, index: int) -> float:
        """One decoded timestamp without decoding the whole entry.

        For delta entries this continues the delta accumulation from the
        nearest sampled prefix sum, reproducing :meth:`decode`'s sequential
        float summation order exactly — point lookups are bit-identical to
        indexing the full decode.
        """
        if self.raw is not None:
            return float(self.raw[index])
        encoded = self.encoded
        assert encoded is not None
        if index == 0:
            return float(encoded.start)
        if self._anchors is None:
            deltas = encoded.quantised_deltas.astype(np.float64) * encoded.resolution
            # anchors[j] holds the running delta sum after j * RATE deltas,
            # taken from the same left-to-right cumsum decode() performs.
            sums = np.cumsum(deltas)
            self._anchors = np.concatenate(
                ([0.0], sums[POINT_SAMPLE_RATE - 1 :: POINT_SAMPLE_RATE])
            )
        anchor_index = index // POINT_SAMPLE_RATE
        base = float(self._anchors[anchor_index])
        tail = (
            encoded.quantised_deltas[anchor_index * POINT_SAMPLE_RATE : index].astype(
                np.float64
            )
            * encoded.resolution
        )
        if tail.size:
            # Continue the sequential accumulation from the anchor so the
            # float rounding matches the full cumsum term for term.
            base = float(np.cumsum(np.concatenate(([base], tail)))[-1])
        return float(encoded.start + base)

    def size_in_bits(self) -> int:
        if self.encoded is not None:
            return self.encoded.size_in_bits()
        assert self.raw is not None
        # raw float64 samples plus the same per-entry width byte the codec pays
        return int(self.raw.size) * 64 + 8


class TimestampStore:
    """Delta-encoded per-trajectory timestamps, addressable by trajectory id.

    Parameters
    ----------
    timestamps:
        Initial per-trajectory timestamp sequences; ``None`` marks a
        trajectory without timestamps (the gap is preserved).
    codec:
        The delta codec applied to every entry (lossless 1-second resolution
        by default).  Entries the codec cannot reproduce exactly are kept as
        raw ``float64`` samples, so the store is lossless regardless.

    Notes
    -----
    This is the engine's *lossless storage* layer.  The older
    :class:`~repro.queries.timestamp_compression.CompressedTimestampStore`
    serves a different purpose — analysing the size/accuracy trade-off of
    *lossy* codecs (it keeps the originals to measure reconstruction error)
    — and stays in the analysis/benchmark layer.
    """

    def __init__(
        self,
        timestamps: Iterable[Sequence[float] | np.ndarray | None] = (),
        codec: DeltaTimestampCodec | None = None,
    ):
        self.codec = codec or DeltaTimestampCodec()
        self._entries: list[_Entry | None] = []
        self.extend(timestamps)

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #
    def append(self, timestamps: Sequence[float] | np.ndarray | None) -> None:
        """Store one trajectory's timestamps (``None`` records a gap)."""
        if timestamps is None:
            self._entries.append(None)
            return
        times = np.asarray(timestamps, dtype=np.float64)
        if times.ndim != 1 or times.size == 0:
            raise ConstructionError(
                "a timestamp sequence must be a non-empty 1-d array"
            )
        if np.any(np.diff(times) < 0):
            raise ConstructionError("timestamps must be non-decreasing")
        encoded = self.codec.encode(times)
        decoded = encoded.decode()
        if decoded.size == times.size and np.array_equal(decoded, times):
            self._entries.append(_Entry(encoded, None))
        else:
            # Not representable at the codec resolution: keep raw samples so
            # the store stays lossless.
            self._entries.append(_Entry(None, times.copy()))

    def extend(
        self, timestamps: Iterable[Sequence[float] | np.ndarray | None]
    ) -> None:
        """Append one entry per trajectory in order (``None`` gaps included)."""
        for times in timestamps:
            self.append(times)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def n_trajectories(self) -> int:
        """Number of entries (timestamped or not)."""
        return len(self._entries)

    @property
    def n_timestamped(self) -> int:
        """Number of entries that carry timestamps."""
        return sum(1 for entry in self._entries if entry is not None)

    @property
    def any_timestamped(self) -> bool:
        """True when at least one trajectory carries timestamps."""
        return any(entry is not None for entry in self._entries)

    @property
    def fully_timestamped(self) -> bool:
        """True when the store is non-empty and every entry has timestamps."""
        return bool(self._entries) and all(
            entry is not None for entry in self._entries
        )

    def has_timestamps(self, trajectory_id: int) -> bool:
        """True when the given trajectory carries timestamps."""
        self._check_id(trajectory_id)
        return self._entries[trajectory_id] is not None

    def get(self, trajectory_id: int) -> list[float] | None:
        """Decoded timestamps of one trajectory (``None`` for a gap).

        Entries decode on every access (linear in the trajectory length);
        nothing decoded is retained, so the store's resident size stays the
        compressed one.
        """
        self._check_id(trajectory_id)
        entry = self._entries[trajectory_id]
        if entry is None:
            return None
        return [float(v) for v in entry.decode()]

    def timestamp(self, trajectory_id: int, edge_index: int) -> float | None:
        """Point lookup: the timestamp of one segment of one trajectory.

        Returns ``None`` for trajectories without timestamps.  Delta-encoded
        entries answer through sampled prefix sums over their quantised
        deltas (one anchor every :data:`POINT_SAMPLE_RATE` deltas), so the
        lookup decodes a bounded tail instead of the whole trajectory, while
        remaining bit-identical to ``get(trajectory_id)[edge_index]``.
        """
        self._check_id(trajectory_id)
        entry = self._entries[trajectory_id]
        if entry is None:
            return None
        if not 0 <= edge_index < entry.n_samples:
            raise QueryError(
                f"edge index {edge_index} out of range for trajectory {trajectory_id}"
            )
        return entry.timestamp_at(edge_index)

    def as_lists(self) -> list[list[float] | None]:
        """Every entry decoded, in trajectory order (gaps as ``None``)."""
        return [self.get(i) for i in range(len(self._entries))]

    def __iter__(self) -> Iterator[list[float] | None]:
        return iter(self.as_lists())

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self) -> int:
        """Exact encoded size: presence bitmap plus per-entry payloads."""
        bits = len(self._entries)  # one presence bit per trajectory
        bits += sum(
            entry.size_in_bits() for entry in self._entries if entry is not None
        )
        return bits

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path, compress: bool = True) -> Path:
        """Write the store as an ``.npz`` archive.

        ``compress=False`` writes uncompressed (``ZIP_STORED``) members so
        :meth:`load` can memory-map the delta/raw payload arrays in place —
        the engine persistence layer saves this way for
        ``load_index(..., mmap=True)``.  The default stays compressed:
        delta-encoded timestamps compress extremely well, and standalone
        archives (exports, the temporal-store benchmark) care about bytes,
        not page sharing.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        kinds = np.zeros(len(self._entries), dtype=np.int8)
        lengths = np.zeros(len(self._entries), dtype=np.int64)
        starts = np.zeros(len(self._entries), dtype=np.float64)
        delta_chunks: list[np.ndarray] = []
        raw_chunks: list[np.ndarray] = []
        for i, entry in enumerate(self._entries):
            if entry is None:
                kinds[i] = _KIND_NONE
                continue
            lengths[i] = entry.n_samples
            if entry.encoded is not None:
                kinds[i] = _KIND_DELTA
                starts[i] = entry.encoded.start
                delta_chunks.append(
                    np.asarray(entry.encoded.quantised_deltas, dtype=np.int64)
                )
            else:
                kinds[i] = _KIND_RAW
                raw_chunks.append(entry.raw)
        writer = np.savez_compressed if compress else np.savez
        writer(
            path,
            format_version=np.asarray([_STORE_FORMAT_VERSION], dtype=np.int64),
            resolution=np.asarray([self.codec.resolution], dtype=np.float64),
            kinds=kinds,
            lengths=lengths,
            starts=starts,
            deltas=(
                np.concatenate(delta_chunks)
                if delta_chunks
                else np.zeros(0, dtype=np.int64)
            ),
            raw_values=(
                np.concatenate(raw_chunks)
                if raw_chunks
                else np.zeros(0, dtype=np.float64)
            ),
        )
        return ensure_npz_suffix(path)

    @classmethod
    def load(cls, path: str | Path, mmap_mode: str | None = None) -> "TimestampStore":
        """Reload a store written by :meth:`save`.

        With ``mmap_mode="r"`` the payload arrays stay read-only memory maps
        into the archive (uncompressed saves only; compressed archives fall
        back to a full parse) and each entry holds a window into the shared
        map — decoded values are bit-identical either way.
        """
        from ..io.npzutil import load_npz_arrays

        path = Path(path)
        if not path.exists():
            raise DatasetError(f"timestamp archive not found: {path}")
        archive = load_npz_arrays(path, mmap_mode=mmap_mode)
        version = int(archive["format_version"][0])
        if version != _STORE_FORMAT_VERSION:
            raise ConstructionError(
                f"unsupported timestamp archive version {version} "
                f"(expected {_STORE_FORMAT_VERSION})"
            )
        resolution = float(archive["resolution"][0])
        kinds = np.asarray(archive["kinds"], dtype=np.int8)
        lengths = np.asarray(archive["lengths"], dtype=np.int64)
        starts = np.asarray(archive["starts"], dtype=np.float64)
        deltas = _as_dtype(archive["deltas"], np.int64)
        raw_values = _as_dtype(archive["raw_values"], np.float64)
        store = cls(codec=DeltaTimestampCodec(resolution=resolution))
        delta_cursor = 0
        raw_cursor = 0
        for i in range(kinds.size):
            kind = int(kinds[i])
            n = int(lengths[i])
            if kind == _KIND_NONE:
                store._entries.append(None)
            elif n <= 0:
                # A zero/negative length would walk the payload cursors
                # backwards and silently misalign every later entry.
                raise ConstructionError(
                    f"corrupt timestamp archive: entry {i} has length {n}"
                )
            elif kind == _KIND_DELTA:
                quantised = deltas[delta_cursor : delta_cursor + n - 1]
                delta_cursor += n - 1
                if quantised.size and int(quantised.min()) < 0:
                    raise ConstructionError(
                        f"corrupt timestamp archive: entry {i} has negative deltas"
                    )
                store._entries.append(
                    _Entry(_encoded_from_deltas(float(starts[i]), quantised, resolution), None)
                )
            elif kind == _KIND_RAW:
                # A memmap-backed load keeps the window (shared pages); a
                # plain load copies so the archive buffer can be released.
                raw = raw_values[raw_cursor : raw_cursor + n]
                if mmap_mode is None:
                    raw = raw.copy()
                raw_cursor += n
                if np.any(np.diff(raw) < 0):
                    raise ConstructionError(
                        f"corrupt timestamp archive: entry {i} has decreasing timestamps"
                    )
                store._entries.append(_Entry(None, raw))
            else:
                raise ConstructionError(f"corrupt timestamp archive: entry kind {kind}")
        if delta_cursor != deltas.size or raw_cursor != raw_values.size:
            raise ConstructionError(
                "corrupt timestamp archive: entry lengths do not match the "
                f"stored payload (deltas {delta_cursor}/{deltas.size}, "
                f"raw {raw_cursor}/{raw_values.size})"
            )
        return store

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _check_id(self, trajectory_id: int) -> None:
        if not 0 <= trajectory_id < len(self._entries):
            raise QueryError(f"trajectory id {trajectory_id} out of range")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TimestampStore(trajectories={len(self._entries)}, "
            f"timestamped={self.n_timestamped}, bits={self.size_in_bits()})"
        )


def _as_dtype(array: np.ndarray, dtype: type) -> np.ndarray:
    """Dtype-normalise a loaded payload, copying only on mismatch.

    Memory-mapped payloads must pass through untouched — an ``astype`` copy
    would materialise the window and drop the page sharing the mmap load
    exists for.
    """
    if array.dtype == np.dtype(dtype):
        return array
    return array.astype(dtype)


def _encoded_from_deltas(
    start: float, quantised: np.ndarray, resolution: float
) -> EncodedTimestamps:
    """Rebuild an :class:`EncodedTimestamps` from its persisted arrays."""
    from ..succinct import bits_needed

    width = (
        bits_needed(int(quantised.max()))
        if quantised.size and int(quantised.max()) > 0
        else 1
    )
    return EncodedTimestamps(
        start=start,
        quantised_deltas=np.asarray(quantised, dtype=np.int64),
        resolution=resolution,
        delta_width=width,
    )
