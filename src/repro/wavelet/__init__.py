"""Wavelet structures: Huffman-shaped / balanced wavelet trees and the wavelet matrix."""

from .factories import (
    BitVectorFactory,
    BitVectorLike,
    plain_bitvector_factory,
    rrr_bitvector_factory,
)
from .matrix import WaveletMatrix
from .tree import BalancedWaveletTree, HuffmanWaveletTree, WaveletTree, fixed_width_codes

__all__ = [
    "BitVectorFactory",
    "BitVectorLike",
    "plain_bitvector_factory",
    "rrr_bitvector_factory",
    "WaveletTree",
    "HuffmanWaveletTree",
    "BalancedWaveletTree",
    "fixed_width_codes",
    "WaveletMatrix",
]
