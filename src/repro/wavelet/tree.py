"""Flat-array wavelet tree over an arbitrary prefix-free code.

The same machinery implements both the Huffman-shaped wavelet tree (HWT) used
by CiNCT / ICB-Huff and a balanced wavelet tree (fixed-width codes): the tree
shape is entirely determined by the code assigned to each symbol.  Each node
stores one bit vector (plain or RRR, see :mod:`repro.wavelet.factories`)
holding, for every sequence element routed through that node, the next bit of
its code.

Construction routes the *whole sequence* level by level with numpy stable
partitions (one ``argsort`` of ``node * 2 + bit`` keys per level) instead of
shuffling Python lists symbol by symbol, and the tree topology is resolved at
build time into flat arrays: a global list of node bit vectors, per-node child
pointers, and a per-symbol array of the node ids along its code path.  Rank
and access therefore never touch a tuple-keyed dict on the hot path.

``rank(symbol, i)`` walks the code of ``symbol`` from the root, performing one
bit-vector rank per level — exactly the access pattern whose cost the paper
analyses (Theorem 1: O(1 + H0) expected levels for a Huffman shape).
:meth:`WaveletTree.rank_many` performs the same walk once for a whole batch of
positions, turning the per-level work into vectorized ``rank1_many`` calls.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..exceptions import AlphabetError, ConstructionError, QueryError
from ..succinct import build_huffman_code
from .factories import (
    BitVectorFactory,
    BitVectorLike,
    access_many,
    build_many,
    plain_bitvector_factory,
    rank1_many,
)


class WaveletTree:
    """A wavelet tree for an integer sequence under a given prefix-free code.

    Parameters
    ----------
    sequence:
        The integer sequence to index.
    codes:
        Mapping from every distinct symbol of ``sequence`` to its code, a
        tuple of bits (root-to-leaf).  The code must be prefix-free.
    bitvector_factory:
        Backend used for the per-node bit vectors.
    """

    def __init__(
        self,
        sequence: Sequence[int] | np.ndarray,
        codes: Mapping[int, tuple[int, ...]],
        bitvector_factory: BitVectorFactory | None = None,
        frequencies: Mapping[int, int] | None = None,
    ):
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.size == 0:
            raise ConstructionError("cannot build a wavelet tree over an empty sequence")
        factory = bitvector_factory or plain_bitvector_factory()
        self._n = int(seq.size)
        self._codes: dict[int, tuple[int, ...]] = {int(s): tuple(c) for s, c in codes.items()}

        # ``frequencies`` lets subclasses that already counted the symbols
        # (to derive the code) skip a second O(n log n) pass over ``seq``.
        if frequencies is None:
            values, counts = np.unique(seq, return_counts=True)
            frequencies = {int(v): int(c) for v, c in zip(values, counts)}
        else:
            values = np.asarray(sorted(frequencies), dtype=np.int64)
        present = [int(v) for v in values]
        missing = set(present) - set(self._codes)
        if missing:
            raise ConstructionError(f"codes missing for symbols: {sorted(missing)[:5]}...")
        self._frequencies = dict(frequencies)

        # A code that is a proper prefix of another present symbol's code
        # would strand elements mid-tree (the condition the per-element
        # router used to trip over one symbol at a time).
        present_codes = sorted(self._codes[s] for s in present)
        for shorter, longer in zip(present_codes, present_codes[1:]):
            if len(shorter) < len(longer) and longer[: len(shorter)] == shorter:
                raise ConstructionError("codes are not prefix-free")

        self._build_topology(present)
        self._build_bitvectors(seq, values, factory)
        self._build_paths()
        self._code_to_symbol = {code: symbol for symbol, code in self._codes.items()}
        self._pair_tables: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_topology(self, present: list[int]) -> None:
        """Enumerate internal nodes level by level and freeze child pointers.

        A node exists for every proper prefix of a *present* symbol's code.
        The prefixes are collected in an integer trie (no tuple keys), then
        renumbered breadth-first so nodes are ordered globally level by level
        and, within a level, by (parent, bit) — exactly the order the stable
        partition of the routing pass produces.
        """
        codes = self._codes
        child0: list[int] = [-1]
        child1: list[int] = [-1]
        for symbol in present:
            code = codes[symbol]
            node = 0
            for depth in range(len(code) - 1):
                if code[depth]:
                    nxt = child1[node]
                    if nxt < 0:
                        nxt = len(child1)
                        child1[node] = nxt
                        child0.append(-1)
                        child1.append(-1)
                else:
                    nxt = child0[node]
                    if nxt < 0:
                        nxt = len(child0)
                        child0[node] = nxt
                        child0.append(-1)
                        child1.append(-1)
                node = nxt
        total = len(child0)

        new_id = [-1] * total
        new_id[0] = 0
        assigned = 1
        level_sizes: list[int] = []
        frontier = [0]
        while frontier:
            level_sizes.append(len(frontier))
            next_frontier: list[int] = []
            for node in frontier:
                for child in (child0[node], child1[node]):
                    if child >= 0:
                        new_id[child] = assigned
                        assigned += 1
                        next_frontier.append(child)
            frontier = next_frontier

        self._levels = len(level_sizes)
        self._level_sizes = level_sizes
        level_offsets = [0]
        for size in level_sizes:
            level_offsets.append(level_offsets[-1] + size)
        self._level_offsets = level_offsets
        self._num_nodes = total

        # Child pointers in renumbered ids, kept both as numpy (for the
        # vectorized routing below) and as plain lists (for the per-symbol
        # path walks, where numpy scalar indexing would dominate).
        child_rows: list[list[int]] = [[-1, -1] for _ in range(max(total, 1))]
        for old in range(total):
            renumbered = new_id[old]
            left, right = child0[old], child1[old]
            if left >= 0:
                child_rows[renumbered][0] = new_id[left]
            if right >= 0:
                child_rows[renumbered][1] = new_id[right]
        self._child_rows = child_rows
        self._child = np.asarray(child_rows, dtype=np.int64)

        # child_local_maps[level][parent_local * 2 + bit] -> local id at
        # level + 1, or -1 when the (parent, bit) side holds no internal node.
        self._child_local_maps: list[np.ndarray] = []
        for level in range(self._levels - 1):
            lo = level_offsets[level]
            hi = level_offsets[level + 1]
            flat = self._child[lo:hi].reshape(-1)
            self._child_local_maps.append(np.where(flat >= 0, flat - hi, -1))

    def _build_bitvectors(
        self, seq: np.ndarray, values: np.ndarray, factory: BitVectorFactory
    ) -> None:
        """Route the whole sequence level by level with stable partitions."""
        m = int(values.size)
        seq_ids = np.searchsorted(values, seq)
        code_len = np.zeros(m, dtype=np.int64)
        bit_at = np.zeros((self._levels, m), dtype=np.int64)
        for local, symbol in enumerate(values.tolist()):
            code = self._codes[int(symbol)]
            code_len[local] = len(code)
            for depth, bit in enumerate(code):
                bit_at[depth, local] = bit

        self._node_bvs: list[BitVectorLike] = []
        cur_ids = seq_ids
        cur_nodes = np.zeros(seq.size, dtype=np.int64)
        for level in range(self._levels):
            bits = bit_at[level][cur_ids]
            starts = np.searchsorted(cur_nodes, np.arange(self._level_sizes[level] + 1))
            self._node_bvs.extend(build_many(factory, bits, starts))
            if level + 1 >= self._levels:
                break
            # Stable partition of every node into (zeros, ones) in O(n): each
            # element's destination is its node's base plus its stable rank on
            # its side, all computed from cumulative counts — no sort needed.
            inclusive_ones = np.cumsum(bits)
            exclusive_ones = inclusive_ones - bits
            node_base = starts[cur_nodes]
            ones_before = exclusive_ones - exclusive_ones[starts[:-1]][cur_nodes]
            zeros_before = np.arange(bits.size) - node_base - ones_before
            ones_in_node = np.add.reduceat(bits, starts[:-1]) if bits.size else bits
            zeros_in_node = np.diff(starts) - ones_in_node
            destination = node_base + np.where(
                bits == 0, zeros_before, zeros_in_node[cur_nodes] + ones_before
            )
            children = self._child_local_maps[level][cur_nodes * 2 + bits]
            survive = code_len[cur_ids] > level + 1
            next_ids = np.empty_like(cur_ids)
            next_nodes = np.empty_like(cur_nodes)
            next_survive = np.empty_like(survive)
            next_ids[destination] = cur_ids
            next_nodes[destination] = children
            next_survive[destination] = survive
            cur_ids = next_ids[next_survive]
            cur_nodes = next_nodes[next_survive]

    def _build_paths(self) -> None:
        """Resolve per-symbol code paths and leaf pointers from the trie."""
        paths: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = {}
        child = self._child_rows
        leaf_parents: list[int] = []
        leaf_bits: list[int] = []
        leaf_symbols: list[int] = []
        for symbol, code in self._codes.items():
            node = 0
            node_ids: list[int] = []
            for depth in range(len(code)):
                node_ids.append(node)
                if node < 0:
                    break
                if depth < len(code) - 1:
                    node = child[node][code[depth]]
            complete = len(node_ids) == len(code)
            paths[symbol] = (tuple(node_ids), code if complete else code[: len(node_ids)])
            if code and complete and node_ids[-1] >= 0:
                leaf_parents.append(node_ids[-1])
                leaf_bits.append(code[-1])
                leaf_symbols.append(symbol)
        self._paths = paths
        self._leaf_symbol = np.zeros((max(self._num_nodes, 1), 2), dtype=np.int64)
        self._has_leaf = np.zeros((max(self._num_nodes, 1), 2), dtype=bool)
        if leaf_parents:
            self._leaf_symbol[leaf_parents, leaf_bits] = leaf_symbols
            self._has_leaf[leaf_parents, leaf_bits] = True

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def codes(self) -> dict[int, tuple[int, ...]]:
        """The prefix-free code used to shape the tree."""
        return dict(self._codes)

    def depth_of(self, symbol: int) -> int:
        """Code length of ``symbol`` (number of bit-vector ranks per query)."""
        try:
            return len(self._codes[int(symbol)])
        except KeyError:
            raise AlphabetError(f"symbol {symbol} not in the wavelet tree alphabet") from None

    def rank(self, symbol: int, i: int) -> int:
        """Number of occurrences of ``symbol`` in ``sequence[0:i]`` (exclusive)."""
        if not 0 <= i <= self._n:
            raise QueryError(f"rank position {i} out of range [0, {self._n}]")
        path = self._paths.get(int(symbol))
        if path is None:
            return 0
        node_ids, bits = path
        position = i
        node_bvs = self._node_bvs
        for node_id, bit in zip(node_ids, bits):
            if node_id < 0:
                return 0
            bitvector = node_bvs[node_id]
            position = bitvector.rank1(position) if bit else bitvector.rank0(position)
            if position == 0:
                return 0
        return position

    def rank_many(self, symbol: int, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank` of one symbol over many positions.

        Walks the symbol's code path once, replacing the per-position bit
        vector ranks with one ``rank1_many`` per level.  Positions that hit an
        empty sub-range simply stay at zero (``rank(·, 0) == 0``).
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) > self._n:
            raise QueryError(f"rank positions out of range [0, {self._n}]")
        path = self._paths.get(int(symbol))
        if path is None:
            return np.zeros(pos.size, dtype=np.int64)
        node_ids, bits = path
        current = pos
        for node_id, bit in zip(node_ids, bits):
            if node_id < 0:
                return np.zeros(pos.size, dtype=np.int64)
            bitvector = self._node_bvs[node_id]
            ones = rank1_many(bitvector, current)
            current = ones if bit else current - ones
        return current

    def rank_pairs(
        self,
        symbols: Sequence[int] | np.ndarray,
        positions: Sequence[int] | np.ndarray,
    ) -> np.ndarray:
        """Vectorized rank of aligned ``(symbol, position)`` pairs.

        Equivalent to ``[self.rank(s, p) for s, p in zip(symbols, positions)]``
        but all pairs descend the tree together: at every depth the pending
        pairs are grouped by the tree node their code path visits, so pairs of
        *different* symbols share one ``rank1_many`` per node they co-visit —
        near the root that is every pair at once.  This is what makes a
        mixed-label frontier (the trie-shared batch search) cost one bit-vector
        rank per distinct tree node instead of one walk per distinct symbol.
        """
        sym = np.asarray(symbols, dtype=np.int64)
        pos = np.asarray(positions, dtype=np.int64)
        if sym.size != pos.size:
            raise QueryError(
                f"rank_pairs needs aligned arrays, got {sym.size} symbols "
                f"and {pos.size} positions"
            )
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) > self._n:
            raise QueryError(f"rank positions out of range [0, {self._n}]")

        table_symbols, table_depths, node_table, bit_table = self._rank_pair_tables()
        if node_table.shape[1] == 0:
            return np.zeros(pos.size, dtype=np.int64)
        # Map each entry's symbol onto its table row; absent symbols get a
        # depth of 0, which ranks to 0 exactly like the scalar walk.
        local = np.searchsorted(table_symbols, sym)
        local = np.minimum(local, table_symbols.size - 1)
        known = table_symbols[local] == sym
        entry_depths = np.where(known, table_depths[local], 0)
        max_depth = int(entry_depths.max()) if entry_depths.size else 0

        out = np.zeros(pos.size, dtype=np.int64)
        current = pos.copy()
        pending = np.flatnonzero(entry_depths > 0)
        for depth in range(max_depth):
            if pending.size == 0:
                break
            nodes = node_table[local[pending], depth]
            for node in np.unique(nodes).tolist():
                members = pending[nodes == node]
                bitvector = self._node_bvs[node]
                ones = rank1_many(bitvector, current[members])
                bits = bit_table[local[members], depth]
                current[members] = np.where(bits == 1, ones, current[members] - ones)
            finished = entry_depths[pending] == depth + 1
            done = pending[finished]
            out[done] = current[done]
            pending = pending[~finished]
            # A position that hit 0 stays 0 down the rest of its path.
            pending = pending[current[pending] > 0]
        return out

    def _rank_pair_tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Dense per-symbol path tables backing :meth:`rank_pairs`.

        Built lazily once per tree: ``(symbols, depths, node_table,
        bit_table)`` where row ``r`` of the tables holds symbol ``symbols[r]``'s
        code path padded with ``-1``.  Symbols whose stored path fell off the
        trie (truncated or ``-1``-terminated) get depth 0 — :meth:`rank` and
        :meth:`rank_many` return 0 for those, and so must the pair walk.
        """
        # getattr: trees unpickled from artefacts predating this cache have no
        # ``_pair_tables`` attribute at all.
        if getattr(self, "_pair_tables", None) is None:
            symbols = np.asarray(sorted(self._paths), dtype=np.int64)
            paths: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
            for s in symbols.tolist():
                node_ids, bits = self._paths[s]
                if (node_ids and node_ids[-1] < 0) or len(node_ids) != len(
                    self._codes.get(s, ())
                ):
                    paths.append(((), ()))
                else:
                    paths.append((node_ids, bits))
            depths = np.asarray([len(p[0]) for p in paths], dtype=np.int64)
            max_depth = int(depths.max()) if depths.size else 0
            node_table = np.full((symbols.size, max_depth), -1, dtype=np.int64)
            bit_table = np.zeros((symbols.size, max_depth), dtype=np.int64)
            for row, (node_ids, bits) in enumerate(paths):
                node_table[row, : len(node_ids)] = node_ids
                bit_table[row, : len(bits)] = bits
            self._pair_tables = (symbols, depths, node_table, bit_table)
        return self._pair_tables

    def access(self, i: int) -> int:
        """Return ``sequence[i]``."""
        if not 0 <= i < self._n:
            raise QueryError(f"access position {i} out of range [0, {self._n})")
        node = 0
        position = i
        while True:
            bitvector = self._node_bvs[node]
            bit = bitvector.access(position)
            position = bitvector.rank1(position) if bit else bitvector.rank0(position)
            if self._has_leaf[node, bit]:
                return int(self._leaf_symbol[node, bit])
            child = int(self._child[node, bit])
            if child < 0:
                raise QueryError(f"bit path at node {node} does not correspond to a symbol")
            node = child

    def access_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`access` over an array of positions.

        Positions sharing a node are grouped at every level so the underlying
        bit vectors see batched ``access_many`` / ``rank1_many`` calls.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) >= self._n:
            raise QueryError(f"access positions out of range [0, {self._n})")
        out = np.zeros(pos.size, dtype=np.int64)
        current = pos.copy()
        nodes = np.zeros(pos.size, dtype=np.int64)
        pending = np.arange(pos.size)
        while pending.size:
            pending_nodes = nodes[pending]
            next_pending: list[np.ndarray] = []
            for node in np.unique(pending_nodes).tolist():
                members = pending[pending_nodes == node]
                bitvector = self._node_bvs[node]
                bits = access_many(bitvector, current[members])
                ones = rank1_many(bitvector, current[members])
                current[members] = np.where(bits == 1, ones, current[members] - ones)
                for bit in (0, 1):
                    side = members[bits == bit]
                    if side.size == 0:
                        continue
                    if self._has_leaf[node, bit]:
                        out[side] = self._leaf_symbol[node, bit]
                    else:
                        child = int(self._child[node, bit])
                        if child < 0:
                            raise QueryError(
                                f"bit path at node {node} does not correspond to a symbol"
                            )
                        nodes[side] = child
                        next_pending.append(side)
            pending = (
                np.concatenate(next_pending) if next_pending else np.zeros(0, dtype=np.int64)
            )
        return out

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self) -> int:
        """Total size: per-node bit vectors plus tree topology overhead.

        Each stored node is charged two 64-bit pointers (children) as the
        structural overhead the paper refers to when discussing Huffman-tree
        pointers; leaves are charged one symbol entry of ``ceil(lg sigma)``
        bits via the code table.
        """
        bits = sum(bv.size_in_bits() for bv in self._node_bvs)
        bits += len(self._node_bvs) * 2 * 64
        sigma = max(self._codes) + 1 if self._codes else 1
        symbol_bits = max(int(sigma - 1).bit_length(), 1)
        bits += len(self._codes) * symbol_bits
        return bits

    def node_count(self) -> int:
        """Number of internal (bit-vector-bearing) nodes."""
        return len(self._node_bvs)

    def average_depth(self) -> float:
        """Average code length weighted by symbol frequency."""
        total = sum(self._frequencies.values())
        if total == 0:
            return 0.0
        weighted = sum(len(self._codes[s]) * c for s, c in self._frequencies.items())
        return weighted / total


def fixed_width_codes(symbols: Sequence[int]) -> dict[int, tuple[int, ...]]:
    """Assign fixed-width binary codes to ``symbols`` (for a balanced tree)."""
    distinct = sorted(set(int(s) for s in symbols))
    if not distinct:
        raise ConstructionError("cannot assign codes to an empty alphabet")
    width = max((len(distinct) - 1).bit_length(), 1)
    codes: dict[int, tuple[int, ...]] = {}
    for index, symbol in enumerate(distinct):
        codes[symbol] = tuple((index >> (width - 1 - level)) & 1 for level in range(width))
    return codes


class HuffmanWaveletTree(WaveletTree):
    """Huffman-shaped wavelet tree (HWT): the tree of Section II-A4.

    The tree shape is the Huffman tree of the stored sequence, so frequent
    symbols sit near the root and both space and expected rank time are
    O(1 + H0) per symbol (Theorem 1).
    """

    def __init__(
        self,
        sequence: Sequence[int] | np.ndarray,
        bitvector_factory: BitVectorFactory | None = None,
    ):
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.size == 0:
            raise ConstructionError("cannot build an HWT over an empty sequence")
        values, counts = np.unique(seq, return_counts=True)
        frequencies = {int(v): int(c) for v, c in zip(values, counts)}
        code = build_huffman_code(frequencies)
        super().__init__(
            seq, code.codes, bitvector_factory=bitvector_factory, frequencies=frequencies
        )


class BalancedWaveletTree(WaveletTree):
    """Balanced (fixed-depth) wavelet tree over the symbols present."""

    def __init__(
        self,
        sequence: Sequence[int] | np.ndarray,
        bitvector_factory: BitVectorFactory | None = None,
    ):
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.size == 0:
            raise ConstructionError("cannot build a wavelet tree over an empty sequence")
        values, counts = np.unique(seq, return_counts=True)
        frequencies = {int(v): int(c) for v, c in zip(values, counts)}
        codes = fixed_width_codes(values.tolist())
        super().__init__(
            seq, codes, bitvector_factory=bitvector_factory, frequencies=frequencies
        )
