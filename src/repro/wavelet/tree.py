"""Pointer-based wavelet tree over an arbitrary prefix-free code.

The same machinery implements both the Huffman-shaped wavelet tree (HWT) used
by CiNCT / ICB-Huff and a balanced wavelet tree (fixed-width codes): the tree
shape is entirely determined by the code assigned to each symbol.  Each node
stores one bit vector (plain or RRR, see :mod:`repro.wavelet.factories`)
holding, for every sequence element routed through that node, the next bit of
its code.

``rank(symbol, i)`` walks the code of ``symbol`` from the root, performing one
bit-vector rank per level — exactly the access pattern whose cost the paper
analyses (Theorem 1: O(1 + H0) expected levels for a Huffman shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import AlphabetError, ConstructionError, QueryError
from ..succinct import build_huffman_code, frequencies_of
from .factories import BitVectorFactory, BitVectorLike, plain_bitvector_factory


@dataclass
class _Node:
    """Internal wavelet-tree node: a bit vector plus child links."""

    bitvector: BitVectorLike | None = None
    children: dict[int, "_Node"] = field(default_factory=dict)
    symbol: int | None = None  # set on leaves

    @property
    def is_leaf(self) -> bool:
        return self.symbol is not None


class WaveletTree:
    """A wavelet tree for an integer sequence under a given prefix-free code.

    Parameters
    ----------
    sequence:
        The integer sequence to index.
    codes:
        Mapping from every distinct symbol of ``sequence`` to its code, a
        tuple of bits (root-to-leaf).  The code must be prefix-free.
    bitvector_factory:
        Backend used for the per-node bit vectors.
    """

    def __init__(
        self,
        sequence: Sequence[int] | np.ndarray,
        codes: Mapping[int, tuple[int, ...]],
        bitvector_factory: BitVectorFactory | None = None,
    ):
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.size == 0:
            raise ConstructionError("cannot build a wavelet tree over an empty sequence")
        factory = bitvector_factory or plain_bitvector_factory()
        self._n = int(seq.size)
        self._codes: dict[int, tuple[int, ...]] = {int(s): tuple(c) for s, c in codes.items()}

        present = set(int(s) for s in np.unique(seq))
        missing = present - set(self._codes)
        if missing:
            raise ConstructionError(f"codes missing for symbols: {sorted(missing)[:5]}...")

        # Route every element through the tree level by level, materialising
        # per-node bit lists, then freeze them into bit vectors.
        root_bits: dict[tuple[int, ...], list[int]] = {(): []}
        node_sequences: dict[tuple[int, ...], list[int]] = {(): [int(x) for x in seq]}
        bit_lists: dict[tuple[int, ...], list[int]] = {}
        max_len = max(len(code) for code in self._codes.values())
        del root_bits

        prefixes_by_level: list[list[tuple[int, ...]]] = [[()]]
        for level in range(max_len):
            next_sequences: dict[tuple[int, ...], list[int]] = {}
            level_prefixes: list[tuple[int, ...]] = []
            for prefix in prefixes_by_level[level]:
                elements = node_sequences.get(prefix)
                if not elements:
                    continue
                bits: list[int] = []
                left: list[int] = []
                right: list[int] = []
                all_leaf = True
                for symbol in elements:
                    code = self._codes[symbol]
                    if len(code) <= level:
                        # This can only happen for non-prefix-free codes.
                        raise ConstructionError("codes are not prefix-free")
                    bit = code[level]
                    bits.append(bit)
                    if len(code) > level + 1:
                        all_leaf = False
                    (right if bit else left).append(symbol)
                bit_lists[prefix] = bits
                child_left = prefix + (0,)
                child_right = prefix + (1,)
                if left and any(len(self._codes[s]) > level + 1 for s in set(left)):
                    next_sequences[child_left] = left
                    level_prefixes.append(child_left)
                if right and any(len(self._codes[s]) > level + 1 for s in set(right)):
                    next_sequences[child_right] = right
                    level_prefixes.append(child_right)
            node_sequences = next_sequences
            prefixes_by_level.append(level_prefixes)
            if not level_prefixes:
                break

        self._bitvectors: dict[tuple[int, ...], BitVectorLike] = {
            prefix: factory(bits) for prefix, bits in bit_lists.items()
        }
        self._frequencies = frequencies_of(int(x) for x in seq)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def codes(self) -> dict[int, tuple[int, ...]]:
        """The prefix-free code used to shape the tree."""
        return dict(self._codes)

    def depth_of(self, symbol: int) -> int:
        """Code length of ``symbol`` (number of bit-vector ranks per query)."""
        try:
            return len(self._codes[int(symbol)])
        except KeyError:
            raise AlphabetError(f"symbol {symbol} not in the wavelet tree alphabet") from None

    def rank(self, symbol: int, i: int) -> int:
        """Number of occurrences of ``symbol`` in ``sequence[0:i]`` (exclusive)."""
        if not 0 <= i <= self._n:
            raise QueryError(f"rank position {i} out of range [0, {self._n}]")
        code = self._codes.get(int(symbol))
        if code is None:
            return 0
        position = i
        prefix: tuple[int, ...] = ()
        for bit in code:
            bitvector = self._bitvectors.get(prefix)
            if bitvector is None:
                return 0
            position = bitvector.rank1(position) if bit else bitvector.rank0(position)
            if position == 0:
                return 0
            prefix = prefix + (bit,)
        return position

    def access(self, i: int) -> int:
        """Return ``sequence[i]``."""
        if not 0 <= i < self._n:
            raise QueryError(f"access position {i} out of range [0, {self._n})")
        prefix: tuple[int, ...] = ()
        position = i
        while True:
            bitvector = self._bitvectors.get(prefix)
            if bitvector is None:
                # We've walked past the last stored level: the accumulated
                # prefix is a complete code.
                break
            bit = bitvector.access(position)
            position = bitvector.rank1(position) if bit else bitvector.rank0(position)
            prefix = prefix + (bit,)
            if self._prefix_is_complete_code(prefix):
                break
        return self._symbol_of_code(prefix)

    def _prefix_is_complete_code(self, prefix: tuple[int, ...]) -> bool:
        return prefix in self._code_to_symbol

    def _symbol_of_code(self, code: tuple[int, ...]) -> int:
        try:
            return self._code_to_symbol[code]
        except KeyError:
            raise QueryError(f"bit path {code} does not correspond to a symbol") from None

    @property
    def _code_to_symbol(self) -> dict[tuple[int, ...], int]:
        cached = getattr(self, "_code_to_symbol_cache", None)
        if cached is None:
            cached = {code: symbol for symbol, code in self._codes.items()}
            self._code_to_symbol_cache = cached
        return cached

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self) -> int:
        """Total size: per-node bit vectors plus tree topology overhead.

        Each stored node is charged two 64-bit pointers (children) as the
        structural overhead the paper refers to when discussing Huffman-tree
        pointers; leaves are charged one symbol entry of ``ceil(lg sigma)``
        bits via the code table.
        """
        bits = sum(bv.size_in_bits() for bv in self._bitvectors.values())
        bits += len(self._bitvectors) * 2 * 64
        sigma = max(self._codes) + 1 if self._codes else 1
        symbol_bits = max(int(sigma - 1).bit_length(), 1)
        bits += len(self._codes) * symbol_bits
        return bits

    def node_count(self) -> int:
        """Number of internal (bit-vector-bearing) nodes."""
        return len(self._bitvectors)

    def average_depth(self) -> float:
        """Average code length weighted by symbol frequency."""
        total = sum(self._frequencies.values())
        if total == 0:
            return 0.0
        weighted = sum(len(self._codes[s]) * c for s, c in self._frequencies.items())
        return weighted / total


def fixed_width_codes(symbols: Sequence[int]) -> dict[int, tuple[int, ...]]:
    """Assign fixed-width binary codes to ``symbols`` (for a balanced tree)."""
    distinct = sorted(set(int(s) for s in symbols))
    if not distinct:
        raise ConstructionError("cannot assign codes to an empty alphabet")
    width = max((len(distinct) - 1).bit_length(), 1)
    codes: dict[int, tuple[int, ...]] = {}
    for index, symbol in enumerate(distinct):
        codes[symbol] = tuple((index >> (width - 1 - level)) & 1 for level in range(width))
    return codes


class HuffmanWaveletTree(WaveletTree):
    """Huffman-shaped wavelet tree (HWT): the tree of Section II-A4.

    The tree shape is the Huffman tree of the stored sequence, so frequent
    symbols sit near the root and both space and expected rank time are
    O(1 + H0) per symbol (Theorem 1).
    """

    def __init__(
        self,
        sequence: Sequence[int] | np.ndarray,
        bitvector_factory: BitVectorFactory | None = None,
    ):
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.size == 0:
            raise ConstructionError("cannot build an HWT over an empty sequence")
        frequencies = frequencies_of(int(x) for x in seq)
        code = build_huffman_code(frequencies)
        super().__init__(seq, code.codes, bitvector_factory=bitvector_factory)


class BalancedWaveletTree(WaveletTree):
    """Balanced (fixed-depth) wavelet tree over the symbols present."""

    def __init__(
        self,
        sequence: Sequence[int] | np.ndarray,
        bitvector_factory: BitVectorFactory | None = None,
    ):
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.size == 0:
            raise ConstructionError("cannot build a wavelet tree over an empty sequence")
        codes = fixed_width_codes([int(x) for x in seq])
        super().__init__(seq, codes, bitvector_factory=bitvector_factory)
