"""Bit-vector backends for wavelet structures.

Every wavelet tree / matrix in this package stores one bit vector per node or
level.  Which succinct dictionary backs those bit vectors determines the
index variant:

* plain :class:`~repro.succinct.BitVector` → uncompressed indexes (``UFMI``);
* :class:`~repro.succinct.RRRBitVector` → implicit-compression-boosting
  indexes (``ICB-Huff``, ``ICB-WM``) and CiNCT itself, with the block-size
  parameter ``b`` from the paper.

Both built-in backends also expose the vectorized batch primitives
(``rank1_many`` / ``rank0_many`` / ``access_many``); the module-level helpers
below dispatch to them when available and fall back to scalar loops so that
custom backends implementing only the minimal protocol keep working.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from ..succinct import BitVector, RRRBitVector


class BitVectorLike(Protocol):
    """Minimal interface required from a bit-vector backend."""

    def __len__(self) -> int: ...

    def access(self, i: int) -> int: ...

    def rank1(self, i: int) -> int: ...

    def rank0(self, i: int) -> int: ...

    def size_in_bits(self) -> int: ...


BitVectorFactory = Callable[[Sequence[int]], BitVectorLike]


def rank1_many(bitvector: BitVectorLike, positions: np.ndarray) -> np.ndarray:
    """Batched ``rank1``: native when the backend provides it, else a loop."""
    batched = getattr(bitvector, "rank1_many", None)
    if batched is not None:
        return batched(positions)
    return np.asarray([bitvector.rank1(int(p)) for p in positions], dtype=np.int64)


def access_many(bitvector: BitVectorLike, positions: np.ndarray) -> np.ndarray:
    """Batched ``access``: native when the backend provides it, else a loop."""
    batched = getattr(bitvector, "access_many", None)
    if batched is not None:
        return batched(positions)
    return np.asarray([bitvector.access(int(p)) for p in positions], dtype=np.int64)


def build_many(
    factory: BitVectorFactory, bits: np.ndarray, boundaries: np.ndarray
) -> list[BitVectorLike]:
    """Build one bit vector per segment of ``bits``.

    Uses the factory's bulk constructor when it exposes one (both built-in
    factories do — a whole wavelet level's nodes are then packed and
    popcounted with a handful of whole-array numpy calls); otherwise falls
    back to one factory call per segment.
    """
    bulk = getattr(factory, "build_many", None)
    if bulk is not None:
        return bulk(bits, boundaries)
    return [
        factory(bits[boundaries[i] : boundaries[i + 1]]) for i in range(len(boundaries) - 1)
    ]


def plain_bitvector_factory() -> BitVectorFactory:
    """Return a factory producing plain (uncompressed) bit vectors."""

    def factory(bits: Sequence[int]) -> BitVector:
        return BitVector(bits)

    factory.build_many = BitVector.build_many  # type: ignore[attr-defined]
    return factory


def rrr_bitvector_factory(block_size: int = 63, sample_rate: int = 32) -> BitVectorFactory:
    """Return a factory producing RRR-compressed bit vectors.

    Parameters
    ----------
    block_size:
        The RRR block size ``b`` (15, 31 or 63 in the paper's experiments).
    sample_rate:
        Blocks between absolute rank samples.
    """

    def factory(bits: Sequence[int]) -> RRRBitVector:
        return RRRBitVector(bits, block_size=block_size, sample_rate=sample_rate)

    def bulk(bits: np.ndarray, boundaries: np.ndarray) -> list[RRRBitVector]:
        return RRRBitVector.build_many(
            bits, boundaries, block_size=block_size, sample_rate=sample_rate
        )

    factory.build_many = bulk  # type: ignore[attr-defined]
    return factory
