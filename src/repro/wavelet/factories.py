"""Bit-vector backends for wavelet structures.

Every wavelet tree / matrix in this package stores one bit vector per node or
level.  Which succinct dictionary backs those bit vectors determines the
index variant:

* plain :class:`~repro.succinct.BitVector` → uncompressed indexes (``UFMI``);
* :class:`~repro.succinct.RRRBitVector` → implicit-compression-boosting
  indexes (``ICB-Huff``, ``ICB-WM``) and CiNCT itself, with the block-size
  parameter ``b`` from the paper.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from ..succinct import BitVector, RRRBitVector


class BitVectorLike(Protocol):
    """Minimal interface required from a bit-vector backend."""

    def __len__(self) -> int: ...

    def access(self, i: int) -> int: ...

    def rank1(self, i: int) -> int: ...

    def rank0(self, i: int) -> int: ...

    def size_in_bits(self) -> int: ...


BitVectorFactory = Callable[[Sequence[int]], BitVectorLike]


def plain_bitvector_factory() -> BitVectorFactory:
    """Return a factory producing plain (uncompressed) bit vectors."""

    def factory(bits: Sequence[int]) -> BitVector:
        return BitVector(bits)

    return factory


def rrr_bitvector_factory(block_size: int = 63, sample_rate: int = 32) -> BitVectorFactory:
    """Return a factory producing RRR-compressed bit vectors.

    Parameters
    ----------
    block_size:
        The RRR block size ``b`` (15, 31 or 63 in the paper's experiments).
    sample_rate:
        Blocks between absolute rank samples.
    """

    def factory(bits: Sequence[int]) -> RRRBitVector:
        return RRRBitVector(bits, block_size=block_size, sample_rate=sample_rate)

    return factory
