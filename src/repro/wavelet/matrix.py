"""Wavelet matrix (Claude & Navarro, SPIRE'12).

The wavelet matrix is the structure used by the ``UFMI`` and ``ICB-WM``
baselines of the paper (Table II).  It stores one bit vector per bit level of
the symbols: at each level the sequence is stably partitioned into the
elements whose current bit is 0 followed by those whose bit is 1, and the
number of zeros ``z[level]`` is remembered.  Rank and access then require
exactly ``ceil(lg sigma)`` bit-vector ranks, independent of symbol frequency —
which is precisely the behaviour CiNCT improves upon by shrinking the
effective alphabet.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConstructionError, QueryError
from .factories import (
    BitVectorFactory,
    BitVectorLike,
    access_many,
    plain_bitvector_factory,
    rank1_many,
)


class WaveletMatrix:
    """Wavelet matrix over an integer sequence.

    Parameters
    ----------
    sequence:
        Non-negative integer sequence to index.
    sigma:
        Alphabet size; inferred as ``max(sequence) + 1`` when omitted.
    bitvector_factory:
        Succinct-dictionary backend for the per-level bit vectors.
    """

    def __init__(
        self,
        sequence: Sequence[int] | np.ndarray,
        sigma: int | None = None,
        bitvector_factory: BitVectorFactory | None = None,
    ):
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.size == 0:
            raise ConstructionError("cannot build a wavelet matrix over an empty sequence")
        if int(seq.min()) < 0:
            raise ConstructionError("wavelet matrix requires non-negative symbols")
        factory = bitvector_factory or plain_bitvector_factory()
        max_symbol = int(seq.max())
        if sigma is None:
            sigma = max_symbol + 1
        elif sigma <= max_symbol:
            raise ConstructionError(f"sigma {sigma} too small for max symbol {max_symbol}")
        self._n = int(seq.size)
        self._sigma = int(sigma)
        self._levels = max(int(sigma - 1).bit_length(), 1)

        self._bitvectors: list[BitVectorLike] = []
        self._zeros: list[int] = []
        current = seq
        for level in range(self._levels):
            shift = self._levels - 1 - level
            bits = (current >> shift) & 1
            self._bitvectors.append(factory(bits))
            zeros_mask = bits == 0
            self._zeros.append(int(np.count_nonzero(zeros_mask)))
            current = np.concatenate([current[zeros_mask], current[~zeros_mask]])

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        """Alphabet size the matrix was built for."""
        return self._sigma

    @property
    def levels(self) -> int:
        """Number of bit levels (``ceil(lg sigma)``)."""
        return self._levels

    def rank(self, symbol: int, i: int) -> int:
        """Number of occurrences of ``symbol`` in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise QueryError(f"rank position {i} out of range [0, {self._n}]")
        if not 0 <= symbol < self._sigma:
            return 0
        start, end = 0, i
        for level in range(self._levels):
            shift = self._levels - 1 - level
            bit = (symbol >> shift) & 1
            bitvector = self._bitvectors[level]
            if bit == 0:
                start = bitvector.rank0(start)
                end = bitvector.rank0(end)
            else:
                zeros = self._zeros[level]
                start = zeros + bitvector.rank1(start)
                end = zeros + bitvector.rank1(end)
            if start >= end:
                return 0
        return end - start

    def rank_many(self, symbol: int, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank` of one symbol over many positions.

        Walks the levels once; each level performs a single batched
        ``rank1_many`` over the interleaved start/end frontier instead of two
        scalar ranks per query.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) > self._n:
            raise QueryError(f"rank positions out of range [0, {self._n}]")
        if not 0 <= symbol < self._sigma:
            return np.zeros(pos.size, dtype=np.int64)
        start = np.zeros(pos.size, dtype=np.int64)
        end = pos.copy()
        for level in range(self._levels):
            shift = self._levels - 1 - level
            bit = (symbol >> shift) & 1
            bitvector = self._bitvectors[level]
            frontier = np.concatenate([start, end])
            ones = rank1_many(bitvector, frontier)
            if bit == 0:
                start = frontier[: pos.size] - ones[: pos.size]
                end = frontier[pos.size :] - ones[pos.size :]
            else:
                zeros = self._zeros[level]
                start = zeros + ones[: pos.size]
                end = zeros + ones[pos.size :]
        return np.maximum(end - start, 0)

    def access(self, i: int) -> int:
        """Return ``sequence[i]``."""
        if not 0 <= i < self._n:
            raise QueryError(f"access position {i} out of range [0, {self._n})")
        symbol = 0
        position = i
        for level in range(self._levels):
            bitvector = self._bitvectors[level]
            bit = bitvector.access(position)
            symbol = (symbol << 1) | bit
            if bit == 0:
                position = bitvector.rank0(position)
            else:
                position = self._zeros[level] + bitvector.rank1(position)
        return symbol

    def access_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`access` over an array of positions."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) >= self._n:
            raise QueryError(f"access positions out of range [0, {self._n})")
        symbols = np.zeros(pos.size, dtype=np.int64)
        current = pos.copy()
        for level in range(self._levels):
            bitvector = self._bitvectors[level]
            bits = access_many(bitvector, current)
            ones = rank1_many(bitvector, current)
            symbols = (symbols << 1) | bits
            current = np.where(bits == 1, self._zeros[level] + ones, current - ones)
        return symbols

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self) -> int:
        """Per-level bit vectors plus one zero-counter per level."""
        bits = sum(bv.size_in_bits() for bv in self._bitvectors)
        bits += self._levels * 64
        return bits

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"WaveletMatrix(n={self._n}, sigma={self._sigma}, levels={self._levels})"
