"""HMM map matching of GPS traces onto road networks."""

from .hmm import HMMMapMatcher, match_traces

__all__ = ["HMMMapMatcher", "match_traces"]
