"""HMM map matching (Newson & Krumm, GIS'09 style).

The Roma dataset of the paper is obtained by HMM map matching of taxi GPS
traces.  This module implements the standard formulation:

* hidden states are candidate road segments for each GPS point (segments
  whose midpoint lies within ``candidate_radius`` of the observation);
* the emission probability of a candidate is a Gaussian in the distance
  between the observation and the segment;
* the transition probability between consecutive candidates decays
  exponentially in the difference between the great-circle (here Euclidean)
  distance of the observations and the routing distance between the
  candidates;
* the most likely segment sequence is recovered with the Viterbi algorithm
  and collapsed into an NCT (consecutive duplicates removed, and physically
  disconnected jumps joined by shortest paths when requested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from ..exceptions import DatasetError, NetworkError
from ..network.road_network import EdgeId, RoadNetwork
from ..trajectories.gps import GPSTrace
from ..trajectories.model import Trajectory


@dataclass
class HMMMapMatcher:
    """Map matcher with the Newson–Krumm emission/transition model.

    Parameters
    ----------
    network:
        The road network to match onto.
    gps_noise_std:
        Standard deviation of the Gaussian emission model.
    transition_beta:
        Scale of the exponential transition model.
    candidate_radius:
        Observations consider every segment whose geometric distance is within
        this radius as a candidate state.
    connect_gaps:
        When true, physically disconnected consecutive matches are joined with
        shortest paths so that the output is a valid NCT.
    """

    network: RoadNetwork
    gps_noise_std: float = 10.0
    transition_beta: float = 50.0
    candidate_radius: float = 75.0
    connect_gaps: bool = True

    def __post_init__(self) -> None:
        if self.gps_noise_std <= 0 or self.transition_beta <= 0 or self.candidate_radius <= 0:
            raise DatasetError("map-matcher scale parameters must be positive")
        self._node_distances: dict[Hashable, dict[Hashable, float]] | None = None
        # Spatial hash of segment midpoints: candidate lookup only scans the
        # 3x3 neighbourhood of buckets around the observation instead of every
        # segment, which keeps matching linear in the trace length.
        self._bucket_size = max(self.candidate_radius, 1e-9)
        self._buckets: dict[tuple[int, int], list[EdgeId]] = {}
        for edge_id in self.network.edges():
            x, y = self.network.edge_midpoint(edge_id)
            key = (int(x // self._bucket_size), int(y // self._bucket_size))
            self._buckets.setdefault(key, []).append(edge_id)

    # ------------------------------------------------------------------ #
    # model components
    # ------------------------------------------------------------------ #
    def _point_to_segment_distance(self, x: float, y: float, edge_id: EdgeId) -> float:
        segment = self.network.segment(edge_id)
        ax, ay = self.network.coordinate(segment.tail)
        bx, by = self.network.coordinate(segment.head)
        dx, dy = bx - ax, by - ay
        norm_sq = dx * dx + dy * dy
        if norm_sq == 0:
            return math.hypot(x - ax, y - ay)
        t = max(0.0, min(1.0, ((x - ax) * dx + (y - ay) * dy) / norm_sq))
        px, py = ax + t * dx, ay + t * dy
        return math.hypot(x - px, y - py)

    def _nearby_edges(self, x: float, y: float) -> list[EdgeId]:
        bucket_x = int(x // self._bucket_size)
        bucket_y = int(y // self._bucket_size)
        nearby: list[EdgeId] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                nearby.extend(self._buckets.get((bucket_x + dx, bucket_y + dy), ()))
        return nearby

    def candidates(self, x: float, y: float) -> list[tuple[EdgeId, float]]:
        """Candidate segments for an observation, with their distances."""
        found: list[tuple[EdgeId, float]] = []
        for edge_id in self._nearby_edges(x, y):
            distance = self._point_to_segment_distance(x, y, edge_id)
            if distance <= self.candidate_radius:
                found.append((edge_id, distance))
        if not found:
            # Fall back to the nearest segment so matching never dead-ends.
            nearest = min(
                self.network.edges(),
                key=lambda edge_id: self._point_to_segment_distance(x, y, edge_id),
            )
            found = [(nearest, self._point_to_segment_distance(x, y, nearest))]
        return found

    def emission_log_probability(self, distance: float) -> float:
        """Log of the Gaussian emission density at ``distance``."""
        sigma = self.gps_noise_std
        return -0.5 * (distance / sigma) ** 2 - math.log(sigma * math.sqrt(2 * math.pi))

    def _routing_distance(self, from_edge: EdgeId, to_edge: EdgeId) -> float:
        if from_edge == to_edge:
            return 0.0
        head = self.network.segment(from_edge).head
        tail = self.network.segment(to_edge).tail
        distances = self._node_distance_table()
        route = distances.get(head, {}).get(tail)
        if route is None:
            return math.inf
        return route + self.network.segment(to_edge).length

    def _node_distance_table(self) -> dict[Hashable, dict[Hashable, float]]:
        if self._node_distances is None:
            self._node_distances = self.network.all_pairs_shortest_lengths()
        return self._node_distances

    def transition_log_probability(
        self, from_edge: EdgeId, to_edge: EdgeId, straight_line: float
    ) -> float:
        """Log of the exponential transition density."""
        route = self._routing_distance(from_edge, to_edge)
        if math.isinf(route):
            return -math.inf
        delta = abs(straight_line - route)
        return -delta / self.transition_beta - math.log(self.transition_beta)

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def match(self, trace: GPSTrace) -> Trajectory:
        """Match a GPS trace onto the network and return the recovered NCT."""
        if len(trace) == 0:
            raise DatasetError("cannot match an empty GPS trace")
        observations = trace.points
        candidate_sets = [self.candidates(p.x, p.y) for p in observations]

        # Viterbi over the candidate lattice.
        scores: list[dict[EdgeId, float]] = []
        backpointers: list[dict[EdgeId, EdgeId | None]] = []
        first_scores = {
            edge_id: self.emission_log_probability(distance)
            for edge_id, distance in candidate_sets[0]
        }
        scores.append(first_scores)
        backpointers.append({edge_id: None for edge_id in first_scores})

        for index in range(1, len(observations)):
            previous_point = observations[index - 1]
            point = observations[index]
            straight_line = math.hypot(point.x - previous_point.x, point.y - previous_point.y)
            layer_scores: dict[EdgeId, float] = {}
            layer_back: dict[EdgeId, EdgeId | None] = {}
            for edge_id, distance in candidate_sets[index]:
                emission = self.emission_log_probability(distance)
                best_score = -math.inf
                best_previous: EdgeId | None = None
                for previous_edge, previous_score in scores[index - 1].items():
                    if math.isinf(previous_score):
                        continue
                    transition = self.transition_log_probability(previous_edge, edge_id, straight_line)
                    candidate_score = previous_score + transition
                    if candidate_score > best_score:
                        best_score = candidate_score
                        best_previous = previous_edge
                if best_previous is None:
                    # No reachable predecessor: restart the chain here.
                    best_score = max(scores[index - 1].values(), default=0.0)
                    best_previous = max(scores[index - 1], key=scores[index - 1].get, default=None)
                layer_scores[edge_id] = best_score + emission
                layer_back[edge_id] = best_previous
            scores.append(layer_scores)
            backpointers.append(layer_back)

        # Backtrack.
        last_layer = scores[-1]
        current = max(last_layer, key=last_layer.get)
        matched = [current]
        for index in range(len(observations) - 1, 0, -1):
            current = backpointers[index][current]
            if current is None:
                current = matched[-1]
            matched.append(current)
        matched.reverse()

        return self._collapse(matched, trace)

    def _collapse(self, matched: list[EdgeId], trace: GPSTrace) -> Trajectory:
        """Remove consecutive duplicates and optionally stitch gaps."""
        edges: list[EdgeId] = [matched[0]]
        times: list[float] = [trace.points[0].timestamp]
        for index in range(1, len(matched)):
            edge_id = matched[index]
            if edge_id == edges[-1]:
                continue
            if self.connect_gaps and self.network.segment(edges[-1]).head != self.network.segment(edge_id).tail:
                try:
                    filler = self.network.shortest_path_between_edges(edges[-1], edge_id)
                except NetworkError:
                    filler = []
                for filler_edge in filler:
                    edges.append(filler_edge)
                    times.append(trace.points[index].timestamp)
            edges.append(edge_id)
            times.append(trace.points[index].timestamp)
        return Trajectory(edges=edges, timestamps=times, trajectory_id=trace.source_trajectory_id)


def match_traces(matcher: HMMMapMatcher, traces: list[GPSTrace]) -> list[Trajectory]:
    """Match a batch of traces, skipping the (rare) degenerate single-edge results."""
    matched: list[Trajectory] = []
    for trace in traces:
        trajectory = matcher.match(trace)
        if len(trajectory) >= 2:
            matched.append(trajectory)
    if not matched:
        raise DatasetError("map matching produced no usable trajectories")
    return matched
