"""Directed road-network model.

The paper's data are trajectories over a road network whose *edges* (road
segments) are the alphabet.  :class:`RoadNetwork` therefore exposes both the
node view (for routing and map matching) and the edge view (for trajectory
generation and the ET-graph): two road segments are consecutive in an NCT only
when the head node of the first is the tail node of the second.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

from ..exceptions import NetworkError

EdgeId = tuple[Hashable, Hashable]


@dataclass(frozen=True)
class RoadSegment:
    """One directed road segment (graph edge)."""

    tail: Hashable
    head: Hashable
    length: float

    @property
    def edge_id(self) -> EdgeId:
        """The ``(tail, head)`` pair used as the segment identifier."""
        return (self.tail, self.head)


class RoadNetwork:
    """A directed road network with planar node coordinates.

    Parameters
    ----------
    coordinates:
        Mapping from node ID to ``(x, y)`` coordinates.
    edges:
        Iterable of ``(tail, head)`` pairs; edge lengths default to the
        Euclidean distance between the endpoints.
    """

    def __init__(
        self,
        coordinates: dict[Hashable, tuple[float, float]],
        edges: Iterable[EdgeId],
    ):
        self._coordinates = dict(coordinates)
        self._segments: dict[EdgeId, RoadSegment] = {}
        self._out_edges: dict[Hashable, list[EdgeId]] = {node: [] for node in self._coordinates}
        self._in_edges: dict[Hashable, list[EdgeId]] = {node: [] for node in self._coordinates}
        for tail, head in edges:
            if tail not in self._coordinates or head not in self._coordinates:
                raise NetworkError(f"edge ({tail!r}, {head!r}) references an unknown node")
            length = self.euclidean(tail, head)
            segment = RoadSegment(tail=tail, head=head, length=length)
            if segment.edge_id in self._segments:
                continue
            self._segments[segment.edge_id] = segment
            self._out_edges[tail].append(segment.edge_id)
            self._in_edges[head].append(segment.edge_id)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of intersections."""
        return len(self._coordinates)

    @property
    def n_edges(self) -> int:
        """Number of directed road segments (the alphabet size of NCTs)."""
        return len(self._segments)

    def nodes(self) -> Iterator[Hashable]:
        """Iterate over node IDs."""
        return iter(self._coordinates)

    def edges(self) -> Iterator[EdgeId]:
        """Iterate over road-segment IDs in insertion order."""
        return iter(self._segments)

    def coordinate(self, node: Hashable) -> tuple[float, float]:
        """Planar coordinates of a node."""
        try:
            return self._coordinates[node]
        except KeyError:
            raise NetworkError(f"unknown node: {node!r}") from None

    def segment(self, edge_id: EdgeId) -> RoadSegment:
        """The :class:`RoadSegment` for an edge ID."""
        try:
            return self._segments[edge_id]
        except KeyError:
            raise NetworkError(f"unknown road segment: {edge_id!r}") from None

    def has_edge(self, edge_id: EdgeId) -> bool:
        """True when the directed segment exists."""
        return edge_id in self._segments

    def out_edges(self, node: Hashable) -> list[EdgeId]:
        """Directed segments leaving ``node``."""
        try:
            return list(self._out_edges[node])
        except KeyError:
            raise NetworkError(f"unknown node: {node!r}") from None

    def in_edges(self, node: Hashable) -> list[EdgeId]:
        """Directed segments entering ``node``."""
        try:
            return list(self._in_edges[node])
        except KeyError:
            raise NetworkError(f"unknown node: {node!r}") from None

    def successor_edges(self, edge_id: EdgeId) -> list[EdgeId]:
        """Segments a vehicle can take immediately after ``edge_id``."""
        return self.out_edges(self.segment(edge_id).head)

    def euclidean(self, node_a: Hashable, node_b: Hashable) -> float:
        """Euclidean distance between two nodes."""
        ax, ay = self.coordinate(node_a)
        bx, by = self.coordinate(node_b)
        return math.hypot(ax - bx, ay - by)

    def edge_midpoint(self, edge_id: EdgeId) -> tuple[float, float]:
        """Midpoint of a segment, used by the GPS simulator and map matcher."""
        segment = self.segment(edge_id)
        ax, ay = self.coordinate(segment.tail)
        bx, by = self.coordinate(segment.head)
        return ((ax + bx) / 2.0, (ay + by) / 2.0)

    def turn_angle(self, from_edge: EdgeId, to_edge: EdgeId) -> float:
        """Absolute turn angle (radians) between two consecutive segments."""
        a = self.segment(from_edge)
        b = self.segment(to_edge)
        ax, ay = self.coordinate(a.tail)
        hx, hy = self.coordinate(a.head)
        bx, by = self.coordinate(b.head)
        v1 = (hx - ax, hy - ay)
        v2 = (bx - hx, by - hy)
        n1 = math.hypot(*v1)
        n2 = math.hypot(*v2)
        if n1 == 0 or n2 == 0:
            return 0.0
        cos_angle = max(-1.0, min(1.0, (v1[0] * v2[0] + v1[1] * v2[1]) / (n1 * n2)))
        return math.acos(cos_angle)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def shortest_path_nodes(self, source: Hashable, target: Hashable) -> list[Hashable]:
        """Dijkstra shortest node path from ``source`` to ``target``.

        Raises :class:`NetworkError` when the target is unreachable.
        """
        if source == target:
            return [source]
        distances: dict[Hashable, float] = {source: 0.0}
        previous: dict[Hashable, Hashable] = {}
        heap: list[tuple[float, int, Hashable]] = [(0.0, 0, source)]
        counter = 1
        visited: set[Hashable] = set()
        while heap:
            distance, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == target:
                break
            for edge_id in self._out_edges.get(node, []):
                segment = self._segments[edge_id]
                candidate = distance + segment.length
                if candidate < distances.get(segment.head, math.inf):
                    distances[segment.head] = candidate
                    previous[segment.head] = node
                    heapq.heappush(heap, (candidate, counter, segment.head))
                    counter += 1
        if target not in visited:
            raise NetworkError(f"no path from {source!r} to {target!r}")
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        return list(reversed(path))

    def shortest_path_edges(self, source: Hashable, target: Hashable) -> list[EdgeId]:
        """Shortest path as a sequence of road segments."""
        nodes = self.shortest_path_nodes(source, target)
        return [(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)]

    def shortest_path_between_edges(self, from_edge: EdgeId, to_edge: EdgeId) -> list[EdgeId]:
        """Segments connecting the head of ``from_edge`` to the tail of ``to_edge``.

        Used to interpolate "gapped" transitions (the Singapore-2 preprocessing
        described in Section VI-A4).  The returned list excludes both
        endpoints and may be empty when the edges are already consecutive.
        """
        head = self.segment(from_edge).head
        tail = self.segment(to_edge).tail
        if head == tail:
            return []
        return self.shortest_path_edges(head, tail)

    def shortest_path_length(self, source: Hashable, target: Hashable) -> float:
        """Length of the shortest node path."""
        nodes = self.shortest_path_nodes(source, target)
        return sum(
            self._segments[(nodes[i], nodes[i + 1])].length for i in range(len(nodes) - 1)
        )

    def all_pairs_shortest_lengths(self) -> dict[Hashable, dict[Hashable, float]]:
        """All-pairs shortest path lengths (used by the HMM map matcher).

        Runs one Dijkstra per node; intended for the modest networks used in
        tests and benchmarks.
        """
        result: dict[Hashable, dict[Hashable, float]] = {}
        for source in self._coordinates:
            distances: dict[Hashable, float] = {source: 0.0}
            heap: list[tuple[float, int, Hashable]] = [(0.0, 0, source)]
            counter = 1
            done: set[Hashable] = set()
            while heap:
                distance, _, node = heapq.heappop(heap)
                if node in done:
                    continue
                done.add(node)
                for edge_id in self._out_edges.get(node, []):
                    segment = self._segments[edge_id]
                    candidate = distance + segment.length
                    if candidate < distances.get(segment.head, math.inf):
                        distances[segment.head] = candidate
                        heapq.heappush(heap, (candidate, counter, segment.head))
                        counter += 1
            result[source] = distances
        return result

    def validate_trajectory(self, edges: Sequence[EdgeId]) -> bool:
        """True when consecutive segments are physically connected."""
        for first, second in zip(edges, edges[1:]):
            if self.segment(first).head != self.segment(second).tail:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RoadNetwork(nodes={self.n_nodes}, edges={self.n_edges})"
