"""Synthetic road-network generators.

Two families are used throughout the experiments:

* :func:`grid_network` — a city-like grid with bidirectional streets; the
  average out-degree of its *edge graph* is close to the 3–4 observed for real
  road networks, which is the regime the paper targets.
* :func:`poisson_out_degree_graph` — the "directed random Poisson graph" used
  by the paper's RandWalk experiments (Figs. 12 and 13), where the alphabet
  size ``sigma`` and the average out-degree ``d`` are controlled directly.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from ..exceptions import NetworkError
from .road_network import RoadNetwork


def grid_network(rows: int, cols: int, spacing: float = 100.0, bidirectional: bool = True) -> RoadNetwork:
    """Build a rows x cols grid of intersections joined by straight streets.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (at least 2 x 2).
    spacing:
        Distance between adjacent intersections.
    bidirectional:
        When true every street is two one-way segments (one per direction),
        which is how real road networks are modelled as directed graphs.
    """
    if rows < 2 or cols < 2:
        raise NetworkError("grid_network needs at least a 2x2 grid")
    coordinates: dict[Hashable, tuple[float, float]] = {}
    for r in range(rows):
        for c in range(cols):
            coordinates[(r, c)] = (c * spacing, r * spacing)
    edges: list[tuple[Hashable, Hashable]] = []
    for r in range(rows):
        for c in range(cols):
            here = (r, c)
            for dr, dc in ((0, 1), (1, 0)):
                nr, nc = r + dr, c + dc
                if nr < rows and nc < cols:
                    there = (nr, nc)
                    edges.append((here, there))
                    if bidirectional:
                        edges.append((there, here))
    return RoadNetwork(coordinates, edges)


def poisson_out_degree_graph(
    n_nodes: int,
    average_out_degree: float,
    rng: np.random.Generator,
    allow_dead_ends: bool = False,
) -> RoadNetwork:
    """Directed graph whose out-degrees are Poisson distributed.

    Every node receives ``max(1, Poisson(average_out_degree))`` outgoing edges
    to uniformly random distinct targets (self-loops excluded), matching the
    RandWalk setup of Section VI-E.  Node coordinates are drawn uniformly in
    the unit square so that distance-based utilities still work.

    Parameters
    ----------
    n_nodes:
        Number of vertices.
    average_out_degree:
        Mean of the Poisson out-degree distribution.
    rng:
        Randomness source (pass a seeded generator for reproducibility).
    allow_dead_ends:
        When false (default), each node keeps at least one outgoing edge so
        random walks never get stuck.
    """
    if n_nodes < 2:
        raise NetworkError("poisson_out_degree_graph needs at least two nodes")
    if average_out_degree <= 0:
        raise NetworkError("average_out_degree must be positive")
    coordinates = {
        node: (float(x), float(y))
        for node, (x, y) in enumerate(rng.random((n_nodes, 2)))
    }
    edges: list[tuple[Hashable, Hashable]] = []
    for node in range(n_nodes):
        degree = int(rng.poisson(average_out_degree))
        if not allow_dead_ends:
            degree = max(degree, 1)
        degree = min(degree, n_nodes - 1)
        if degree == 0:
            continue
        targets = rng.choice(n_nodes - 1, size=degree, replace=False)
        for target in targets:
            target = int(target)
            if target >= node:
                target += 1  # skip self-loop
            edges.append((node, target))
    return RoadNetwork(coordinates, edges)


def edge_graph_out_degrees(network: RoadNetwork) -> list[int]:
    """Out-degree of every segment in the edge graph (successor segments)."""
    return [len(network.successor_edges(edge_id)) for edge_id in network.edges()]
