"""Road-network substrate: network model, routing and synthetic generators."""

from .generators import edge_graph_out_degrees, grid_network, poisson_out_degree_graph
from .road_network import EdgeId, RoadNetwork, RoadSegment

__all__ = [
    "RoadNetwork",
    "RoadSegment",
    "EdgeId",
    "grid_network",
    "poisson_out_degree_graph",
    "edge_graph_out_degrees",
]
