"""Relative movement labeling (RML), Section III-B of the paper.

An RML function ``phi(w | w')`` assigns a small positive integer to every
ET-graph edge ``(w', w)`` such that ``phi(. | w')`` is one-to-one for every
context ``w'``.  The paper's optimal strategy sorts the out-neighbours of each
context by decreasing bigram count, giving label 1 to the most frequent
successor (Theorem 3 proves this minimises the zeroth-order entropy of the
labelled BWT).  Two alternative strategies are provided:

* ``"random"`` — a uniformly random permutation of labels per context, the
  baseline of the paper's Fig. 14;
* ``"unigram"`` — labels sorted by the *unigram* frequency of the successor,
  which is exactly the information MEL (Han et al.) uses, letting tests check
  Theorem 6 (RML entropy <= MEL-style entropy) within the same machinery.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from ..exceptions import ConstructionError, QueryError
from .etgraph import ETGraph

LabelingStrategy = Literal["bigram", "random", "unigram"]


class RMLFunction:
    """A concrete relative-movement-labelling function ``phi``.

    Instances are built by :func:`build_rml`; they map ``(context, target)``
    edges to labels (>= 1) and back.
    """

    def __init__(self, label_of: dict[tuple[int, int], int], target_of: dict[tuple[int, int], int]):
        self._label_of = label_of
        self._target_of = target_of
        self._max_label = max(label_of.values(), default=0)
        self._by_context: dict[int, dict[int, int]] = {}
        for (context, target), label in label_of.items():
            self._by_context.setdefault(context, {})[target] = label

    @property
    def max_label(self) -> int:
        """Largest label assigned by this function (alphabet size of phi(Tbwt))."""
        return self._max_label

    def label(self, target: int, context: int) -> int:
        """``phi(target | context)``; raises if the transition was never observed."""
        try:
            return self._label_of[(int(context), int(target))]
        except KeyError:
            raise QueryError(f"phi({target} | {context}) is undefined (no ET-graph edge)") from None

    def has_label(self, target: int, context: int) -> bool:
        """True when ``phi(target | context)`` is defined."""
        return (int(context), int(target)) in self._label_of

    def decode(self, label: int, context: int) -> int:
        """Inverse map: the target ``w`` with ``phi(w | context) == label``."""
        try:
            return self._target_of[(int(context), int(label))]
        except KeyError:
            raise QueryError(f"label {label} is undefined for context {context}") from None

    def labels_for_context(self, context: int) -> dict[int, int]:
        """Return ``{target: label}`` for every out-neighbour of ``context``."""
        return dict(self._by_context.get(int(context), {}))

    def __len__(self) -> int:
        return len(self._label_of)


def build_rml(
    graph: ETGraph,
    strategy: LabelingStrategy = "bigram",
    rng: np.random.Generator | None = None,
    unigram_counts: np.ndarray | None = None,
) -> RMLFunction:
    """Build an RML function over an ET-graph.

    Parameters
    ----------
    graph:
        The ET-graph of the trajectory string.
    strategy:
        ``"bigram"`` (paper's optimal), ``"random"`` (Fig. 14 baseline) or
        ``"unigram"`` (MEL-style ordering; requires ``unigram_counts``).
    rng:
        Source of randomness for the ``"random"`` strategy.
    unigram_counts:
        Per-symbol occurrence counts, required by the ``"unigram"`` strategy.
    """
    if strategy == "random" and rng is None:
        rng = np.random.default_rng(0)
    if strategy == "unigram" and unigram_counts is None:
        raise ConstructionError("the 'unigram' strategy requires unigram_counts")

    label_of: dict[tuple[int, int], int] = {}
    target_of: dict[tuple[int, int], int] = {}
    for context in graph.contexts():
        by_frequency = graph.neighbours_by_frequency(context)
        targets = [target for target, _ in by_frequency]
        if strategy == "bigram":
            ordered = targets
        elif strategy == "random":
            ordered = list(targets)
            rng.shuffle(ordered)  # type: ignore[union-attr]
        elif strategy == "unigram":
            ordered = sorted(targets, key=lambda t: (-int(unigram_counts[t]), t))  # type: ignore[index]
        else:
            raise ConstructionError(f"unknown labelling strategy: {strategy!r}")
        for offset, target in enumerate(ordered, start=1):
            label_of[(context, target)] = offset
            target_of[(context, offset)] = target
    return RMLFunction(label_of, target_of)


def label_bwt(
    bwt: np.ndarray,
    c_array: np.ndarray,
    rml: RMLFunction,
) -> np.ndarray:
    """Apply the RML function to a BWT, producing ``phi(Tbwt)`` (Section III-C1).

    The BWT is partitioned into length-1 context blocks ``[C[w'], C[w'+1])``;
    every symbol in the block of context ``w'`` is replaced by
    ``phi(symbol | w')``.
    """
    labelled = np.zeros(bwt.size, dtype=np.int64)
    sigma = c_array.size - 1
    for context in range(sigma):
        start = int(c_array[context])
        end = int(c_array[context + 1])
        if start == end:
            continue
        mapping = rml.labels_for_context(context)
        block = bwt[start:end]
        labelled[start:end] = [mapping[int(symbol)] for symbol in block]
    return labelled


def labelled_entropy(labelled_bwt: Sequence[int] | np.ndarray) -> float:
    """Zeroth-order empirical entropy of a labelled BWT, ``H0(phi(Tbwt))``."""
    arr = np.asarray(labelled_bwt, dtype=np.int64)
    if arr.size == 0:
        return 0.0
    counts = np.bincount(arr)
    counts = counts[counts > 0]
    probabilities = counts / arr.size
    return float(-(probabilities * np.log2(probabilities)).sum())
