"""Core CiNCT machinery: ET-graph, RML, PseudoRank and the CiNCT index."""

from .cinct import BitVectorBackend, CiNCT, ConstructionBreakdown, reference_index
from .etgraph import ETEdge, ETGraph
from .partitioned import Partition, PartitionedCiNCT
from .pseudorank import CorrectionTerms, compute_correction_terms, pseudo_rank
from .rml import LabelingStrategy, RMLFunction, build_rml, label_bwt, labelled_entropy

__all__ = [
    "CiNCT",
    "ConstructionBreakdown",
    "BitVectorBackend",
    "reference_index",
    "PartitionedCiNCT",
    "Partition",
    "ETGraph",
    "ETEdge",
    "RMLFunction",
    "build_rml",
    "label_bwt",
    "labelled_entropy",
    "LabelingStrategy",
    "CorrectionTerms",
    "compute_correction_terms",
    "pseudo_rank",
]
