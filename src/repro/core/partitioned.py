"""Partitioned CiNCT index for growing trajectory collections.

CiNCT is a static structure; Section III-A of the paper notes that growing
data can be handled "by periodic reconstruction or by constructing an index
for new data at certain time intervals".  This module implements that scheme
as a small LSM arrangement:

* an append-only **mutable tail** absorbs newly arrived trajectories in O(1)
  amortised per symbol — no BWT, no wavelet build — and answers queries
  through a linear-scan adapter until it is compacted;
* every sealed tail (or, with the tail disabled, every batch) becomes one
  immutable CiNCT **partition** built over a *shared* alphabet, so patterns
  are encoded once and queried against every tier;
* queries (count / contains / matching partitions) aggregate over
  ``compressed partitions ∪ tail`` and are bit-identical to a monolithic
  index built over the union of the data;
* a **compaction policy** (``tail_max_symbols`` / ``tail_max_trajectories``,
  ``compaction`` = ``inline`` | ``background`` | ``off``) seals the tail into
  a new partition when thresholds trip, either on the ingesting thread or on
  a background worker with a copy-on-seal handoff (queries keep answering
  over the old view until the new partition atomically swaps in);
* ``max_partitions`` triggers **tiered merging** — the adjacent pair of
  partitions with the smallest combined length is merged, so steady-state
  ingest never re-sorts the whole fleet — while the explicit
  :meth:`PartitionedCiNCT.consolidate` still performs the paper's full
  periodic reconstruction.

The partitions answer exactly the same suffix-range queries as a monolithic
index built over the union of the data; only the suffix *ranges themselves*
are per-partition, which is why the aggregate API exposes counts and matches
rather than raw ``(sp, ep)`` pairs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Hashable, Iterator, Sequence

import numpy as np

from ..exceptions import (
    EMPTY_INDEX_MESSAGE,
    EMPTY_PATH_MESSAGE,
    EMPTY_PATTERN_MESSAGE,
    ConstructionError,
    QueryError,
    symbol_out_of_range_message,
)
from ..fmindex.linear_scan import LinearScanIndex
from ..fmindex.trie import PatternTrie
from ..reliability.faults import maybe_crash_save
from ..strings.alphabet import END_SYMBOL, SEP_SYMBOL, Alphabet
from ..strings.bwt import BWTResult, burrows_wheeler_transform
from ..strings.trajectory_string import TrajectoryString, build_trajectory_string
from .cinct import CiNCT

#: Valid tail-compaction modes.
COMPACTION_MODES = ("inline", "background", "off")

#: Fault-injection stage name checked immediately before a compaction swap
#: publishes (``REPRO_SAVE_CRASH=compaction/swap`` aborts the swap and leaves
#: the pre-swap view serving).
COMPACTION_SWAP_STAGE = "compaction/swap"


@dataclass
class Partition:
    """One immutable CiNCT partition and the data it indexes.

    The BWT artefacts are retained so the persistence layer can store them
    and reload the partition in linear time, never re-sorting suffixes (the
    same contract as the single-index backends).  The trajectory text is
    retained **once**: ``burrows_wheeler_transform`` keeps a no-copy view of
    its int64 input, and ``__post_init__`` rebinds ``trajectory_string.text``
    to the BWT's array whenever the two hold equal but distinct buffers, so a
    partition never stores two copies of the same text.
    """

    index: CiNCT
    trajectory_string: TrajectoryString
    n_trajectories: int
    first_trajectory_id: int
    bwt_result: BWTResult | None = None

    def __post_init__(self) -> None:
        if self.bwt_result is None:
            return
        bwt_text = self.bwt_result.text
        string_text = self.trajectory_string.text
        if (
            bwt_text is not string_text
            and bwt_text.shape == string_text.shape
            and np.array_equal(bwt_text, string_text)
        ):
            self.trajectory_string.text = bwt_text

    def size_in_bits(self) -> int:
        """Index size of this partition (the succinct structures only)."""
        return self.index.size_in_bits()

    def retained_bits(self) -> int:
        """Bits of raw artefacts retained alongside the succinct index.

        Counts the trajectory text exactly once (the dedup in
        ``__post_init__`` makes the string and the BWT share one buffer) plus
        the BWT/suffix-array arrays kept for linear-time persistence.
        """

        def _bits(array: np.ndarray) -> int:
            return int(array.size) * int(array.itemsize) * 8

        bits = _bits(self.trajectory_string.text)
        if self.bwt_result is not None:
            if self.bwt_result.text is not self.trajectory_string.text:
                bits += _bits(self.bwt_result.text)
            bits += _bits(self.bwt_result.bwt)
            bits += _bits(self.bwt_result.suffix_array)
        return bits


@dataclass(frozen=True)
class TailView:
    """Immutable snapshot of the mutable tail, ready to answer queries."""

    trajectory_string: TrajectoryString
    scanner: LinearScanIndex
    first_trajectory_id: int

    @property
    def n_trajectories(self) -> int:
        """Number of trajectories in this snapshot."""
        return self.trajectory_string.n_trajectories

    @property
    def n_symbols(self) -> int:
        """Snapshot text length excluding the terminator."""
        return self.trajectory_string.length - 1


class _TierIntervalView:
    """Tier-scoped view of an engine interval cache for one partition.

    Every key is prefixed with the partition's position in the current
    snapshot.  Positions are stable between growth epochs — any change to the
    partition set (seal, tiered merge, consolidate) coincides with an engine
    epoch bump, which clears the cache — so a tier id plus the
    epoch-invalidation contract uniquely identifies a partition's suffix
    ranges.  The mutable tail never gets a view: it grows without an epoch
    bump, so its ranges must not be remembered.
    """

    __slots__ = ("_cache", "_tier")

    def __init__(self, cache, tier: int):
        self._cache = cache
        self._tier = int(tier)

    @property
    def enabled(self) -> bool:
        return bool(getattr(self._cache, "enabled", True))

    def lookup(self, key: tuple[int, ...]):
        return self._cache.lookup((self._tier,) + key)

    def store(self, key: tuple[int, ...], interval) -> None:
        self._cache.store((self._tier,) + key, interval)

    def deepest(self, keys: Sequence[tuple[int, ...]]):
        tier = self._tier
        return self._cache.deepest([(tier,) + key for key in keys])


@dataclass(frozen=True)
class IndexSnapshot:
    """One consistent ``(compressed partitions, tail)`` observation.

    Every query path captures exactly one snapshot, so a concurrent
    compaction swap can never double-count a trajectory (seen in both the new
    partition and the tail) or drop it (removed from the tail before the
    partition published).
    """

    partitions: tuple[Partition, ...]
    tail: TailView | None

    @property
    def empty(self) -> bool:
        """True when neither tier holds any data."""
        return not self.partitions and self.tail is None


class _MutableTail:
    """Append-only uncompressed tail tier (the LSM level 0).

    The buffer stores the exact reversed/separator-delimited layout
    :func:`~repro.strings.trajectory_string.build_trajectory_string`
    produces, so sealing a prefix into a partition is a pure array slice —
    the sealed text is bit-identical to a fresh build over the same
    trajectories.  Single writer (the owning structure's mutation lock);
    readers go through :class:`TailView` snapshots, which copy the text.
    """

    def __init__(self, first_trajectory_id: int = 0):
        self._buffer = np.zeros(256, dtype=np.int64)
        self._cursor = 0
        self._lengths: list[int] = []
        self._offsets: list[int] = []
        self.first_trajectory_id = first_trajectory_id

    @property
    def n_trajectories(self) -> int:
        return len(self._lengths)

    @property
    def n_symbols(self) -> int:
        """Symbols written so far (edges + separators, excluding the ``#``)."""
        return self._cursor

    def append_symbols(self, symbols: Sequence[int]) -> None:
        """Append one encoded trajectory (travel order) — O(len) amortised."""
        n = len(symbols)
        needed = self._cursor + n + 1
        if needed > self._buffer.size:
            grown = np.zeros(max(needed, 2 * self._buffer.size), dtype=np.int64)
            grown[: self._cursor] = self._buffer[: self._cursor]
            self._buffer = grown
        self._buffer[self._cursor : self._cursor + n] = np.asarray(
            symbols, dtype=np.int64
        )[::-1]
        self._buffer[self._cursor + n] = SEP_SYMBOL
        self._offsets.append(self._cursor)
        self._lengths.append(n)
        self._cursor = needed

    def prefix_string(self, k: int, alphabet: Alphabet) -> TrajectoryString:
        """Copy the first ``k`` trajectories out as a standalone string."""
        if not 0 < k <= self.n_trajectories:
            raise ConstructionError(f"tail prefix {k} out of range")
        end = self._offsets[k - 1] + self._lengths[k - 1] + 1
        text = np.empty(end + 1, dtype=np.int64)
        text[:end] = self._buffer[:end]
        text[end] = END_SYMBOL
        return TrajectoryString(
            text=text,
            alphabet=alphabet,
            trajectory_lengths=list(self._lengths[:k]),
            trajectory_offsets=list(self._offsets[:k]),
        )

    def drop_prefix(self, k: int) -> None:
        """Remove the first ``k`` trajectories (they were sealed elsewhere)."""
        if k <= 0:
            return
        start = self._offsets[k - 1] + self._lengths[k - 1] + 1
        remaining = self._cursor - start
        buffer = np.zeros(max(256, 2 * remaining), dtype=np.int64)
        buffer[:remaining] = self._buffer[start : self._cursor]
        self._buffer = buffer
        self._cursor = remaining
        self._offsets = [offset - start for offset in self._offsets[k:]]
        self._lengths = self._lengths[k:]
        self.first_trajectory_id += k

    def view(self, alphabet: Alphabet) -> TailView | None:
        """A detached queryable snapshot of the whole tail (None when empty)."""
        if not self._lengths:
            return None
        trajectory_string = self.prefix_string(self.n_trajectories, alphabet)
        return TailView(
            trajectory_string=trajectory_string,
            scanner=LinearScanIndex(trajectory_string.text, sigma=alphabet.sigma),
            first_trajectory_id=self.first_trajectory_id,
        )

    def detached_copy(self) -> "_MutableTail":
        """Deep copy used by pickling (process-pool shard sync)."""
        clone = _MutableTail(first_trajectory_id=self.first_trajectory_id)
        clone._buffer = self._buffer[: self._cursor].copy()
        clone._cursor = self._cursor
        clone._lengths = list(self._lengths)
        clone._offsets = list(self._offsets)
        return clone

    @classmethod
    def from_arrays(
        cls,
        text: np.ndarray,
        lengths: Sequence[int],
        first_trajectory_id: int,
    ) -> "_MutableTail":
        """Rebuild a tail from persisted arrays (text excludes the ``#``)."""
        tail = cls(first_trajectory_id=first_trajectory_id)
        body = np.asarray(text, dtype=np.int64)
        tail._buffer = np.zeros(max(256, 2 * body.size), dtype=np.int64)
        tail._buffer[: body.size] = body
        tail._cursor = int(body.size)
        cursor = 0
        for length in lengths:
            tail._offsets.append(cursor)
            tail._lengths.append(int(length))
            cursor += int(length) + 1
        if cursor != tail._cursor:
            raise ConstructionError(
                f"tail lengths sum to {cursor} symbols but the stored text has "
                f"{tail._cursor}"
            )
        return tail


def concatenate_trajectory_strings(
    alphabet: Alphabet, pieces: Sequence[TrajectoryString]
) -> TrajectoryString:
    """Merge trajectory strings built over one shared alphabet.

    Every piece ends with the ``#`` terminator and encodes with the same
    stable append-only alphabet, so dropping each terminator and
    concatenating the bodies reproduces exactly the string
    :func:`build_trajectory_string` would emit over the concatenated
    trajectory lists — the merge never decodes or re-encodes an edge and
    never materialises the raw fleet.
    """
    if not pieces:
        raise ConstructionError("cannot concatenate zero trajectory strings")
    bodies: list[np.ndarray] = []
    lengths: list[int] = []
    offsets: list[int] = []
    base = 0
    for piece in pieces:
        if int(piece.text[-1]) != END_SYMBOL:
            raise ConstructionError("trajectory string is missing its terminator")
        bodies.append(np.asarray(piece.text[:-1], dtype=np.int64))
        lengths.extend(int(v) for v in piece.trajectory_lengths)
        offsets.extend(base + int(v) for v in piece.trajectory_offsets)
        base += piece.length - 1
    bodies.append(np.asarray([END_SYMBOL], dtype=np.int64))
    return TrajectoryString(
        text=np.concatenate(bodies),
        alphabet=alphabet,
        trajectory_lengths=lengths,
        trajectory_offsets=offsets,
    )


class PartitionedCiNCT:
    """A growing collection of CiNCT partitions over a shared alphabet.

    Parameters
    ----------
    block_size:
        RRR block size forwarded to every partition.
    max_partitions:
        When set, growth keeps the partition count at or below this bound by
        **tiered merging**: the adjacent pair with the smallest combined
        length is re-sorted into one partition, so steady-state ingest never
        rebuilds the whole fleet.  (:meth:`consolidate` remains the explicit
        full reconstruction.)
    tail_max_symbols / tail_max_trajectories:
        Mutable-tail thresholds.  Setting either (or a non-default
        ``compaction``) enables the tail tier: ``add_batch`` becomes an O(batch)
        append and the tail is sealed into a CiNCT partition once it holds at
        least this many symbols / trajectories.
    compaction:
        ``"inline"`` (default) seals on the ingesting thread, ``"background"``
        on a worker thread with a copy-on-seal handoff (queries answer over
        the old view until the partition atomically swaps in), ``"off"``
        never seals (the tail grows unboundedly).
    cinct_kwargs:
        Extra keyword arguments forwarded to :class:`~repro.core.cinct.CiNCT`
        (labelling strategy, SA sampling, ...).

    Examples
    --------
    >>> index = PartitionedCiNCT()
    >>> index.add_batch([["a", "b", "c"], ["b", "c", "d"]])
    >>> index.add_batch([["a", "b", "c", "d"]])
    >>> index.count(["b", "c"])
    3
    """

    def __init__(
        self,
        block_size: int = 63,
        max_partitions: int | None = None,
        tail_max_symbols: int | None = None,
        tail_max_trajectories: int | None = None,
        compaction: str = "inline",
        **cinct_kwargs: object,
    ):
        if max_partitions is not None and max_partitions < 1:
            raise ConstructionError("max_partitions must be at least 1 when given")
        if tail_max_symbols is not None and tail_max_symbols < 1:
            raise ConstructionError("tail_max_symbols must be at least 1 when given")
        if tail_max_trajectories is not None and tail_max_trajectories < 1:
            raise ConstructionError("tail_max_trajectories must be at least 1 when given")
        if compaction not in COMPACTION_MODES:
            raise ConstructionError(
                f"compaction must be one of {sorted(COMPACTION_MODES)}, got {compaction!r}"
            )
        self.block_size = block_size
        self.max_partitions = max_partitions
        self.tail_max_symbols = tail_max_symbols
        self.tail_max_trajectories = tail_max_trajectories
        self.compaction = compaction
        self._cinct_kwargs = dict(cinct_kwargs)
        self._alphabet = Alphabet()
        self._partitions: tuple[Partition, ...] = ()
        tail_enabled = (
            tail_max_symbols is not None
            or tail_max_trajectories is not None
            or compaction != "inline"
        )
        self._tail: _MutableTail | None = _MutableTail() if tail_enabled else None
        self._lock = threading.RLock()
        self._snapshot: IndexSnapshot | None = None
        self._compacting = False
        self._compaction_thread: threading.Thread | None = None
        self._on_growth: Callable[[], None] | None = None
        self._compactions = 0
        self._compaction_failures = 0
        self._compaction_seconds_total = 0.0
        self._last_compaction_seconds: float | None = None
        self._last_compaction_unix: float | None = None
        self._last_compaction_error: str | None = None
        self._tiered_merges = 0

    # ------------------------------------------------------------------ #
    # concurrency plumbing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> IndexSnapshot:
        """The current consistent (partitions, tail) view, cached per epoch."""
        with self._lock:
            snap = self._snapshot
            if snap is None:
                tail_view = (
                    self._tail.view(self._alphabet) if self._tail is not None else None
                )
                snap = IndexSnapshot(partitions=self._partitions, tail=tail_view)
                self._snapshot = snap
            return snap

    def set_growth_listener(self, listener: Callable[[], None] | None) -> None:
        """Invoke ``listener`` whenever a compaction swap publishes new state.

        The engine registers its epoch bump here so background compaction
        invalidates caches exactly when (and only when) the swapped shard's
        view changes.
        """
        self._on_growth = listener

    def wait_for_compaction(self, timeout: float | None = None) -> bool:
        """Block until any in-flight background compaction finishes."""
        thread = self._compaction_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
            return not thread.is_alive()
        return True

    def __getstate__(self) -> dict[str, object]:
        with self._lock:
            state = dict(self.__dict__)
            state["_tail"] = None if self._tail is None else self._tail.detached_copy()
        for transient in ("_lock", "_compaction_thread"):
            state.pop(transient, None)
        state["_snapshot"] = None
        state["_compacting"] = False
        state["_on_growth"] = None
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._compaction_thread = None
        self._snapshot = None
        self._compacting = False
        self._on_growth = None

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #
    @property
    def tail_enabled(self) -> bool:
        """Whether the mutable-tail ingest fast path is active."""
        return self._tail is not None

    def add_batch(self, trajectories: Sequence[Sequence[Hashable]]) -> Partition | None:
        """Index a batch of newly arrived trajectories.

        With the tail enabled this is an O(batch) append (no suffix sort, no
        wavelet build) and returns ``None``; otherwise the batch becomes one
        new partition (returned), as in the original periodic-reconstruction
        scheme.
        """
        batch = [list(t) for t in trajectories]
        if not batch:
            raise ConstructionError("a batch must contain at least one trajectory")
        for trajectory in batch:
            if not trajectory:
                raise ConstructionError("trajectories in a batch must be non-empty")
            for edge in trajectory:
                self._alphabet.add(edge)

        if self._tail is None:
            return self._add_batch_partition(batch)

        encoded = [self._alphabet.encode_path(trajectory) for trajectory in batch]
        with self._lock:
            for symbols in encoded:
                self._tail.append_symbols(symbols)
            self._snapshot = None
        self._maybe_compact()
        return None

    def _add_batch_partition(self, batch: list[list[Hashable]]) -> Partition:
        first_id = self.n_trajectories
        trajectory_string = build_trajectory_string(batch, alphabet=self._alphabet)
        partition = self._build_partition(trajectory_string, len(batch), first_id)
        with self._lock:
            self._partitions = self._partitions + (partition,)
            self._snapshot = None
        self._enforce_max_partitions()
        return self.snapshot().partitions[-1]

    @classmethod
    def from_parts(
        cls,
        alphabet: Alphabet,
        partitions: Sequence[Partition],
        block_size: int = 63,
        max_partitions: int | None = None,
        tail_max_symbols: int | None = None,
        tail_max_trajectories: int | None = None,
        compaction: str = "inline",
        **cinct_kwargs: object,
    ) -> "PartitionedCiNCT":
        """Reassemble a partitioned index from already-built partitions.

        This is the restore path used by the universal persistence layer: the
        partitions arrive rebuilt from their stored BWT artefacts and are
        installed as-is — nothing is decoded eagerly; tiered merges and
        :meth:`consolidate` gather trajectory text lazily from the partition
        strings when (and only when) they run.  A persisted tail is restored
        separately via :meth:`restore_tail`.
        """
        index = cls(
            block_size=block_size,
            max_partitions=max_partitions,
            tail_max_symbols=tail_max_symbols,
            tail_max_trajectories=tail_max_trajectories,
            compaction=compaction,
            **cinct_kwargs,
        )
        index._alphabet = alphabet
        expected = 0
        restored: list[Partition] = []
        for partition in partitions:
            if partition.first_trajectory_id != expected:
                raise ConstructionError(
                    "partitions must be supplied in trajectory order "
                    f"(expected first id {expected}, "
                    f"got {partition.first_trajectory_id})"
                )
            expected += partition.n_trajectories
            restored.append(partition)
        index._partitions = tuple(restored)
        if index._tail is not None:
            index._tail.first_trajectory_id = expected
        return index

    def restore_tail(
        self,
        text: np.ndarray,
        lengths: Sequence[int],
        first_trajectory_id: int,
    ) -> None:
        """Restore the mutable tail from persisted arrays (load path).

        ``text`` is the tail body without the ``#`` terminator, exactly as
        :meth:`tail_arrays` emits it.  Installing a tail force-enables the
        tail tier even when the thresholds were not set (a saved tail must
        stay queryable after reload regardless of config drift).
        """
        with self._lock:
            expected = sum(p.n_trajectories for p in self._partitions)
            if first_trajectory_id != expected:
                raise ConstructionError(
                    f"tail must continue the partition id space at {expected}, "
                    f"got first id {first_trajectory_id}"
                )
            self._tail = _MutableTail.from_arrays(text, lengths, first_trajectory_id)
            self._snapshot = None

    def tail_arrays(self) -> tuple[np.ndarray, list[int], int] | None:
        """Persistable ``(text, lengths, first_trajectory_id)`` of the tail."""
        with self._lock:
            if self._tail is None or self._tail.n_trajectories == 0:
                return None
            tail = self._tail
            return (
                tail._buffer[: tail._cursor].copy(),
                list(tail._lengths),
                tail.first_trajectory_id,
            )

    def consolidate(self) -> Partition:
        """Rebuild a single partition over all accumulated trajectories.

        The trajectory text is gathered by concatenating the retained
        per-partition strings (and the tail), so the raw fleet is never
        materialised as edge lists.
        """
        self.wait_for_compaction()
        with self._lock:
            pieces = [partition.trajectory_string for partition in self._partitions]
            tail_pieces = 0
            if self._tail is not None and self._tail.n_trajectories:
                pieces.append(
                    self._tail.prefix_string(self._tail.n_trajectories, self._alphabet)
                )
                tail_pieces = self._tail.n_trajectories
            if not pieces:
                raise ConstructionError("nothing to consolidate: no trajectories were added")
            total = sum(len(piece.trajectory_lengths) for piece in pieces)
            merged = concatenate_trajectory_strings(self._alphabet, pieces)
            partition = self._build_partition(merged, total, 0)
            self._partitions = (partition,)
            if self._tail is not None and tail_pieces:
                self._tail.drop_prefix(tail_pieces)
            self._snapshot = None
            return partition

    def _enforce_max_partitions(self) -> None:
        """Tiered merging: fold adjacent partitions until under the bound."""
        if self.max_partitions is None:
            return
        while self.n_partitions > self.max_partitions:
            if not self._merge_smallest_adjacent_pair():
                break

    def _merge_smallest_adjacent_pair(self) -> bool:
        with self._lock:
            parts = self._partitions
            if len(parts) < 2:
                return False
            best = min(
                range(len(parts) - 1),
                key=lambda i: parts[i].index.length + parts[i + 1].index.length,
            )
            left, right = parts[best], parts[best + 1]
        merged = concatenate_trajectory_strings(
            self._alphabet, [left.trajectory_string, right.trajectory_string]
        )
        partition = self._build_partition(
            merged,
            left.n_trajectories + right.n_trajectories,
            left.first_trajectory_id,
        )
        with self._lock:
            current = list(self._partitions)
            for i, candidate in enumerate(current):
                if candidate is left:
                    if i + 1 < len(current) and current[i + 1] is right:
                        current[i : i + 2] = [partition]
                        self._partitions = tuple(current)
                        self._snapshot = None
                        self._tiered_merges += 1
                        return True
                    break
            return False

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def _maybe_compact(self) -> None:
        if self.compaction == "off" or self._tail is None:
            return
        with self._lock:
            if self._compacting:
                return
            tail = self._tail
            k = tail.n_trajectories
            if k == 0:
                return
            over = (
                self.tail_max_trajectories is not None
                and k >= self.tail_max_trajectories
            ) or (
                self.tail_max_symbols is not None
                and tail.n_symbols >= self.tail_max_symbols
            )
            if not over:
                return
            # Copy-on-seal: the sealed prefix is detached here; appends keep
            # landing behind it and queries keep reading the full tail until
            # the swap publishes.
            sealed = tail.prefix_string(k, self._alphabet)
            first_id = tail.first_trajectory_id
            self._compacting = True
        if self.compaction == "background":
            thread = threading.Thread(
                target=self._compact,
                args=(sealed, k, first_id),
                name="repro-compaction",
                daemon=True,
            )
            self._compaction_thread = thread
            thread.start()
        else:
            self._compact(sealed, k, first_id)

    def _compact(self, sealed: TrajectoryString, k: int, first_id: int) -> None:
        started = time.perf_counter()
        swapped = False
        try:
            partition = self._build_partition(sealed, k, first_id)
            with self._lock:
                maybe_crash_save(COMPACTION_SWAP_STAGE)
                assert self._tail is not None
                self._partitions = self._partitions + (partition,)
                self._tail.drop_prefix(k)
                self._snapshot = None
                elapsed = time.perf_counter() - started
                self._compactions += 1
                self._compaction_seconds_total += elapsed
                self._last_compaction_seconds = elapsed
                self._last_compaction_unix = time.time()
                self._last_compaction_error = None
            swapped = True
        except Exception as error:  # noqa: BLE001 - a dead compaction must not kill ingest
            # The swap never published, so the pre-swap view (partitions +
            # full tail) is still the consistent, serving state — exactly the
            # crash model REPRO_SAVE_CRASH=compaction/swap exercises.
            with self._lock:
                self._compaction_failures += 1
                self._last_compaction_error = f"{type(error).__name__}: {error}"
        finally:
            with self._lock:
                self._compacting = False
        if swapped:
            self._enforce_max_partitions()
            listener = self._on_growth
            if listener is not None:
                listener()

    def _build_partition(
        self, trajectory_string: TrajectoryString, n_trajectories: int, first_id: int
    ) -> Partition:
        started = time.perf_counter()
        bwt_result = burrows_wheeler_transform(
            trajectory_string.text, sigma=self._alphabet.sigma
        )
        bwt_seconds = time.perf_counter() - started
        index = CiNCT(
            bwt_result,
            block_size=self.block_size,
            **self._cinct_kwargs,  # type: ignore[arg-type]
        )
        index.construction.bwt_seconds = bwt_seconds
        return Partition(
            index=index,
            trajectory_string=trajectory_string,
            n_trajectories=n_trajectories,
            first_trajectory_id=first_id,
            bwt_result=bwt_result,
        )

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def alphabet(self) -> Alphabet:
        """The shared alphabet across every partition."""
        return self._alphabet

    @property
    def n_partitions(self) -> int:
        """Current number of compressed partitions (the tail not included)."""
        with self._lock:
            return len(self._partitions)

    @property
    def n_trajectories(self) -> int:
        """Total number of trajectories added so far (partitions + tail)."""
        with self._lock:
            total = sum(p.n_trajectories for p in self._partitions)
            if self._tail is not None:
                total += self._tail.n_trajectories
            return total

    def partitions(self) -> Iterator[Partition]:
        """Iterate over the current compressed partitions (oldest first)."""
        return iter(self.snapshot().partitions)

    def size_in_bits(self) -> int:
        """Sum of the partition index sizes plus the uncompressed tail."""
        snap = self.snapshot()
        bits = sum(partition.size_in_bits() for partition in snap.partitions)
        if snap.tail is not None:
            bits += snap.tail.scanner.size_in_bits()
        return bits

    def retained_bits(self) -> int:
        """Raw artefact bits kept beyond the succinct indexes (text once)."""
        snap = self.snapshot()
        bits = sum(partition.retained_bits() for partition in snap.partitions)
        if snap.tail is not None:
            text = snap.tail.trajectory_string.text
            bits += int(text.size) * int(text.itemsize) * 8
        return bits

    def total_symbols(self) -> int:
        """Total trajectory-string length across all tiers."""
        snap = self.snapshot()
        total = sum(partition.index.length for partition in snap.partitions)
        if snap.tail is not None:
            total += snap.tail.trajectory_string.length
        return total

    def bits_per_symbol(self) -> float:
        """Aggregate index size per indexed symbol."""
        total = self.total_symbols()
        if total == 0:
            raise QueryError("the partitioned index is empty")
        return self.size_in_bits() / total

    def ingest_stats(self) -> dict[str, object]:
        """Tail and compaction observability counters (one consistent read)."""
        with self._lock:
            tail = self._tail
            return {
                "tail": {
                    "enabled": tail is not None,
                    "trajectories": 0 if tail is None else tail.n_trajectories,
                    "symbols": 0 if tail is None else tail.n_symbols,
                    "first_trajectory_id": (
                        None if tail is None else tail.first_trajectory_id
                    ),
                    "max_symbols": self.tail_max_symbols,
                    "max_trajectories": self.tail_max_trajectories,
                },
                "compaction": {
                    "mode": self.compaction,
                    "in_flight": self._compacting,
                    "count": self._compactions,
                    "failures": self._compaction_failures,
                    "seconds_total": self._compaction_seconds_total,
                    "last_seconds": self._last_compaction_seconds,
                    "last_unix": self._last_compaction_unix,
                    "last_error": self._last_compaction_error,
                    "tiered_merges": self._tiered_merges,
                },
            }

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def count(self, path: Sequence[Hashable]) -> int:
        """Total occurrences of the path across every partition and the tail."""
        return sum(self._per_tier_counts(path))

    def contains(self, path: Sequence[Hashable]) -> bool:
        """True when the path occurs in at least one tier.

        Short-circuits on the first matching partition — unlike
        :meth:`count`, later partitions are never consulted once a match is
        found.
        """
        pattern = self._encode_checked(path)
        if pattern is None:
            return False
        return self.contains_encoded(pattern)

    def contains_encoded(self, pattern: Sequence[int]) -> bool:
        """Any-tier short-circuit for an already-encoded pattern.

        The symbol-level twin of :meth:`contains`, used by the engine
        executor's dedicated contains plan kind: the scan stops at the first
        tier reporting an occurrence instead of summing a full count over
        every partition.
        """
        symbols, snap = self._searchable(pattern)
        largest = max(symbols, default=-1)
        for partition in snap.partitions:
            if largest < partition.index.sigma and partition.index.contains(symbols):
                return True
        if snap.tail is not None and largest < snap.tail.scanner.sigma:
            return snap.tail.scanner.contains(symbols)
        return False

    def counts_by_partition(self, path: Sequence[Hashable]) -> list[int]:
        """Occurrence count of the path in each tier (oldest first).

        When the mutable tail holds trajectories it contributes the final
        entry, so the list always sums to :meth:`count`.
        """
        return self._per_tier_counts(path)

    def matching_partitions(self, path: Sequence[Hashable]) -> list[int]:
        """Indices of the tiers in which the path occurs (tail last)."""
        return [index for index, count in enumerate(self._per_tier_counts(path)) if count]

    def count_encoded(self, pattern: Sequence[int]) -> int:
        """Total occurrences of an already-encoded symbol pattern.

        The symbol-level twin of :meth:`count`, used by the engine facade
        (which performs its own path encoding and error normalisation).
        """
        return sum(self.counts_encoded_by_partition(pattern))

    def counts_encoded_by_partition(self, pattern: Sequence[int]) -> list[int]:
        """Occurrences of an encoded pattern in each tier (oldest first)."""
        symbols, snap = self._searchable(pattern)
        return self._tier_counts(symbols, snap)

    def _tier_counts(self, symbols: list[int], snap: IndexSnapshot) -> list[int]:
        largest = max(symbols, default=-1)
        counts = [
            partition.index.count(symbols) if largest < partition.index.sigma else 0
            for partition in snap.partitions
        ]
        if snap.tail is not None:
            tail_count = 0
            if largest < snap.tail.scanner.sigma:
                tail_count = snap.tail.scanner.count(symbols)
            counts.append(tail_count)
        return counts

    def _searchable(self, pattern: Sequence[int]) -> tuple[list[int], IndexSnapshot]:
        """Encoded-pattern prologue shared by the count and contains paths.

        Owns the empty-index guard and the compatibility rule: symbols
        introduced by later batches are outside an older partition's
        alphabet, so the path cannot occur in it (largest symbol >= that
        partition's sigma).  The same rule shields a stale tail snapshot on
        an untouched shard of a sharded fleet, whose scanner sigma predates
        alphabet growth on sibling shards.
        """
        snap = self.snapshot()
        if snap.empty:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        return [int(s) for s in pattern], snap

    def count_encoded_many(
        self, patterns: Sequence[Sequence[int]], interval_cache=None
    ) -> list[int]:
        """Batched :meth:`count_encoded` over a workload of encoded patterns.

        One :class:`~repro.fmindex.trie.PatternTrie` is built over the whole
        workload (encoded against the shared global alphabet) and fanned
        across ``compressed partitions ∪ tail``: each partition answers every
        pattern inside its alphabet with one :meth:`CiNCT.trie_search` pass —
        a symbol a partition has never seen simply makes its trie node dead
        there — the uncompressed tail scans its subset, and totals accumulate
        per pattern, bit-identical to the scalar loop.  ``interval_cache``
        (optional) is shared across the partitions through tier-scoped key
        views; the mutable tail is never cached because it grows without an
        epoch bump.
        """
        snap = self.snapshot()
        if snap.empty:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        pats = [[int(s) for s in pattern] for pattern in patterns]
        for pattern in pats:
            if not pattern:
                raise QueryError(EMPTY_PATTERN_MESSAGE)
            for symbol in pattern:
                if symbol < 0:
                    raise QueryError(
                        symbol_out_of_range_message(symbol, self._alphabet.sigma)
                    )
        totals = [0] * len(pats)
        if not pats:
            return totals
        share = interval_cache is not None and getattr(interval_cache, "enabled", True)
        trie = PatternTrie(pats)
        for tier, partition in enumerate(snap.partitions):
            view = _TierIntervalView(interval_cache, tier) if share else None
            found_ranges = partition.index.trie_search(trie, interval_cache=view)
            for i, found in enumerate(found_ranges):
                if found is not None:
                    totals[i] += found[1] - found[0]
        if snap.tail is not None:
            sigma = snap.tail.scanner.sigma
            inside = [i for i, pattern in enumerate(pats) if max(pattern) < sigma]
            if inside:
                for i, count in zip(
                    inside, snap.tail.scanner.count_many([pats[i] for i in inside])
                ):
                    totals[i] += count
        return totals

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _encode_checked(self, path: Sequence[Hashable]) -> list[int] | None:
        """Shared raw-path prologue: canonical raises, ``None`` for unknowns.

        A segment never observed in any batch cannot match anywhere, so the
        path encodes to ``None`` instead of raising.  (The engine facade is
        stricter and raises AlphabetError; this lenient behaviour is kept
        for the original entry points.)
        """
        if self.snapshot().empty:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        edges = list(path)
        if not edges:
            raise QueryError(EMPTY_PATH_MESSAGE)
        if any(edge not in self._alphabet for edge in edges):
            return None
        return self._alphabet.encode_path(edges)

    def _per_tier_counts(self, path: Sequence[Hashable]) -> list[int]:
        snap = self.snapshot()
        if snap.empty:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        pattern = self._encode_checked(path)
        if pattern is None:
            return [0] * (len(snap.partitions) + (1 if snap.tail is not None else 0))
        return self._tier_counts(pattern, snap)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PartitionedCiNCT(partitions={self.n_partitions}, "
            f"trajectories={self.n_trajectories}, sigma={self._alphabet.sigma})"
        )
