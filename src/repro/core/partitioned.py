"""Partitioned CiNCT index for growing trajectory collections.

CiNCT is a static structure; Section III-A of the paper notes that growing
data can be handled "by periodic reconstruction or by constructing an index
for new data at certain time intervals".  This module implements that scheme:

* every batch of newly arrived trajectories becomes one immutable CiNCT
  partition built over a *shared* alphabet, so patterns are encoded once and
  queried against every partition;
* queries (count / contains / matching partitions) aggregate over the
  partitions;
* :meth:`PartitionedCiNCT.consolidate` performs the periodic reconstruction,
  replacing all partitions with a single index over the accumulated data
  (optionally triggered automatically once ``max_partitions`` is exceeded).

The partitions answer exactly the same suffix-range queries as a monolithic
index built over the union of the data; only the suffix *ranges themselves*
are per-partition, which is why the aggregate API exposes counts and matches
rather than raw ``(sp, ep)`` pairs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Iterator, Sequence

from ..exceptions import EMPTY_INDEX_MESSAGE, EMPTY_PATH_MESSAGE, ConstructionError, QueryError
from ..strings.alphabet import Alphabet
from ..strings.bwt import BWTResult, burrows_wheeler_transform
from ..strings.trajectory_string import TrajectoryString, build_trajectory_string
from .cinct import CiNCT


@dataclass
class Partition:
    """One immutable CiNCT partition and the data it indexes.

    The BWT artefacts are retained so the persistence layer can store them
    and reload the partition in linear time, never re-sorting suffixes (the
    same contract as the single-index backends).
    """

    index: CiNCT
    trajectory_string: TrajectoryString
    n_trajectories: int
    first_trajectory_id: int
    bwt_result: BWTResult | None = None

    def size_in_bits(self) -> int:
        """Index size of this partition."""
        return self.index.size_in_bits()


class PartitionedCiNCT:
    """A growing collection of CiNCT partitions over a shared alphabet.

    Parameters
    ----------
    block_size:
        RRR block size forwarded to every partition.
    max_partitions:
        When set, :meth:`add_batch` automatically consolidates the structure
        once the number of partitions exceeds this bound (periodic
        reconstruction).
    cinct_kwargs:
        Extra keyword arguments forwarded to :class:`~repro.core.cinct.CiNCT`
        (labelling strategy, SA sampling, ...).

    Examples
    --------
    >>> index = PartitionedCiNCT()
    >>> index.add_batch([["a", "b", "c"], ["b", "c", "d"]])
    >>> index.add_batch([["a", "b", "c", "d"]])
    >>> index.count(["b", "c"])
    3
    """

    def __init__(
        self,
        block_size: int = 63,
        max_partitions: int | None = None,
        **cinct_kwargs: object,
    ):
        if max_partitions is not None and max_partitions < 1:
            raise ConstructionError("max_partitions must be at least 1 when given")
        self.block_size = block_size
        self.max_partitions = max_partitions
        self._cinct_kwargs = dict(cinct_kwargs)
        self._alphabet = Alphabet()
        self._partitions: list[Partition] = []
        self._all_trajectories: list[list[Hashable]] = []

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #
    def add_batch(self, trajectories: Sequence[Sequence[Hashable]]) -> Partition:
        """Index a batch of newly arrived trajectories as one new partition."""
        batch = [list(t) for t in trajectories]
        if not batch:
            raise ConstructionError("a batch must contain at least one trajectory")
        for trajectory in batch:
            if not trajectory:
                raise ConstructionError("trajectories in a batch must be non-empty")
            for edge in trajectory:
                self._alphabet.add(edge)

        first_id = self.n_trajectories
        trajectory_string = build_trajectory_string(batch, alphabet=self._alphabet)
        partition = self._build_partition(trajectory_string, len(batch), first_id)
        self._partitions.append(partition)
        self._all_trajectories.extend(batch)

        if self.max_partitions is not None and len(self._partitions) > self.max_partitions:
            self.consolidate()
        return self._partitions[-1]

    @classmethod
    def from_parts(
        cls,
        alphabet: Alphabet,
        partitions: Sequence[Partition],
        block_size: int = 63,
        max_partitions: int | None = None,
        **cinct_kwargs: object,
    ) -> "PartitionedCiNCT":
        """Reassemble a partitioned index from already-built partitions.

        This is the restore path used by the universal persistence layer: the
        partitions arrive rebuilt from their stored BWT artefacts, and the
        accumulated trajectory list is recovered by decoding each partition's
        trajectory string, so :meth:`consolidate` keeps working after a reload.
        """
        index = cls(block_size=block_size, max_partitions=max_partitions, **cinct_kwargs)
        index._alphabet = alphabet
        for partition in partitions:
            if partition.first_trajectory_id != index.n_trajectories:
                raise ConstructionError(
                    "partitions must be supplied in trajectory order "
                    f"(expected first id {index.n_trajectories}, "
                    f"got {partition.first_trajectory_id})"
                )
            index._partitions.append(partition)
            index._all_trajectories.extend(
                partition.trajectory_string.trajectory_edges(k)
                for k in range(partition.n_trajectories)
            )
        return index

    def consolidate(self) -> Partition:
        """Rebuild a single partition over all accumulated trajectories."""
        if not self._all_trajectories:
            raise ConstructionError("nothing to consolidate: no trajectories were added")
        trajectory_string = build_trajectory_string(self._all_trajectories, alphabet=self._alphabet)
        partition = self._build_partition(trajectory_string, len(self._all_trajectories), 0)
        self._partitions = [partition]
        return partition

    def _build_partition(
        self, trajectory_string: TrajectoryString, n_trajectories: int, first_id: int
    ) -> Partition:
        started = time.perf_counter()
        bwt_result = burrows_wheeler_transform(
            trajectory_string.text, sigma=self._alphabet.sigma
        )
        bwt_seconds = time.perf_counter() - started
        index = CiNCT(
            bwt_result,
            block_size=self.block_size,
            **self._cinct_kwargs,  # type: ignore[arg-type]
        )
        index.construction.bwt_seconds = bwt_seconds
        return Partition(
            index=index,
            trajectory_string=trajectory_string,
            n_trajectories=n_trajectories,
            first_trajectory_id=first_id,
            bwt_result=bwt_result,
        )

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def alphabet(self) -> Alphabet:
        """The shared alphabet across every partition."""
        return self._alphabet

    @property
    def n_partitions(self) -> int:
        """Current number of partitions."""
        return len(self._partitions)

    @property
    def n_trajectories(self) -> int:
        """Total number of trajectories added so far."""
        return len(self._all_trajectories)

    def partitions(self) -> Iterator[Partition]:
        """Iterate over the current partitions (oldest first)."""
        return iter(self._partitions)

    def size_in_bits(self) -> int:
        """Sum of the partition index sizes."""
        return sum(partition.size_in_bits() for partition in self._partitions)

    def total_symbols(self) -> int:
        """Total trajectory-string length across all partitions."""
        return sum(partition.index.length for partition in self._partitions)

    def bits_per_symbol(self) -> float:
        """Aggregate index size per indexed symbol."""
        total = self.total_symbols()
        if total == 0:
            raise QueryError("the partitioned index is empty")
        return self.size_in_bits() / total

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def count(self, path: Sequence[Hashable]) -> int:
        """Total number of occurrences of the path across every partition."""
        return sum(count for _, count in self._per_partition_counts(path))

    def contains(self, path: Sequence[Hashable]) -> bool:
        """True when the path occurs in at least one partition.

        Short-circuits on the first matching partition — unlike
        :meth:`count`, later partitions are never consulted once a match is
        found.
        """
        pattern = self._encode_checked(path)
        if pattern is None:
            return False
        return self.contains_encoded(pattern)

    def contains_encoded(self, pattern: Sequence[int]) -> bool:
        """Any-partition short-circuit for an already-encoded pattern.

        The symbol-level twin of :meth:`contains`, used by the engine
        executor's dedicated contains plan kind: the scan stops at the first
        partition reporting an occurrence instead of summing a full count
        over every partition.
        """
        symbols, searchable = self._searchable_partitions(pattern)
        return any(ok and partition.index.contains(symbols) for partition, ok in searchable)

    def counts_by_partition(self, path: Sequence[Hashable]) -> list[int]:
        """Occurrence count of the path in each partition (oldest first)."""
        return [count for _, count in self._per_partition_counts(path)]

    def matching_partitions(self, path: Sequence[Hashable]) -> list[int]:
        """Indices of the partitions in which the path occurs."""
        return [index for index, (_, count) in enumerate(self._per_partition_counts(path)) if count]

    def count_encoded(self, pattern: Sequence[int]) -> int:
        """Total occurrences of an already-encoded symbol pattern.

        The symbol-level twin of :meth:`count`, used by the engine facade
        (which performs its own path encoding and error normalisation).
        """
        return sum(self.counts_encoded_by_partition(pattern))

    def counts_encoded_by_partition(self, pattern: Sequence[int]) -> list[int]:
        """Occurrences of an encoded pattern in each partition (oldest first)."""
        symbols, searchable = self._searchable_partitions(pattern)
        return [
            partition.index.count(symbols) if ok else 0 for partition, ok in searchable
        ]

    def _searchable_partitions(
        self, pattern: Sequence[int]
    ) -> tuple[list[int], list[tuple[Partition, bool]]]:
        """Encoded-pattern prologue shared by count and contains paths.

        Owns the empty-index guard and the compatibility rule: symbols
        introduced by later batches are outside an older partition's
        alphabet, so the path cannot occur in it (largest symbol >= that
        partition's sigma).  Returns the int-normalised symbols plus each
        partition (oldest first) with its searchability flag.
        """
        if not self._partitions:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        symbols = [int(s) for s in pattern]
        largest = max(symbols, default=-1)
        return symbols, [
            (partition, largest < partition.index.sigma)
            for partition in self._partitions
        ]

    def count_encoded_many(self, patterns: Sequence[Sequence[int]]) -> list[int]:
        """Batched :meth:`count_encoded` over a workload of encoded patterns.

        Each partition answers the subset of patterns inside its alphabet with
        one vectorized :meth:`CiNCT.count_many` pass; totals are accumulated
        per pattern, bit-identical to the scalar loop.
        """
        if not self._partitions:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        pats = [[int(s) for s in pattern] for pattern in patterns]
        totals = [0] * len(pats)
        for partition in self._partitions:
            sigma = partition.index.sigma
            inside = [i for i, pattern in enumerate(pats) if max(pattern, default=-1) < sigma]
            if not inside:
                continue
            for i, count in zip(inside, partition.index.count_many([pats[i] for i in inside])):
                totals[i] += count
        return totals

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _encode_checked(self, path: Sequence[Hashable]) -> list[int] | None:
        """Shared raw-path prologue: canonical raises, ``None`` for unknowns.

        A segment never observed in any batch cannot match anywhere, so the
        path encodes to ``None`` instead of raising.  (The engine facade is
        stricter and raises AlphabetError; this lenient behaviour is kept
        for the original entry points.)
        """
        if not self._partitions:
            raise QueryError(EMPTY_INDEX_MESSAGE)
        edges = list(path)
        if not edges:
            raise QueryError(EMPTY_PATH_MESSAGE)
        if any(edge not in self._alphabet for edge in edges):
            return None
        return self._alphabet.encode_path(edges)

    def _per_partition_counts(self, path: Sequence[Hashable]) -> list[tuple[Partition, int]]:
        pattern = self._encode_checked(path)
        if pattern is None:
            return [(partition, 0) for partition in self._partitions]
        counts = self.counts_encoded_by_partition(pattern)
        return list(zip(self._partitions, counts))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PartitionedCiNCT(partitions={self.n_partitions}, "
            f"trajectories={self.n_trajectories}, sigma={self._alphabet.sigma})"
        )
