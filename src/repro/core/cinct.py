"""CiNCT: the compressed index for network-constrained trajectories.

This is the paper's primary contribution (Sections III–IV).  Construction
follows the five steps of Fig. 5:

1. concatenate the NCTs into a trajectory string ``T`` (done by the caller or
   :meth:`CiNCT.from_trajectories`);
2. compute the BWT ``Tbwt``;
3. build the ET-graph ``G_T`` and the RML function ``phi``;
4. label the BWT, obtaining ``phi(Tbwt)``;
5. store ``phi(Tbwt)`` in a Huffman-shaped wavelet tree over RRR bit vectors.

Queries:

* :meth:`CiNCT.suffix_range` — Algorithm 3 (``LabeledSearchFM``);
* :meth:`CiNCT.count` / :meth:`CiNCT.contains`;
* :meth:`CiNCT.extract` — Algorithm 4 (sub-path extraction via PseudoRank);
* :meth:`CiNCT.locate` — optional suffix-array-sampled locate (an extension
  used by the strict-path-query layer, not part of the paper's evaluation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Literal, Sequence

import numpy as np

from ..exceptions import ConstructionError, QueryError
from ..fmindex.base import FMIndexBase, validate_pattern
from ..fmindex.trie import PatternTrie, trie_backward_search
from ..strings.bwt import BWTResult, burrows_wheeler_transform
from ..strings.trajectory_string import TrajectoryString, build_trajectory_string
from ..succinct import IntVector, bits_needed
from ..wavelet import HuffmanWaveletTree, plain_bitvector_factory, rrr_bitvector_factory
from .etgraph import ETGraph
from .pseudorank import CorrectionTerms, compute_correction_terms
from .rml import LabelingStrategy, RMLFunction, build_rml, label_bwt

BitVectorBackend = Literal["rrr", "plain"]


@dataclass
class ConstructionBreakdown:
    """Wall-clock seconds spent in each construction stage (paper Fig. 16)."""

    bwt_seconds: float = 0.0
    et_graph_seconds: float = 0.0
    labeling_seconds: float = 0.0
    wavelet_tree_seconds: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total construction time."""
        return (
            self.bwt_seconds
            + self.et_graph_seconds
            + self.labeling_seconds
            + self.wavelet_tree_seconds
            + sum(self.extra.values())
        )


class CiNCT:
    """Compressed index for NCTs based on RML + PseudoRank.

    Parameters
    ----------
    bwt_result:
        The BWT of the trajectory string to index.
    block_size:
        RRR block size ``b`` (the only tuning parameter of CiNCT; 63 default).
    labeling_strategy:
        ``"bigram"`` (optimal, default), ``"random"`` or ``"unigram"``;
        exposed so the Fig. 14 ablation can compare strategies.
    bitvector_backend:
        ``"rrr"`` (paper) or ``"plain"`` (ablation: HWT without compression).
    sa_sample_rate:
        When set, every ``sa_sample_rate``-th suffix-array value is sampled so
        that :meth:`locate` works; ``None`` (default) disables sampling and
        matches the paper's size accounting.
    rng:
        Randomness source for the ``"random"`` labelling strategy.
    """

    name = "CiNCT"

    def __init__(
        self,
        bwt_result: BWTResult,
        block_size: int = 63,
        labeling_strategy: LabelingStrategy = "bigram",
        bitvector_backend: BitVectorBackend = "rrr",
        sa_sample_rate: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.block_size = block_size
        self.labeling_strategy: LabelingStrategy = labeling_strategy
        self.bitvector_backend: BitVectorBackend = bitvector_backend
        self._n = bwt_result.length
        self._sigma = bwt_result.sigma
        self._c_array = bwt_result.c_array
        self.construction = ConstructionBreakdown()

        started = time.perf_counter()
        self._et_graph = ETGraph(bwt_result.text, sigma=bwt_result.sigma)
        self._rml = build_rml(
            self._et_graph,
            strategy=labeling_strategy,
            rng=rng,
            unigram_counts=bwt_result.counts if labeling_strategy == "unigram" else None,
        )
        self.construction.et_graph_seconds = time.perf_counter() - started

        started = time.perf_counter()
        self._labelled_bwt = label_bwt(bwt_result.bwt, bwt_result.c_array, self._rml)
        self._corrections = compute_correction_terms(
            bwt_result.bwt, self._labelled_bwt, bwt_result.c_array, self._rml
        )
        self.construction.labeling_seconds = time.perf_counter() - started

        started = time.perf_counter()
        if bitvector_backend == "rrr":
            factory = rrr_bitvector_factory(block_size)
        elif bitvector_backend == "plain":
            factory = plain_bitvector_factory()
        else:
            raise ConstructionError(f"unknown bitvector backend: {bitvector_backend!r}")
        self._wavelet_tree = HuffmanWaveletTree(self._labelled_bwt, bitvector_factory=factory)
        self.construction.wavelet_tree_seconds = time.perf_counter() - started

        self._sa_sample_rate = sa_sample_rate
        self._sa_marked: np.ndarray | None = None
        self._sa_samples: np.ndarray | None = None
        if sa_sample_rate is not None:
            if sa_sample_rate < 1:
                raise ConstructionError("sa_sample_rate must be a positive integer")
            started = time.perf_counter()
            sa = bwt_result.suffix_array
            marked = (sa % sa_sample_rate) == 0
            self._sa_marked = marked
            self._sa_samples = sa[marked]
            # prefix counts of marked rows for O(1) sample lookup
            self._sa_marked_prefix = np.concatenate(
                ([0], np.cumsum(marked.astype(np.int64)))
            )
            self.construction.extra["sa_sampling_seconds"] = time.perf_counter() - started

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_trajectories(
        cls,
        trajectories: Sequence[Sequence[Hashable]],
        **kwargs: object,
    ) -> tuple["CiNCT", TrajectoryString]:
        """Build a CiNCT index directly from raw trajectories.

        Returns the index together with the :class:`TrajectoryString`, whose
        alphabet is needed to encode query paths.
        """
        trajectory_string = build_trajectory_string(trajectories)
        index = cls.from_text(trajectory_string.text, sigma=trajectory_string.sigma, **kwargs)
        return index, trajectory_string

    @classmethod
    def from_text(cls, text: np.ndarray, sigma: int | None = None, **kwargs: object) -> "CiNCT":
        """Build a CiNCT index from an already-concatenated trajectory string."""
        started = time.perf_counter()
        bwt_result = burrows_wheeler_transform(text, sigma=sigma)
        bwt_seconds = time.perf_counter() - started
        index = cls(bwt_result, **kwargs)  # type: ignore[arg-type]
        index.construction.bwt_seconds = bwt_seconds
        return index

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Length of the indexed trajectory string."""
        return self._n

    @property
    def sigma(self) -> int:
        """Alphabet size of the original trajectory string."""
        return self._sigma

    @property
    def c_array(self) -> np.ndarray:
        """The FM-index ``C[]`` array."""
        return self._c_array

    @property
    def et_graph(self) -> ETGraph:
        """The empirical transition graph used for labelling."""
        return self._et_graph

    @property
    def rml(self) -> RMLFunction:
        """The relative-movement-labelling function ``phi``."""
        return self._rml

    @property
    def corrections(self) -> CorrectionTerms:
        """The PseudoRank correction terms ``Z``."""
        return self._corrections

    @property
    def labelled_bwt(self) -> np.ndarray:
        """A copy of ``phi(Tbwt)`` (mainly for analysis and tests)."""
        return self._labelled_bwt.copy()

    @property
    def wavelet_tree(self) -> HuffmanWaveletTree:
        """The HWT storing ``phi(Tbwt)``."""
        return self._wavelet_tree

    @property
    def has_sa_samples(self) -> bool:
        """True when the index was built with ``sa_sample_rate`` (locate works)."""
        return self._sa_samples is not None

    # ------------------------------------------------------------------ #
    # PseudoRank (Algorithm 2) — inlined for query speed
    # ------------------------------------------------------------------ #
    def _pseudo_rank(self, j: int, target: int, context: int, label: int) -> int:
        return self._wavelet_tree.rank(label, j) - self._corrections.get(context, target)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def suffix_range(
        self, pattern: Sequence[int], interval_cache=None
    ) -> tuple[int, int] | None:
        """Algorithm 3 (``LabeledSearchFM``): suffix range of a query path.

        The pattern is given in travel order using the symbols of the original
        alphabet; returns ``(sp, ep)`` or ``None`` when the path never occurs.
        ``interval_cache`` (optional, ``deepest``/``store`` over prefix-tuple
        keys) lets the walk resume from the deepest cached ancestor of the
        pattern — an incremental one-edge extension costs one labelled LF
        step — and stores the final range for future queries.
        """
        symbols = self._validated_pattern(pattern)
        # Patterns are given in travel order; because the trajectory string
        # stores reversed trajectories, Algorithm 3 consumes the pattern from
        # its first symbol to its last, with the previous (travel-earlier)
        # symbol acting as the RML context of the current one.
        cache = interval_cache
        if cache is not None and not getattr(cache, "enabled", True):
            cache = None
        n = len(symbols)
        prefix_len = 0
        sp = ep = 0
        if cache is not None:
            keys = [tuple(symbols[:k]) for k in range(n, 0, -1)]
            hit, interval = cache.deepest(keys)
            if hit >= 0:
                if interval is None:
                    return None
                sp, ep = interval
                prefix_len = n - hit
        if prefix_len == 0:
            w = symbols[0]
            sp = int(self._c_array[w])
            ep = int(self._c_array[w + 1])
            prefix_len = 1
            if sp >= ep:
                if cache is not None:
                    cache.store(tuple(symbols), None)
                return None
        w = symbols[prefix_len - 1]
        for index in range(prefix_len, n):
            context = w
            w = symbols[index]
            dead = not self._rml.has_label(w, context)
            if not dead:
                label = self._rml.label(w, context)
                correction = self._corrections.get(context, w)
                base = int(self._c_array[w]) - correction
                sp = base + self._wavelet_tree.rank(label, sp)
                ep = base + self._wavelet_tree.rank(label, ep)
                dead = sp >= ep
            if dead:
                if cache is not None:
                    cache.store(tuple(symbols), None)
                return None
        if cache is not None and prefix_len < n:
            cache.store(tuple(symbols), (sp, ep))
        return sp, ep

    def suffix_range_many(
        self, patterns: Sequence[Sequence[int]], interval_cache=None
    ) -> list[tuple[int, int] | None]:
        """Batched Algorithm 3 over a whole workload of query paths.

        The workload is folded into one
        :class:`~repro.fmindex.trie.PatternTrie` and handed to
        :meth:`trie_search`: query paths sharing a travel-order prefix share a
        single ``LabeledSearchFM`` frontier entry up to their divergence
        point.  Results are bit-identical to calling :meth:`suffix_range` per
        pattern.
        """
        pats = [self._validated_pattern(p) for p in patterns]
        if not pats:
            return []
        return self.trie_search(PatternTrie(pats), interval_cache=interval_cache)

    def trie_search(
        self, trie: PatternTrie, interval_cache=None
    ) -> list[tuple[int, int] | None]:
        """Algorithm 3 over a prebuilt pattern trie (one range per node).

        At every trie depth the pending nodes are grouped by their
        ``(context, w)`` bigram with one ``np.unique`` pass — every group
        shares one RML label and one PseudoRank base, so label resolution and
        correction lookups happen once per distinct bigram — and the whole
        labelled frontier then descends the wavelet tree together through one
        :meth:`~repro.wavelet.tree.WaveletTree.rank_pairs` call, which shares
        the upper tree levels across labels (one bit-vector rank per distinct
        tree node, not one walk per label).  Bigrams without an RML label (and
        symbols outside this index's alphabet) make their node dead, pruning
        the whole subtree.
        """
        c = self._c_array

        def advance(contexts, syms, parent_sp, parent_ep):
            n = syms.size
            # Dead-by-default: a bigram the RML function never labelled keeps
            # its empty range and kills the subtree below it.
            sp = np.zeros(n, dtype=np.int64)
            ep = np.zeros(n, dtype=np.int64)
            keys = contexts * np.int64(self._sigma) + syms
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            labels_per_key = np.empty(unique_keys.size, dtype=np.int64)
            bases_per_key = np.zeros(unique_keys.size, dtype=np.int64)
            for k, key in enumerate(unique_keys.tolist()):
                context, w = divmod(key, self._sigma)
                if self._rml.has_label(w, context):
                    labels_per_key[k] = self._rml.label(w, context)
                    bases_per_key[k] = int(c[w]) - self._corrections.get(context, w)
                else:
                    labels_per_key[k] = -1
            node_labels = labels_per_key[inverse]
            node_bases = bases_per_key[inverse]
            alive = np.flatnonzero(node_labels >= 0)
            if alive.size:
                frontier = np.concatenate([parent_sp[alive], parent_ep[alive]])
                pair_labels = np.concatenate([node_labels[alive], node_labels[alive]])
                ranks = self._wavelet_tree.rank_pairs(pair_labels, frontier)
                sp[alive] = node_bases[alive] + ranks[: alive.size]
                ep[alive] = node_bases[alive] + ranks[alive.size :]
            return sp, ep

        return trie_backward_search(
            trie, c, self._sigma, advance, interval_cache=interval_cache
        )

    def count(self, pattern: Sequence[int]) -> int:
        """Number of occurrences of the query path in the trajectory string."""
        found = self.suffix_range(pattern)
        if found is None:
            return 0
        sp, ep = found
        return ep - sp

    def count_many(
        self, patterns: Sequence[Sequence[int]], interval_cache=None
    ) -> list[int]:
        """Batched :meth:`count` over a whole workload of query paths."""
        return [
            0 if found is None else found[1] - found[0]
            for found in self.suffix_range_many(patterns, interval_cache=interval_cache)
        ]

    def contains(self, pattern: Sequence[int], interval_cache=None) -> bool:
        """True when the query path occurs at least once."""
        return self.suffix_range(pattern, interval_cache=interval_cache) is not None

    def extract(self, j: int, length: int) -> list[int]:
        """Algorithm 4: extract ``T[i - length, i)`` where ``i = SA[j]``.

        The walk starts by binary-searching the context of row ``j`` in ``C[]``
        and then repeatedly decodes the labelled BWT symbol via the ET-graph
        and LF-steps with PseudoRank.
        """
        if not 0 <= j < self._n:
            raise QueryError(f"BWT position {j} out of range [0, {self._n})")
        if length < 0:
            raise QueryError(f"extraction length must be non-negative, got {length}")
        out = [0] * length
        context = self._symbol_at_row(j)
        row = j
        for k in range(1, length + 1):
            label = self._wavelet_tree.access(row)
            target = self._rml.decode(label, context)
            out[length - k] = target
            row = int(self._c_array[target]) + self._pseudo_rank(row, target, context, label)
            context = target
        return out

    def extract_many(self, rows: Sequence[int], length: int) -> list[list[int]]:
        """Batched Algorithm 4: extract sub-paths from many BWT rows at once.

        Each LF step batches the wavelet-tree accesses and groups the
        PseudoRank calls by label, so a workload of extractions pays one
        vectorized rank per distinct label per step.  Results are
        bit-identical to calling :meth:`extract` per row.
        """
        rows_arr = np.asarray(list(rows), dtype=np.int64)
        if rows_arr.size and (int(rows_arr.min()) < 0 or int(rows_arr.max()) >= self._n):
            raise QueryError(f"BWT positions out of range [0, {self._n})")
        if length < 0:
            raise QueryError(f"extraction length must be non-negative, got {length}")
        m = int(rows_arr.size)
        out = np.zeros((m, length), dtype=np.int64)
        if m == 0 or length == 0:
            return [row.tolist() for row in out]
        contexts = np.searchsorted(self._c_array, rows_arr, side="right") - 1
        current = rows_arr.copy()
        for k in range(1, length + 1):
            current, contexts = self._lf_step_many(current, contexts, out[:, length - k])
        return [row.tolist() for row in out]

    def _lf_step_many(
        self, rows: np.ndarray, contexts: np.ndarray, targets_out: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """One batched LF step: decode every row's label and PseudoRank it."""
        labels = self._wavelet_tree.access_many(rows)
        decode = self._rml.decode
        targets = np.asarray(
            [decode(int(label), int(context)) for label, context in zip(labels, contexts)],
            dtype=np.int64,
        )
        if targets_out is not None:
            targets_out[:] = targets
        ranks = np.empty(rows.size, dtype=np.int64)
        for label in np.unique(labels).tolist():
            mask = labels == label
            ranks[mask] = self._wavelet_tree.rank_many(int(label), rows[mask])
        get_correction = self._corrections.get
        corrections = np.asarray(
            [
                get_correction(int(context), int(target))
                for context, target in zip(contexts, targets)
            ],
            dtype=np.int64,
        )
        return self._c_array[targets] + ranks - corrections, targets

    def extract_full_text(self) -> list[int]:
        """Recover the entire trajectory string (``extract(0, n)`` per Section VI-F)."""
        return self.extract(0, self._n)

    def locate(self, j: int) -> int:
        """Return ``SA[j]`` using the sampled suffix array (extension).

        Requires the index to be built with ``sa_sample_rate``; walks the
        LF-mapping until a sampled row is reached.
        """
        if self._sa_marked is None or self._sa_samples is None:
            raise QueryError("locate requires the index to be built with sa_sample_rate")
        if not 0 <= j < self._n:
            raise QueryError(f"BWT position {j} out of range [0, {self._n})")
        steps = 0
        row = j
        context = self._symbol_at_row(row)
        while not bool(self._sa_marked[row]):
            label = self._wavelet_tree.access(row)
            target = self._rml.decode(label, context)
            row = int(self._c_array[target]) + self._pseudo_rank(row, target, context, label)
            context = target
            steps += 1
        sample_index = int(self._sa_marked_prefix[row])
        return (int(self._sa_samples[sample_index]) + steps) % self._n

    def locate_many(self, rows: Sequence[int]) -> list[int]:
        """Batched :meth:`locate`: walk all rows to their sampled ancestors.

        All rows LF-step together; rows that reach a marked position drop out
        of the frontier while the rest continue, so a suffix range's worth of
        locates shares every wavelet access and PseudoRank batch.
        """
        if self._sa_marked is None or self._sa_samples is None:
            raise QueryError("locate requires the index to be built with sa_sample_rate")
        rows_arr = np.asarray(list(rows), dtype=np.int64)
        if rows_arr.size and (int(rows_arr.min()) < 0 or int(rows_arr.max()) >= self._n):
            raise QueryError(f"BWT positions out of range [0, {self._n})")
        m = int(rows_arr.size)
        out = np.zeros(m, dtype=np.int64)
        if m == 0:
            return []
        current = rows_arr.copy()
        contexts = np.searchsorted(self._c_array, rows_arr, side="right") - 1
        steps = np.zeros(m, dtype=np.int64)
        pending = np.arange(m)
        while pending.size:
            marked = np.asarray(self._sa_marked[current[pending]], dtype=bool)
            done = pending[marked]
            if done.size:
                sample_index = self._sa_marked_prefix[current[done]]
                out[done] = (self._sa_samples[sample_index] + steps[done]) % self._n
            pending = pending[~marked]
            if pending.size == 0:
                break
            next_rows, next_contexts = self._lf_step_many(
                current[pending], contexts[pending]
            )
            current[pending] = next_rows
            contexts[pending] = next_contexts
            steps[pending] += 1
        return out.tolist()

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self, include_et_graph: bool = True) -> int:
        """Total index size.

        Parameters
        ----------
        include_et_graph:
            When true (default) the ET-graph adjacency lists, correction terms
            and ``C[]`` values are included, matching the paper's "CiNCT"
            series; when false only the wavelet tree over ``phi(Tbwt)`` is
            counted, matching "CiNCT (w/o ET-graph)".
        """
        bits = self._wavelet_tree.size_in_bits()
        if include_et_graph:
            bits += self._et_graph.size_in_bits(text_length=self._n)
            bits += self._corrections.size_in_bits()
            bits += IntVector(self._c_array).size_in_bits()
        if self._sa_samples is not None:
            bits += int(self._sa_samples.size) * bits_needed(max(self._n - 1, 1))
            bits += self._n  # marked-row bitmap
        return bits

    def bits_per_symbol(self, include_et_graph: bool = True) -> float:
        """Index size divided by trajectory-string length (the paper's y-axis)."""
        return self.size_in_bits(include_et_graph=include_et_graph) / self._n

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _symbol_at_row(self, j: int) -> int:
        return int(np.searchsorted(self._c_array, j, side="right") - 1)

    def _validated_pattern(self, pattern: Sequence[int]) -> list[int]:
        return validate_pattern(pattern, self._sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CiNCT(n={self._n}, sigma={self._sigma}, b={self.block_size}, "
            f"strategy={self.labeling_strategy!r})"
        )


def reference_index(bwt_result: BWTResult) -> FMIndexBase:
    """Return a plain reference FM-index for cross-checking CiNCT results."""
    from ..fmindex.variants import UncompressedFMIndex

    return UncompressedFMIndex(bwt_result)
