"""PseudoRank: simulating rank over the original BWT from the labelled BWT.

Theorem 2 of the paper: for an ET-graph edge ``(w', w)`` with label
``eta = phi(w | w')`` and any ``j`` with ``C[w'] <= j <= C[w'+1]``,

    ``rank_w(Tbwt, j) = rank_eta(phi(Tbwt), j) - Z_{w'w}``

where the correction term

    ``Z_{w'w} = rank_eta(phi(Tbwt), C[w']) - rank_w(Tbwt, C[w'])``

does not depend on ``j`` and can therefore be precomputed once per edge and
attached to the ET-graph.  This module computes the correction terms and
provides the PseudoRank operation (Algorithm 2).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..exceptions import QueryError
from ..succinct import bits_needed
from .rml import RMLFunction


class _RankStructure(Protocol):
    """Anything that can answer ``rank(symbol, i)`` over the labelled BWT."""

    def rank(self, symbol: int, i: int) -> int: ...


class CorrectionTerms:
    """The per-edge correction terms ``Z_{w'w}`` of Theorem 2."""

    def __init__(self, terms: dict[tuple[int, int], int], text_length: int):
        self._terms = terms
        self._text_length = text_length

    def get(self, context: int, target: int) -> int:
        """Return ``Z_{context, target}``; raises for unobserved transitions."""
        try:
            return self._terms[(int(context), int(target))]
        except KeyError:
            raise QueryError(f"no correction term for edge {context} -> {target}") from None

    def __contains__(self, edge: tuple[int, int]) -> bool:
        return (int(edge[0]), int(edge[1])) in self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def size_in_bits(self) -> int:
        """Each term is charged ``ceil(lg n)`` bits, stored once per ET-graph edge."""
        return len(self._terms) * bits_needed(max(self._text_length - 1, 1))


def compute_correction_terms(
    bwt: np.ndarray,
    labelled_bwt: np.ndarray,
    c_array: np.ndarray,
    rml: RMLFunction,
) -> CorrectionTerms:
    """Precompute ``Z_{w'w}`` for every ET-graph edge in a single pass.

    Both ranks in the definition of ``Z`` are taken at the context boundary
    ``C[w']``.  Within the context block of ``w'`` the labelled and original
    symbols are in one-to-one correspondence, so a single left-to-right sweep
    that maintains running occurrence counts of original symbols and labels is
    enough: at each boundary ``C[w']`` we snapshot
    ``label_count[eta] - symbol_count[w]`` for every out-neighbour ``w``.
    """
    n = int(bwt.size)
    sigma = int(c_array.size - 1)
    max_label = rml.max_label
    symbol_counts = np.zeros(sigma, dtype=np.int64)
    label_counts = np.zeros(max_label + 1, dtype=np.int64)

    terms: dict[tuple[int, int], int] = {}
    position = 0
    for context in range(sigma):
        boundary = int(c_array[context])
        while position < boundary:
            symbol_counts[int(bwt[position])] += 1
            label_counts[int(labelled_bwt[position])] += 1
            position += 1
        if int(c_array[context + 1]) == boundary:
            continue  # context never occurs; no edges to label
        for target, label in rml.labels_for_context(context).items():
            terms[(context, target)] = int(label_counts[label]) - int(symbol_counts[target])
    return CorrectionTerms(terms, text_length=n)


def pseudo_rank(
    labelled_rank_structure: _RankStructure,
    j: int,
    target: int,
    context: int,
    rml: RMLFunction,
    corrections: CorrectionTerms,
    c_array: np.ndarray,
) -> int:
    """Algorithm 2: ``rank_target(Tbwt, j)`` computed from the labelled BWT only.

    Raises
    ------
    QueryError
        If ``target`` is not an out-neighbour of ``context`` or ``j`` lies
        outside ``[C[context], C[context+1]]`` (the preconditions of
        Theorem 2, which Algorithm 3 guarantees before calling).
    """
    if not rml.has_label(target, context):
        raise QueryError(f"{target} is not an out-neighbour of {context}")
    lower = int(c_array[context])
    upper = int(c_array[context + 1])
    if not lower <= j <= upper:
        raise QueryError(f"position {j} outside the context range [{lower}, {upper}]")
    label = rml.label(target, context)
    return labelled_rank_structure.rank(label, j) - corrections.get(context, target)
