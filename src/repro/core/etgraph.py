"""Empirical transition graph (ET-graph), Definition 3 of the paper.

The ET-graph ``G_T`` of a trajectory string ``T`` has one vertex per alphabet
symbol and a directed edge ``(w', w)`` whenever the substring ``w w'`` occurs
in ``T``.  Because ``T`` stores *reversed* trajectories, the substring
``w w'`` in ``T`` means that in travel order the vehicle moved from segment
``w'`` to segment ``w`` — so edges point along the direction of travel, and
``N_out(w')`` is the set of segments reachable in one step from ``w'`` (plus
the special symbols, which participate exactly as in the paper's Fig. 6a).

The graph also records the bigram count ``n_{w w'}`` of every edge, which the
optimal RML strategy sorts by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import ConstructionError, QueryError
from ..succinct import bits_needed


@dataclass(frozen=True)
class ETEdge:
    """A directed ET-graph edge ``context -> target`` with its bigram count."""

    context: int
    target: int
    bigram_count: int


class ETGraph:
    """Empirical transition graph of a trajectory string.

    Parameters
    ----------
    text:
        The trajectory string (integer symbols, ending with ``#``).
    sigma:
        Alphabet size; inferred from the text when omitted.
    """

    def __init__(self, text: Sequence[int] | np.ndarray, sigma: int | None = None):
        arr = np.asarray(text, dtype=np.int64)
        if arr.size < 2:
            raise ConstructionError("the trajectory string must contain at least two symbols")
        max_symbol = int(arr.max())
        if sigma is None:
            sigma = max_symbol + 1
        elif sigma <= max_symbol:
            raise ConstructionError(f"sigma {sigma} too small for max symbol {max_symbol}")
        self._sigma = int(sigma)
        self._n = int(arr.size)

        # Substring "w w'" at positions (i, i+1): edge context=w' -> target=w.
        # The string is treated cyclically (the BWT is defined over rotations),
        # so the wrap-around pair (T[n-1], T[0]) contributes one edge too; this
        # is what makes every symbol of every BWT context block labellable,
        # matching the paper's worked example (edge F -> # in Fig. 6a/6b).
        targets = arr
        contexts = np.roll(arr, -1)
        keys = contexts * self._sigma + targets
        unique_keys, counts = np.unique(keys, return_counts=True)
        self._adjacency: dict[int, dict[int, int]] = {}
        for key, count in zip(unique_keys, counts):
            context = int(key // self._sigma)
            target = int(key % self._sigma)
            self._adjacency.setdefault(context, {})[target] = int(count)
        self._n_edges = int(unique_keys.size)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def sigma(self) -> int:
        """Alphabet size (number of vertices)."""
        return self._sigma

    @property
    def n_edges(self) -> int:
        """Number of directed edges ``|E_T|``."""
        return self._n_edges

    def out_neighbours(self, context: int) -> list[int]:
        """``N_out(context)``: targets reachable in one observed transition."""
        return sorted(self._adjacency.get(int(context), {}))

    def out_degree(self, context: int) -> int:
        """Number of distinct observed successors of ``context``."""
        return len(self._adjacency.get(int(context), {}))

    def max_out_degree(self) -> int:
        """The maximum out-degree ``delta`` over all contexts."""
        if not self._adjacency:
            return 0
        return max(len(neighbours) for neighbours in self._adjacency.values())

    def average_out_degree(self, edge_symbols_only: bool = True, first_edge_symbol: int = 2) -> float:
        """Average out-degree ``d-bar`` reported in Table III.

        Parameters
        ----------
        edge_symbols_only:
            When true (the default, matching the paper) only road-segment
            vertices are averaged over, excluding ``#`` and ``$``.
        first_edge_symbol:
            The smallest symbol value that denotes a road segment.
        """
        degrees = [
            len(neighbours)
            for context, neighbours in self._adjacency.items()
            if not edge_symbols_only or context >= first_edge_symbol
        ]
        if not degrees:
            return 0.0
        return sum(degrees) / len(degrees)

    def has_edge(self, context: int, target: int) -> bool:
        """True when the transition ``context -> target`` was observed."""
        return int(target) in self._adjacency.get(int(context), {})

    def bigram_count(self, context: int, target: int) -> int:
        """Number of times the transition ``context -> target`` occurs in ``T``."""
        try:
            return self._adjacency[int(context)][int(target)]
        except KeyError:
            raise QueryError(f"no ET-graph edge {context} -> {target}") from None

    def edges(self) -> Iterator[ETEdge]:
        """Iterate over all edges with their bigram counts."""
        for context in sorted(self._adjacency):
            for target, count in sorted(self._adjacency[context].items()):
                yield ETEdge(context=context, target=target, bigram_count=count)

    def neighbours_by_frequency(self, context: int) -> list[tuple[int, int]]:
        """``(target, bigram_count)`` pairs sorted by decreasing count, ties by symbol."""
        items = self._adjacency.get(int(context), {})
        return sorted(items.items(), key=lambda pair: (-pair[1], pair[0]))

    def contexts(self) -> list[int]:
        """All vertices that have at least one outgoing edge."""
        return sorted(self._adjacency)

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self, text_length: int | None = None) -> int:
        """Adjacency-list storage cost of the ET-graph (Section III-C3).

        Per vertex: an offset into the concatenated edge array
        (``ceil(lg |E_T|)`` bits) and the ``C[w]`` value (``ceil(lg n)``
        bits).  Per edge: the target symbol (``ceil(lg sigma)``) and the label
        (``ceil(lg (delta + 2))``).  The correction terms ``Z`` attached to
        edges are accounted for by
        :class:`~repro.core.pseudorank.CorrectionTerms` because they belong to
        the PseudoRank machinery rather than to the bare graph.
        """
        n = text_length if text_length is not None else self._n
        n_bits = bits_needed(max(n - 1, 1))
        offset_bits = bits_needed(max(self._n_edges, 1))
        symbol_bits = bits_needed(max(self._sigma - 1, 1))
        label_bits = bits_needed(max(self.max_out_degree(), 1))
        vertex_bits = len(self._adjacency) * (offset_bits + n_bits)
        edge_bits = self._n_edges * (symbol_bits + label_bits)
        return vertex_bits + edge_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ETGraph(sigma={self._sigma}, edges={self._n_edges})"
