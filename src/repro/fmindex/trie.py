"""Pattern trie for workload-aware shared backward search.

Backward search over the trajectory string consumes a travel-order pattern
from its first symbol to its last (the stored text is reversed, so this *is*
the paper's right-to-left scan over the original trajectories).  Two patterns
that share a travel-order prefix therefore share every search state up to the
point they diverge — which is exactly a trie over the patterns *as consumed*,
i.e. a suffix trie of the original (un-reversed) text-order patterns.

:class:`PatternTrie` materialises that structure for a whole batch:

* nodes are numbered in BFS order, so every depth occupies one contiguous
  slice of the node arrays and a search can sweep level by level;
* each node records its parent, its edge symbol and its full prefix tuple
  (the interval-cache key for the search state it denotes);
* every input pattern maps to its terminal node, so duplicated patterns and
  patterns that are prefixes of other patterns cost nothing extra.

:func:`trie_backward_search` is the shared driver: it advances **one suffix
range per trie node** instead of one per pattern, harvesting each pattern's
answer from its terminal node.  N overlapping patterns therefore cost
O(distinct trie nodes) rank work rather than O(total symbols), a dead node
prunes its entire subtree in O(1) per descendant, and a node whose prefix is
found in the (optional) interval cache costs one dictionary lookup instead of
any rank work at all.  Results are bit-identical to running the scalar
backward search per pattern.
"""

from __future__ import annotations

from itertools import chain
from typing import Callable, Sequence

import numpy as np

#: ``advance(contexts, symbols, parent_sp, parent_ep) -> (sp, ep)``: one
#: backward-search step for a set of trie nodes at the same depth, given each
#: node's parent symbol (the RML context) and parent suffix range.  A node the
#: index cannot advance (e.g. a missing RML label) must come back with an
#: empty range (``sp >= ep``).
TrieAdvance = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    tuple[np.ndarray, np.ndarray],
]


class PatternTrie:
    """Trie over a batch of encoded patterns, BFS-ordered for level sweeps.

    Parameters
    ----------
    patterns:
        Encoded symbol patterns in travel order (consumption order of the
        backward search).  Patterns must be non-empty; symbol validation is
        the caller's concern — the trie itself accepts any non-negative
        symbols so one trie built over a *global* alphabet can be fanned
        across partitions with smaller alphabets (out-of-alphabet symbols
        simply become dead nodes there).
    """

    __slots__ = (
        "n_nodes",
        "n_patterns",
        "max_depth",
        "parents",
        "symbols",
        "depths",
        "level_slices",
        "terminals",
        "_prefixes",
    )

    def __init__(self, patterns: Sequence[Sequence[int]]):
        n_patterns = len(patterns)
        lengths = np.fromiter(
            (len(pattern) for pattern in patterns), dtype=np.int64, count=n_patterns
        )
        total = int(lengths.sum()) if n_patterns else 0
        flat = np.fromiter(chain.from_iterable(patterns), dtype=np.int64, count=total)
        offsets = np.zeros(n_patterns, dtype=np.int64)
        if n_patterns > 1:
            np.cumsum(lengths[:-1], out=offsets[1:])

        self.n_patterns = n_patterns
        self.max_depth = int(lengths.max()) if n_patterns else 0

        # Level-synchronous construction: at every depth the still-active
        # patterns are grouped by their (current node, next symbol) pair with
        # one ``np.unique`` pass, and each distinct pair becomes one node.
        # Ids are handed out level by level, so the numbering is BFS by
        # construction — every depth is one contiguous slice and parents
        # always precede their children.
        key_mult = int(flat.max()) + 1 if total else 1
        parent_levels: list[np.ndarray] = []
        symbol_levels: list[np.ndarray] = []
        level_slices: list[tuple[int, int]] = []
        terminals = np.zeros(n_patterns, dtype=np.int64)
        node_of = np.zeros(n_patterns, dtype=np.int64)
        active = np.flatnonzero(lengths > 0)
        next_id = 1
        for depth in range(self.max_depth):
            keys = node_of[active] * key_mult + flat[offsets[active] + depth]
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            parent_levels.append(unique_keys // key_mult)
            symbol_levels.append(unique_keys % key_mult)
            level_slices.append((next_id, next_id + int(unique_keys.size)))
            node_of[active] = next_id + inverse
            next_id += int(unique_keys.size)
            finished = lengths[active] == depth + 1
            if finished.any():
                done = active[finished]
                terminals[done] = node_of[done]
                active = active[~finished]

        n_nodes = next_id
        self.n_nodes = n_nodes
        self.parents = np.empty(n_nodes, dtype=np.int64)
        self.symbols = np.empty(n_nodes, dtype=np.int64)
        self.depths = np.zeros(n_nodes, dtype=np.int64)
        self.parents[0] = -1
        self.symbols[0] = -1
        for depth, (start, end) in enumerate(level_slices):
            self.parents[start:end] = parent_levels[depth]
            self.symbols[start:end] = symbol_levels[depth]
            self.depths[start:end] = depth + 1
        self.level_slices = level_slices
        self.terminals = terminals.tolist()
        self._prefixes: list[tuple[int, ...]] | None = None

    @property
    def prefixes(self) -> list[tuple[int, ...]]:
        """Per-node prefix tuples — the interval-cache keys.

        Built lazily on first use: only searches that carry an interval cache
        ever key by prefix, and the cache-less hot path should not pay the
        tuple materialisation.  A parent's BFS id is always smaller than its
        children's, so one forward pass suffices.
        """
        if self._prefixes is None:
            prefixes: list[tuple[int, ...]] = [()] * self.n_nodes
            parents = self.parents.tolist()
            symbols = self.symbols.tolist()
            for node in range(1, self.n_nodes):
                prefixes[node] = prefixes[parents[node]] + (symbols[node],)
            self._prefixes = prefixes
        return self._prefixes


def trie_backward_search(
    trie: PatternTrie,
    c_array: np.ndarray | Sequence[int],
    sigma: int,
    advance: TrieAdvance,
    interval_cache=None,
) -> list[tuple[int, int] | None]:
    """Run backward search over every trie node, one frontier entry per node.

    Sweeps the trie level by level: depth-1 nodes seed from ``C[]``, deeper
    nodes advance from their parent's suffix range via ``advance`` (the only
    index-specific piece — plain LF refinement for the FM baselines, the
    RML/PseudoRank step for CiNCT).  A node is *dead* when its parent is dead,
    its symbol is outside this index's alphabet (``>= sigma``, which lets one
    globally-encoded trie fan across partitions with smaller alphabets), or
    its computed range is empty — and a dead node's whole subtree is skipped
    without further rank work.

    ``interval_cache``, when given, is any object with ``enabled``,
    ``lookup(key) -> (found, interval)`` and ``store(key, interval)`` over
    prefix-tuple keys (``interval`` is ``(sp, ep)`` or ``None`` for a dead
    prefix).  Cached nodes are adopted without rank work; freshly computed
    nodes are stored, so coalesced batches warm each other and an incremental
    one-edge extension of a previously seen pattern costs a single LF step.

    Returns ``(sp, ep)`` or ``None`` per input pattern, bit-identical to the
    scalar backward search.
    """
    c = np.asarray(c_array, dtype=np.int64)
    n_nodes = trie.n_nodes
    sp = np.zeros(n_nodes, dtype=np.int64)
    ep = np.zeros(n_nodes, dtype=np.int64)
    alive = np.zeros(n_nodes, dtype=bool)
    alive[0] = True  # the virtual root (empty prefix) spans everything
    symbols = trie.symbols
    parents = trie.parents
    cache = interval_cache
    if cache is not None and not getattr(cache, "enabled", True):
        cache = None
    prefixes = trie.prefixes if cache is not None else None

    for start, end in trie.level_slices:
        if cache is not None:
            pending_nodes: list[int] = []
            for node in range(start, end):
                found, interval = cache.lookup(prefixes[node])
                if found:
                    if interval is not None:
                        sp[node], ep[node] = interval
                        alive[node] = sp[node] < ep[node]
                else:
                    pending_nodes.append(node)
            pending = np.asarray(pending_nodes, dtype=np.int64)
        else:
            pending = np.arange(start, end, dtype=np.int64)
        if pending.size == 0:
            continue
        computable = alive[parents[pending]] & (symbols[pending] < sigma)
        todo = pending[computable]
        if todo.size == 0:
            continue
        syms = symbols[todo]
        if int(trie.depths[start]) == 1:
            new_sp = c[syms]
            new_ep = c[syms + 1]
        else:
            par = parents[todo]
            new_sp, new_ep = advance(symbols[par], syms, sp[par], ep[par])
        sp[todo] = new_sp
        ep[todo] = new_ep
        live = new_sp < new_ep
        alive[todo] = live
        if cache is not None:
            for i, node in enumerate(todo.tolist()):
                cache.store(
                    prefixes[node],
                    (int(new_sp[i]), int(new_ep[i])) if live[i] else None,
                )

    return [
        (int(sp[node]), int(ep[node])) if alive[node] else None
        for node in trie.terminals
    ]


__all__ = ["PatternTrie", "TrieAdvance", "trie_backward_search"]
