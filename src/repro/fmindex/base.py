"""Abstract FM-index interface and the reference backward-search algorithm.

Every index variant in this repository (the baselines in this package and
CiNCT itself) exposes the same query surface:

* :meth:`FMIndexBase.suffix_range` — Algorithm 1 of the paper (``SearchFM``),
  the suffix-range / pattern-matching query;
* :meth:`FMIndexBase.count` — number of occurrences of a pattern;
* :meth:`FMIndexBase.extract` — sub-path extraction by LF-stepping from an
  arbitrary BWT position (the query of Section IV-C);
* :meth:`FMIndexBase.size_in_bits` — exact size accounting used by the
  benchmark harness.

In addition, every variant inherits a *batch* query surface —
:meth:`FMIndexBase.suffix_range_many`, :meth:`FMIndexBase.count_many` and
:meth:`FMIndexBase.extract_many` — that runs backward search for a whole
workload at once.  The batch is first folded into a
:class:`~repro.fmindex.trie.PatternTrie` (patterns sharing a travel-order
prefix share every search state up to their divergence point), and
:meth:`FMIndexBase.trie_search` then advances **one suffix range per trie
node**: at every depth the pending nodes are grouped by their edge symbol and
all their frontier positions are answered with one :meth:`rank_bwt_many`
call, which subclasses back with vectorized wavelet ranks.  The results are
bit-identical to the scalar loop, overlapping patterns cost O(distinct trie
nodes) instead of O(total symbols), and an optional epoch-invalidated
interval cache (see :class:`repro.engine.executor.IntervalCache`) lets warm
queries resume from their deepest cached ancestor.

The baselines implement :meth:`rank_bwt` / :meth:`access_bwt` on top of a
wavelet structure over the *original* BWT; CiNCT overrides the search and
extraction algorithms because it only stores the *labelled* BWT.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..exceptions import (
    EMPTY_PATTERN_MESSAGE,
    QueryError,
    symbol_out_of_range_message,
)
from ..strings.bwt import BWTResult
from .trie import PatternTrie, trie_backward_search


def validate_pattern(pattern: Sequence[int], sigma: int) -> list[int]:
    """Normalise a symbol pattern and enforce the canonical error behaviour.

    Every index backend funnels its query patterns through this helper so that
    empty patterns and out-of-alphabet symbols raise :class:`QueryError` with
    identical messages everywhere (see :mod:`repro.exceptions`).
    """
    symbols = [int(s) for s in pattern]
    if not symbols:
        raise QueryError(EMPTY_PATTERN_MESSAGE)
    for symbol in symbols:
        if not 0 <= symbol < sigma:
            raise QueryError(symbol_out_of_range_message(symbol, sigma))
    return symbols


def iter_key_groups(members: np.ndarray, keys: np.ndarray):
    """Yield ``(key, members_subset)`` for every distinct key, order-stable.

    The grouping idiom shared by the batched searchers: one stable argsort,
    then run boundaries from the sorted keys.
    """
    order = np.argsort(keys, kind="stable")
    sorted_members = members[order]
    sorted_keys = keys[order]
    boundaries = np.concatenate(
        ([0], np.flatnonzero(np.diff(sorted_keys)) + 1, [sorted_keys.size])
    )
    for g in range(boundaries.size - 1):
        yield int(sorted_keys[boundaries[g]]), sorted_members[boundaries[g] : boundaries[g + 1]]


def batched_backward_search(
    pats: list[list[int]],
    c_array: np.ndarray,
    advance,
) -> list[tuple[int, int] | None]:
    """Shared driver for running backward search over a whole workload.

    Handles the scaffolding common to Algorithm 1 and Algorithm 3: the padded
    pattern matrix, the initial ``C[]`` ranges, harvesting patterns as they
    complete, and pruning empty ranges.  ``advance(step, active, matrix, sp,
    ep)`` performs one backward-search step for the still-active pattern
    indices — updating ``sp``/``ep`` in place — and returns the indices that
    may continue (before the empty-range filter).
    """
    m = len(pats)
    results: list[tuple[int, int] | None] = [None] * m
    if m == 0:
        return results
    lengths = np.fromiter((len(p) for p in pats), dtype=np.int64, count=m)
    max_len = int(lengths.max())
    matrix = np.zeros((m, max_len), dtype=np.int64)
    for i, pattern in enumerate(pats):
        matrix[i, : len(pattern)] = pattern
    sp = c_array[matrix[:, 0]].copy()
    ep = c_array[matrix[:, 0] + 1].copy()
    active = np.flatnonzero(sp < ep)
    for step in range(1, max_len + 1):
        if active.size == 0:
            break
        for i in active[lengths[active] == step].tolist():
            results[i] = (int(sp[i]), int(ep[i]))
        active = active[lengths[active] > step]
        if active.size == 0:
            break
        active = advance(step, active, matrix, sp, ep)
        active = active[sp[active] < ep[active]]
    return results


class FMIndexBase(abc.ABC):
    """Common behaviour of all FM-index variants.

    Subclasses must provide symbol-level rank and access over the BWT; this
    base class implements backward search, counting and extraction in terms
    of those two primitives.
    """

    #: human-readable name used by the benchmark harness
    name: str = "FM-index"

    def __init__(self, bwt_result: BWTResult):
        self._bwt_result = bwt_result
        self._n = bwt_result.length
        self._sigma = bwt_result.sigma
        # The C[] search array is normalised to a numpy int64 array once, so
        # per-call queries (symbol_at_row in particular) never rebuild a list
        # or re-check the container type.
        self._c_array = np.asarray(bwt_result.c_array, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # primitives supplied by subclasses
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def rank_bwt(self, symbol: int, i: int) -> int:
        """Number of occurrences of ``symbol`` in ``Tbwt[0, i)``."""

    @abc.abstractmethod
    def access_bwt(self, j: int) -> int:
        """Return ``Tbwt[j]``."""

    @abc.abstractmethod
    def size_in_bits(self) -> int:
        """Total index size in bits (used for the bits-per-symbol figures)."""

    def rank_bwt_many(self, symbol: int, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Batched :meth:`rank_bwt` over an array of positions.

        Subclasses backed by wavelet structures override this with genuinely
        vectorized per-level rank calls; the default is a scalar loop so every
        variant supports the batch API.
        """
        return np.asarray(
            [self.rank_bwt(symbol, int(p)) for p in positions], dtype=np.int64
        )

    def access_bwt_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Batched :meth:`access_bwt` over an array of BWT rows."""
        return np.asarray([self.access_bwt(int(j)) for j in positions], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # shared queries
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Length of the indexed trajectory string."""
        return self._n

    @property
    def sigma(self) -> int:
        """Alphabet size of the indexed trajectory string."""
        return self._sigma

    @property
    def c_array(self) -> np.ndarray:
        """The FM-index ``C[]`` array (length ``sigma + 1``)."""
        return self._c_array

    def bits_per_symbol(self) -> float:
        """Index size divided by the trajectory-string length."""
        return self.size_in_bits() / self._n

    def suffix_range(
        self, pattern: Sequence[int], interval_cache=None
    ) -> tuple[int, int] | None:
        """Find the suffix range of ``pattern`` (Algorithm 1, ``SearchFM``).

        Parameters
        ----------
        pattern:
            The query path as internal symbols, in travel order.  Because the
            trajectory string stores *reversed* trajectories, backward search
            consumes the pattern from its last symbol backwards over ``T``,
            which corresponds to scanning the path in travel order — exactly
            Algorithm 1 applied to the trajectory string.
        interval_cache:
            Optional suffix-range interval cache (``deepest``/``store`` over
            prefix-tuple keys).  When given, the search resumes from the
            deepest cached ancestor of the pattern — an incremental one-edge
            extension of a previously seen pattern costs a single LF step —
            and the final range is stored for future queries.

        Returns
        -------
        ``(sp, ep)`` with ``sp < ep`` when the pattern occurs, else ``None``.
        """
        symbols = self._validated_pattern(pattern)
        # The trajectory string stores reversed trajectories, so a query path
        # given in travel order corresponds to its reversal as a substring of
        # T.  Running Algorithm 1 on that reversal means consuming the
        # travel-order pattern from its first symbol to its last.
        cache = interval_cache
        if cache is not None and not getattr(cache, "enabled", True):
            cache = None
        n = len(symbols)
        prefix_len = 0
        sp = ep = 0
        if cache is not None:
            keys = [tuple(symbols[:k]) for k in range(n, 0, -1)]
            hit, interval = cache.deepest(keys)
            if hit >= 0:
                if interval is None:
                    return None
                sp, ep = interval
                prefix_len = n - hit
        if prefix_len == 0:
            w = symbols[0]
            sp = int(self._c_array[w])
            ep = int(self._c_array[w + 1])
            prefix_len = 1
            if sp >= ep:
                if cache is not None:
                    cache.store(tuple(symbols), None)
                return None
        for w in symbols[prefix_len:]:
            sp = int(self._c_array[w]) + self.rank_bwt(w, sp)
            ep = int(self._c_array[w]) + self.rank_bwt(w, ep)
            if sp >= ep:
                if cache is not None:
                    cache.store(tuple(symbols), None)
                return None
        if cache is not None and prefix_len < n:
            cache.store(tuple(symbols), (sp, ep))
        return sp, ep

    def suffix_range_many(
        self, patterns: Sequence[Sequence[int]], interval_cache=None
    ) -> list[tuple[int, int] | None]:
        """Batched :meth:`suffix_range` over a whole pattern workload.

        The workload is folded into one :class:`PatternTrie` and handed to
        :meth:`trie_search`: patterns sharing a travel-order prefix share a
        single suffix-range frontier entry up to their divergence point, so
        overlapping workloads cost O(distinct trie nodes) rank work instead
        of O(total symbols).  Results are bit-identical to calling
        :meth:`suffix_range` per pattern.
        """
        pats = [self._validated_pattern(p) for p in patterns]
        if not pats:
            return []
        return self.trie_search(PatternTrie(pats), interval_cache=interval_cache)

    def trie_search(
        self, trie: PatternTrie, interval_cache=None
    ) -> list[tuple[int, int] | None]:
        """Backward search over a prebuilt pattern trie (one range per node).

        At every trie depth the pending nodes are grouped by their edge
        symbol (``np.unique``) and each group's parent frontier — both ``sp``
        and ``ep`` for every node — is answered with a single
        :meth:`rank_bwt_many` call.  Symbols outside this index's alphabet
        make their node (and its subtree) dead rather than raising, so one
        trie built over a global alphabet can be fanned across partitions
        with smaller alphabets.  See
        :func:`~repro.fmindex.trie.trie_backward_search` for the dead-node
        and interval-cache semantics.
        """
        c = self._c_array

        def advance(contexts, syms, parent_sp, parent_ep):
            n = syms.size
            sp = np.empty(n, dtype=np.int64)
            ep = np.empty(n, dtype=np.int64)
            unique_syms, inverse = np.unique(syms, return_inverse=True)
            for k, w in enumerate(unique_syms.tolist()):
                members = np.flatnonzero(inverse == k)
                frontier = np.concatenate([parent_sp[members], parent_ep[members]])
                ranks = self.rank_bwt_many(w, frontier)
                base = int(c[w])
                sp[members] = base + ranks[: members.size]
                ep[members] = base + ranks[members.size :]
            return sp, ep

        return trie_backward_search(
            trie, c, self._sigma, advance, interval_cache=interval_cache
        )

    def count(self, pattern: Sequence[int]) -> int:
        """Number of occurrences of ``pattern`` in the trajectory string."""
        found = self.suffix_range(pattern)
        if found is None:
            return 0
        sp, ep = found
        return ep - sp

    def count_many(
        self, patterns: Sequence[Sequence[int]], interval_cache=None
    ) -> list[int]:
        """Batched :meth:`count` over a whole pattern workload."""
        return [
            0 if found is None else found[1] - found[0]
            for found in self.suffix_range_many(patterns, interval_cache=interval_cache)
        ]

    def contains(self, pattern: Sequence[int], interval_cache=None) -> bool:
        """True when the pattern occurs at least once."""
        return self.suffix_range(pattern, interval_cache=interval_cache) is not None

    def extract(self, j: int, length: int) -> list[int]:
        """Extract ``T[i - length, i)`` where ``i = SA[j]`` (Section IV-C).

        The extraction walks the LF-mapping ``length`` times starting from BWT
        row ``j``, recovering the symbols that precede the suffix at row ``j``
        in reverse text order; because trajectories are stored reversed, this
        yields a sub-path in travel order.
        """
        if not 0 <= j < self._n:
            raise QueryError(f"BWT position {j} out of range [0, {self._n})")
        if length < 0:
            raise QueryError(f"extraction length must be non-negative, got {length}")
        out = [0] * length
        row = j
        for k in range(1, length + 1):
            symbol = self.access_bwt(row)
            out[length - k] = symbol
            row = int(self._c_array[symbol]) + self.rank_bwt(symbol, row)
        return out

    def extract_many(self, rows: Sequence[int], length: int) -> list[list[int]]:
        """Batched :meth:`extract`: LF-walk all start rows simultaneously.

        Each step batches the BWT accesses and groups the rank calls by the
        decoded symbol, so wavelet-backed variants pay one vectorized rank per
        distinct symbol per step instead of one scalar rank per row.
        """
        rows_arr = np.asarray(list(rows), dtype=np.int64)
        if rows_arr.size and (int(rows_arr.min()) < 0 or int(rows_arr.max()) >= self._n):
            raise QueryError(f"BWT positions out of range [0, {self._n})")
        if length < 0:
            raise QueryError(f"extraction length must be non-negative, got {length}")
        m = int(rows_arr.size)
        out = np.zeros((m, length), dtype=np.int64)
        if m == 0 or length == 0:
            return [row.tolist() for row in out]
        current = rows_arr.copy()
        for k in range(1, length + 1):
            symbols = self.access_bwt_many(current)
            out[:, length - k] = symbols
            successor = np.empty(m, dtype=np.int64)
            for w in np.unique(symbols).tolist():
                mask = symbols == w
                successor[mask] = int(self._c_array[w]) + self.rank_bwt_many(
                    int(w), current[mask]
                )
            current = successor
        return [row.tolist() for row in out]

    def symbol_at_row(self, j: int) -> int:
        """Return the first symbol of the suffix at BWT row ``j``.

        This is the binary search over ``C[]`` used at Line 1 of Algorithm 4;
        the search array is prepared once in ``__init__``.
        """
        if not 0 <= j < self._n:
            raise QueryError(f"BWT position {j} out of range [0, {self._n})")
        # Find the largest w with C[w] <= j.
        return int(np.searchsorted(self._c_array, j, side="right") - 1)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _validated_pattern(self, pattern: Sequence[int]) -> list[int]:
        return validate_pattern(pattern, self._sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(n={self._n}, sigma={self._sigma})"
