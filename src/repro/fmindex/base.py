"""Abstract FM-index interface and the reference backward-search algorithm.

Every index variant in this repository (the baselines in this package and
CiNCT itself) exposes the same query surface:

* :meth:`FMIndexBase.suffix_range` — Algorithm 1 of the paper (``SearchFM``),
  the suffix-range / pattern-matching query;
* :meth:`FMIndexBase.count` — number of occurrences of a pattern;
* :meth:`FMIndexBase.extract` — sub-path extraction by LF-stepping from an
  arbitrary BWT position (the query of Section IV-C);
* :meth:`FMIndexBase.size_in_bits` — exact size accounting used by the
  benchmark harness.

The baselines implement :meth:`rank_bwt` / :meth:`access_bwt` on top of a
wavelet structure over the *original* BWT; CiNCT overrides the search and
extraction algorithms because it only stores the *labelled* BWT.
"""

from __future__ import annotations

import abc
from bisect import bisect_right
from typing import Sequence

import numpy as np

from ..exceptions import QueryError
from ..strings.bwt import BWTResult


class FMIndexBase(abc.ABC):
    """Common behaviour of all FM-index variants.

    Subclasses must provide symbol-level rank and access over the BWT; this
    base class implements backward search, counting and extraction in terms
    of those two primitives.
    """

    #: human-readable name used by the benchmark harness
    name: str = "FM-index"

    def __init__(self, bwt_result: BWTResult):
        self._bwt_result = bwt_result
        self._n = bwt_result.length
        self._sigma = bwt_result.sigma
        self._c_array = bwt_result.c_array

    # ------------------------------------------------------------------ #
    # primitives supplied by subclasses
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def rank_bwt(self, symbol: int, i: int) -> int:
        """Number of occurrences of ``symbol`` in ``Tbwt[0, i)``."""

    @abc.abstractmethod
    def access_bwt(self, j: int) -> int:
        """Return ``Tbwt[j]``."""

    @abc.abstractmethod
    def size_in_bits(self) -> int:
        """Total index size in bits (used for the bits-per-symbol figures)."""

    # ------------------------------------------------------------------ #
    # shared queries
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Length of the indexed trajectory string."""
        return self._n

    @property
    def sigma(self) -> int:
        """Alphabet size of the indexed trajectory string."""
        return self._sigma

    @property
    def c_array(self) -> np.ndarray:
        """The FM-index ``C[]`` array (length ``sigma + 1``)."""
        return self._c_array

    def bits_per_symbol(self) -> float:
        """Index size divided by the trajectory-string length."""
        return self.size_in_bits() / self._n

    def suffix_range(self, pattern: Sequence[int]) -> tuple[int, int] | None:
        """Find the suffix range of ``pattern`` (Algorithm 1, ``SearchFM``).

        Parameters
        ----------
        pattern:
            The query path as internal symbols, in travel order.  Because the
            trajectory string stores *reversed* trajectories, backward search
            consumes the pattern from its last symbol backwards over ``T``,
            which corresponds to scanning the path in travel order — exactly
            Algorithm 1 applied to the trajectory string.

        Returns
        -------
        ``(sp, ep)`` with ``sp < ep`` when the pattern occurs, else ``None``.
        """
        symbols = self._validated_pattern(pattern)
        # The trajectory string stores reversed trajectories, so a query path
        # given in travel order corresponds to its reversal as a substring of
        # T.  Running Algorithm 1 on that reversal means consuming the
        # travel-order pattern from its first symbol to its last.
        w = symbols[0]
        sp = int(self._c_array[w])
        ep = int(self._c_array[w + 1])
        if sp >= ep:
            return None
        for w in symbols[1:]:
            sp = int(self._c_array[w]) + self.rank_bwt(w, sp)
            ep = int(self._c_array[w]) + self.rank_bwt(w, ep)
            if sp >= ep:
                return None
        return sp, ep

    def count(self, pattern: Sequence[int]) -> int:
        """Number of occurrences of ``pattern`` in the trajectory string."""
        found = self.suffix_range(pattern)
        if found is None:
            return 0
        sp, ep = found
        return ep - sp

    def contains(self, pattern: Sequence[int]) -> bool:
        """True when the pattern occurs at least once."""
        return self.suffix_range(pattern) is not None

    def extract(self, j: int, length: int) -> list[int]:
        """Extract ``T[i - length, i)`` where ``i = SA[j]`` (Section IV-C).

        The extraction walks the LF-mapping ``length`` times starting from BWT
        row ``j``, recovering the symbols that precede the suffix at row ``j``
        in reverse text order; because trajectories are stored reversed, this
        yields a sub-path in travel order.
        """
        if not 0 <= j < self._n:
            raise QueryError(f"BWT position {j} out of range [0, {self._n})")
        if length < 0:
            raise QueryError(f"extraction length must be non-negative, got {length}")
        out = [0] * length
        row = j
        for k in range(1, length + 1):
            symbol = self.access_bwt(row)
            out[length - k] = symbol
            row = int(self._c_array[symbol]) + self.rank_bwt(symbol, row)
        return out

    def symbol_at_row(self, j: int) -> int:
        """Return the first symbol of the suffix at BWT row ``j``.

        This is the binary search over ``C[]`` used at Line 1 of Algorithm 4.
        """
        if not 0 <= j < self._n:
            raise QueryError(f"BWT position {j} out of range [0, {self._n})")
        c = self._c_array
        # Find the largest w with C[w] <= j.
        return int(bisect_right(list(c), j) - 1) if not isinstance(c, np.ndarray) else int(
            np.searchsorted(c, j, side="right") - 1
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _validated_pattern(self, pattern: Sequence[int]) -> list[int]:
        symbols = [int(s) for s in pattern]
        if not symbols:
            raise QueryError("the query pattern must contain at least one symbol")
        for symbol in symbols:
            if not 0 <= symbol < self._sigma:
                raise QueryError(f"pattern symbol {symbol} outside alphabet [0, {self._sigma})")
        return symbols

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(n={self._n}, sigma={self._sigma})"
