"""FM-index baselines (Table II of the paper) and the shared index interface."""

from .base import FMIndexBase
from .fixed_block import FixedBlockFMIndex
from .linear_scan import LinearScanIndex
from .variants import (
    AlphabetPartitionedFMIndex,
    GMRFMIndex,
    ICBHuffmanFMIndex,
    ICBWaveletMatrixFMIndex,
    UncompressedFMIndex,
    available_baselines,
    build_baseline,
    sample_patterns,
)

__all__ = [
    "FMIndexBase",
    "FixedBlockFMIndex",
    "LinearScanIndex",
    "UncompressedFMIndex",
    "ICBWaveletMatrixFMIndex",
    "ICBHuffmanFMIndex",
    "GMRFMIndex",
    "AlphabetPartitionedFMIndex",
    "build_baseline",
    "available_baselines",
    "sample_patterns",
]
