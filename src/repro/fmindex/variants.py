"""Baseline FM-index variants from Table II of the paper.

===========  ==================================================================
Name         Structure over the (unlabelled) BWT
===========  ==================================================================
UFMI         wavelet matrix with plain (uncompressed) bitmaps
ICB-WM       wavelet matrix with RRR bitmaps (implicit compression boosting)
ICB-Huff     Huffman-shaped wavelet tree with RRR bitmaps
FM-GMR       large-alphabet rank structure in the spirit of Golynski et al.
FM-AP-HYB    alphabet-partitioned rank structure (Barbay et al.)
===========  ==================================================================

The first three are faithful reimplementations.  FM-GMR and FM-AP-HYB follow
the *design idea* of the cited structures (per-symbol position lists giving
rank by binary search, and frequency-based alphabet partitioning) rather than
their exact bit-level layouts, which rely on engineering that only pays off in
C++ (the class docstrings record each substitution).  What matters for the
reproduction
is their qualitative position in the size/time trade-off: large but fast
(FM-GMR), small but slower (FM-AP-HYB).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..strings.bwt import BWTResult
from ..succinct import IntVector
from ..wavelet import (
    HuffmanWaveletTree,
    WaveletMatrix,
    plain_bitvector_factory,
    rrr_bitvector_factory,
)
from .base import FMIndexBase


class UncompressedFMIndex(FMIndexBase):
    """``UFMI``: wavelet matrix over the BWT with plain bitmaps."""

    name = "UFMI"

    def __init__(self, bwt_result: BWTResult):
        super().__init__(bwt_result)
        self._wm = WaveletMatrix(
            bwt_result.bwt,
            sigma=bwt_result.sigma,
            bitvector_factory=plain_bitvector_factory(),
        )

    def rank_bwt(self, symbol: int, i: int) -> int:
        return self._wm.rank(symbol, i)

    def rank_bwt_many(self, symbol: int, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        return self._wm.rank_many(symbol, positions)

    def access_bwt(self, j: int) -> int:
        return self._wm.access(j)

    def access_bwt_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        return self._wm.access_many(positions)

    def size_in_bits(self) -> int:
        c_bits = IntVector(self._c_array).size_in_bits()
        return self._wm.size_in_bits() + c_bits


class ICBWaveletMatrixFMIndex(FMIndexBase):
    """``ICB-WM``: wavelet matrix over the BWT with RRR bitmaps."""

    name = "ICB-WM"

    def __init__(self, bwt_result: BWTResult, block_size: int = 63):
        super().__init__(bwt_result)
        self.block_size = block_size
        self._wm = WaveletMatrix(
            bwt_result.bwt,
            sigma=bwt_result.sigma,
            bitvector_factory=rrr_bitvector_factory(block_size),
        )

    def rank_bwt(self, symbol: int, i: int) -> int:
        return self._wm.rank(symbol, i)

    def rank_bwt_many(self, symbol: int, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        return self._wm.rank_many(symbol, positions)

    def access_bwt(self, j: int) -> int:
        return self._wm.access(j)

    def access_bwt_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        return self._wm.access_many(positions)

    def size_in_bits(self) -> int:
        c_bits = IntVector(self._c_array).size_in_bits()
        return self._wm.size_in_bits() + c_bits


class ICBHuffmanFMIndex(FMIndexBase):
    """``ICB-Huff``: Huffman-shaped wavelet tree over the BWT with RRR bitmaps.

    This is the closest baseline to CiNCT: same wavelet-tree shape and the
    same succinct dictionaries, but built over the unlabelled BWT, so both its
    entropy and its Huffman depth are governed by the full road-network
    alphabet instead of the handful of relative-movement labels.
    """

    name = "ICB-Huff"

    def __init__(self, bwt_result: BWTResult, block_size: int = 63):
        super().__init__(bwt_result)
        self.block_size = block_size
        self._wt = HuffmanWaveletTree(
            bwt_result.bwt,
            bitvector_factory=rrr_bitvector_factory(block_size),
        )

    def rank_bwt(self, symbol: int, i: int) -> int:
        return self._wt.rank(symbol, i)

    def rank_bwt_many(self, symbol: int, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        return self._wt.rank_many(symbol, positions)

    def access_bwt(self, j: int) -> int:
        return self._wt.access(j)

    def access_bwt_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        return self._wt.access_many(positions)

    def size_in_bits(self) -> int:
        c_bits = IntVector(self._c_array).size_in_bits()
        return self._wt.size_in_bits() + c_bits


class GMRFMIndex(FMIndexBase):
    """``FM-GMR``-style index: fast rank on huge alphabets, uncompressed size.

    Rank is answered by binary search in per-symbol sorted position lists and
    access by a fixed-width symbol array; both are O(log n) / O(1) and, like
    the real GMR structure, completely insensitive to the entropy of the BWT.
    The reported size is the actual storage cost of the structure
    (``n * ceil(lg n)`` bits of positions plus ``n * ceil(lg sigma)`` bits for
    the access array plus per-symbol offsets), which lands it in the same
    "largest but fast" corner of the trade-off as the paper's FM-GMR.
    """

    name = "FM-GMR"

    def __init__(self, bwt_result: BWTResult):
        super().__init__(bwt_result)
        bwt = bwt_result.bwt
        order = np.argsort(bwt, kind="stable")
        self._positions = order  # positions grouped by symbol, ascending within symbol
        boundaries = np.searchsorted(bwt[order], np.arange(self._sigma + 1))
        self._offsets = boundaries.astype(np.int64)
        self._bwt = bwt

    def rank_bwt(self, symbol: int, i: int) -> int:
        start = int(self._offsets[symbol])
        end = int(self._offsets[symbol + 1])
        if start == end:
            return 0
        return int(np.searchsorted(self._positions[start:end], i, side="left"))

    def rank_bwt_many(self, symbol: int, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        pos = np.asarray(positions, dtype=np.int64)
        start = int(self._offsets[symbol])
        end = int(self._offsets[symbol + 1])
        if start == end:
            return np.zeros(pos.size, dtype=np.int64)
        return np.searchsorted(self._positions[start:end], pos, side="left").astype(np.int64)

    def access_bwt(self, j: int) -> int:
        return int(self._bwt[j])

    def access_bwt_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        return self._bwt[np.asarray(positions, dtype=np.int64)].astype(np.int64)

    def size_in_bits(self) -> int:
        n = self._n
        position_bits = n * max(int(n - 1).bit_length(), 1)
        symbol_bits = n * max(int(self._sigma - 1).bit_length(), 1)
        offset_bits = (self._sigma + 1) * 64
        c_bits = IntVector(self._c_array).size_in_bits()
        return position_bits + symbol_bits + offset_bits + c_bits


class AlphabetPartitionedFMIndex(FMIndexBase):
    """``FM-AP-HYB``-style index: alphabet partitioning by symbol frequency.

    Symbols are sorted by decreasing frequency; the symbol of frequency rank
    ``r`` is assigned to class ``floor(lg(r + 1))``, so class ``c`` holds at
    most ``2**c`` symbols.  A wavelet matrix over the *class sequence* plus one
    wavelet matrix per class over the *within-class indices* answers rank with
    two nested wavelet-matrix ranks — the scheme of Barbay, Gagie, Navarro &
    Nekrich used by sdsl's ``wt_ap`` (the HYB bitmaps are replaced by RRR).
    """

    name = "FM-AP-HYB"

    def __init__(self, bwt_result: BWTResult, block_size: int = 63):
        super().__init__(bwt_result)
        self.block_size = block_size
        bwt = bwt_result.bwt
        counts = bwt_result.counts
        present = np.nonzero(counts)[0]
        by_frequency = present[np.argsort(-counts[present], kind="stable")]

        self._class_of = np.full(self._sigma, -1, dtype=np.int64)
        self._index_in_class = np.full(self._sigma, -1, dtype=np.int64)
        members_per_class: dict[int, list[int]] = {}
        for rank_index, symbol in enumerate(by_frequency):
            cls = int(math.floor(math.log2(rank_index + 1))) if rank_index else 0
            members = members_per_class.setdefault(cls, [])
            self._class_of[symbol] = cls
            self._index_in_class[symbol] = len(members)
            members.append(int(symbol))
        self._n_classes = (max(members_per_class) + 1) if members_per_class else 0

        factory = rrr_bitvector_factory(block_size)
        class_sequence = self._class_of[bwt]
        self._class_wm = WaveletMatrix(class_sequence, sigma=self._n_classes, bitvector_factory=factory)

        # members in label-assignment order, so that
        # class_members[cls][index_in_class[symbol]] == symbol
        self._class_members: list[np.ndarray] = []
        self._sub_wms: list[WaveletMatrix | None] = []
        for cls in range(self._n_classes):
            members = np.asarray(members_per_class.get(cls, []), dtype=np.int64)
            self._class_members.append(members)
            subsequence = self._index_in_class[bwt[class_sequence == cls]]
            if subsequence.size == 0 or members.size <= 1:
                # A single-symbol class needs no sub-structure: the class
                # occurrence count is already the symbol occurrence count.
                self._sub_wms.append(None)
            else:
                self._sub_wms.append(
                    WaveletMatrix(subsequence, sigma=int(members.size), bitvector_factory=factory)
                )

    def rank_bwt(self, symbol: int, i: int) -> int:
        cls = int(self._class_of[symbol])
        if cls < 0:
            return 0
        class_rank = self._class_wm.rank(cls, i)
        sub = self._sub_wms[cls]
        if sub is None:
            return class_rank
        return sub.rank(int(self._index_in_class[symbol]), class_rank)

    def rank_bwt_many(self, symbol: int, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        pos = np.asarray(positions, dtype=np.int64)
        cls = int(self._class_of[symbol])
        if cls < 0:
            return np.zeros(pos.size, dtype=np.int64)
        class_rank = self._class_wm.rank_many(cls, pos)
        sub = self._sub_wms[cls]
        if sub is None:
            return class_rank
        return sub.rank_many(int(self._index_in_class[symbol]), class_rank)

    def access_bwt(self, j: int) -> int:
        cls = self._class_wm.access(j)
        position_in_class = self._class_wm.rank(cls, j)
        sub = self._sub_wms[cls]
        if sub is None:
            return int(self._class_members[cls][0])
        index = sub.access(position_in_class)
        return int(self._class_members[cls][index])

    def access_bwt_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        pos = np.asarray(positions, dtype=np.int64)
        classes = self._class_wm.access_many(pos)
        out = np.zeros(pos.size, dtype=np.int64)
        for cls in np.unique(classes).tolist():
            mask = classes == cls
            in_class = self._class_wm.rank_many(int(cls), pos[mask])
            sub = self._sub_wms[int(cls)]
            if sub is None:
                out[mask] = int(self._class_members[int(cls)][0])
            else:
                out[mask] = self._class_members[int(cls)][sub.access_many(in_class)]
        return out

    def size_in_bits(self) -> int:
        bits = self._class_wm.size_in_bits()
        for sub in self._sub_wms:
            if sub is not None:
                bits += sub.size_in_bits()
        # symbol -> (class, index-in-class) mapping, stored once per symbol.
        class_bits = max(int(max(self._n_classes - 1, 1)).bit_length(), 1)
        index_bits = max(
            int(max((members.size - 1 for members in self._class_members), default=1)).bit_length(), 1
        )
        bits += self._sigma * (class_bits + index_bits)
        bits += IntVector(self._c_array).size_in_bits()
        return bits


def build_baseline(name: str, bwt_result: BWTResult, block_size: int = 63) -> FMIndexBase:
    """Construct a baseline index by its Table-II name."""
    normalised = name.strip().lower()
    if normalised in {"ufmi", "uncompressed"}:
        return UncompressedFMIndex(bwt_result)
    if normalised in {"icb-wm", "icb_wm"}:
        return ICBWaveletMatrixFMIndex(bwt_result, block_size=block_size)
    if normalised in {"icb-huff", "icb_huff"}:
        return ICBHuffmanFMIndex(bwt_result, block_size=block_size)
    if normalised in {"fm-gmr", "gmr"}:
        return GMRFMIndex(bwt_result)
    if normalised in {"fm-ap-hyb", "ap", "fm-ap"}:
        return AlphabetPartitionedFMIndex(bwt_result, block_size=block_size)
    raise ValueError(f"unknown FM-index variant: {name!r}")


def available_baselines() -> list[str]:
    """Names accepted by :func:`build_baseline`, in Table-II order."""
    return ["UFMI", "ICB-WM", "ICB-Huff", "FM-GMR", "FM-AP-HYB"]


def sample_patterns(
    bwt_result: BWTResult,
    pattern_length: int,
    n_patterns: int,
    rng: np.random.Generator,
    min_symbol: int = 2,
) -> list[list[int]]:
    """Sample query paths of a given length from the indexed text.

    Mirrors the paper's measurement protocol ("500 suffix range queries of
    length 20 randomly sampled from the data"): a window of the trajectory
    string is accepted if it contains no ``$``/``#`` separators, then reversed
    back into travel order.
    """
    text = bwt_result.text
    n = int(text.size)
    patterns: list[list[int]] = []
    attempts = 0
    max_attempts = max(100 * n_patterns, 1000)
    while len(patterns) < n_patterns and attempts < max_attempts:
        attempts += 1
        start = int(rng.integers(0, max(n - pattern_length, 1)))
        window = text[start : start + pattern_length]
        if window.size < pattern_length:
            continue
        if int(window.min()) < min_symbol:
            continue
        patterns.append([int(s) for s in window[::-1]])
    if not patterns:
        raise ValueError(
            "could not sample any separator-free window; "
            "trajectories are probably shorter than the requested pattern length"
        )
    return patterns
