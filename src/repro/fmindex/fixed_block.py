"""Fixed-block compression boosting (Kärkkäinen & Puglisi), Section II-B2.

The paper discusses three flavours of compression boosting for FM-indexes:
context-block boosting (problem P1–P3), *fixed-block* boosting (this module)
and implicit boosting (the ICB variants).  Fixed-block boosting divides the
BWT into blocks of a fixed size, compresses each block with a zeroth-order
compressor, and stores, at every block boundary, the cumulative rank of every
symbol seen so far so that a rank query touches a single block.

This solves P1 (fixed-size blocks allow random access) and partially P2, but
problem P3 remains: the cumulative-rank table costs
``(number of blocks) * sigma`` integers, which is exactly why the approach is
impractical for the huge alphabets of road networks — the effect the paper's
CiNCT sidesteps via RML.  The implementation keeps the table sparse in memory
(most symbols never occur near a given block), but :meth:`size_in_bits`
charges the full dense table so the benchmark ablation exposes the overhead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..strings.bwt import BWTResult
from ..succinct import IntVector, bits_needed
from ..wavelet import HuffmanWaveletTree, rrr_bitvector_factory
from .base import FMIndexBase


class FixedBlockFMIndex(FMIndexBase):
    """FM-index with fixed-block compression boosting over the BWT.

    Parameters
    ----------
    bwt_result:
        The BWT of the trajectory string.
    block_length:
        Number of BWT symbols per block (the paper's fixed-block variant uses
        blocks in the tens of kilobytes; a smaller default keeps the pure
        Python implementation responsive).
    rrr_block_size:
        RRR parameter ``b`` used inside each block's wavelet tree.
    """

    name = "FM-FixedBlock"

    def __init__(self, bwt_result: BWTResult, block_length: int = 2048, rrr_block_size: int = 63):
        super().__init__(bwt_result)
        if block_length < 1:
            raise ValueError("block_length must be a positive integer")
        self.block_length = int(block_length)
        bwt = bwt_result.bwt
        n = int(bwt.size)
        self._n_blocks = (n + self.block_length - 1) // self.block_length

        factory = rrr_bitvector_factory(rrr_block_size)
        self._block_trees: list[HuffmanWaveletTree] = []
        # Sparse cumulative counts: one dict per block boundary mapping symbol
        # to the number of its occurrences in BWT[0, boundary).
        self._boundary_counts: list[dict[int, int]] = [{}]
        running: dict[int, int] = {}
        for block_index in range(self._n_blocks):
            start = block_index * self.block_length
            end = min(start + self.block_length, n)
            block = bwt[start:end]
            self._block_trees.append(HuffmanWaveletTree(block, bitvector_factory=factory))
            values, counts = np.unique(block, return_counts=True)
            for value, count in zip(values, counts):
                running[int(value)] = running.get(int(value), 0) + int(count)
            self._boundary_counts.append(dict(running))

    # ------------------------------------------------------------------ #
    # FM-index primitives
    # ------------------------------------------------------------------ #
    def rank_bwt(self, symbol: int, i: int) -> int:
        symbol = int(symbol)
        block_index = i // self.block_length
        if block_index >= self._n_blocks:
            block_index = self._n_blocks - 1 if self._n_blocks else 0
        offset = i - block_index * self.block_length
        base = self._boundary_counts[block_index].get(symbol, 0)
        if offset == 0 or not self._block_trees:
            return base
        tree = self._block_trees[block_index]
        if symbol not in tree.codes:
            return base
        return base + tree.rank(symbol, min(offset, len(tree)))

    def rank_bwt_many(self, symbol: int, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        symbol = int(symbol)
        pos = np.asarray(positions, dtype=np.int64)
        out = np.zeros(pos.size, dtype=np.int64)
        if pos.size == 0 or not self._block_trees:
            return out
        block_index = np.minimum(pos // self.block_length, self._n_blocks - 1)
        offsets = pos - block_index * self.block_length
        for block in np.unique(block_index).tolist():
            mask = block_index == block
            base = self._boundary_counts[block].get(symbol, 0)
            values = np.full(int(mask.sum()), base, dtype=np.int64)
            tree = self._block_trees[block]
            if symbol in tree.codes:
                clamped = np.minimum(offsets[mask], len(tree))
                inside = clamped > 0
                if inside.any():
                    values[inside] += tree.rank_many(symbol, clamped[inside])
            out[mask] = values
        return out

    def access_bwt(self, j: int) -> int:
        block_index = j // self.block_length
        offset = j - block_index * self.block_length
        return self._block_trees[block_index].access(offset)

    def access_bwt_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        pos = np.asarray(positions, dtype=np.int64)
        out = np.zeros(pos.size, dtype=np.int64)
        block_index = pos // self.block_length
        for block in np.unique(block_index).tolist():
            mask = block_index == block
            out[mask] = self._block_trees[block].access_many(
                pos[mask] - block * self.block_length
            )
        return out

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def size_in_bits(self) -> int:
        """Wavelet blocks + the dense cumulative-rank table P3 complains about."""
        block_bits = sum(tree.size_in_bits() for tree in self._block_trees)
        # The rank table: (n_blocks + 1) boundaries, one ceil(lg n)-bit counter
        # per alphabet symbol per boundary.  This is the term that explodes for
        # road-network-sized alphabets.
        counter_bits = bits_needed(max(self._n - 1, 1))
        table_bits = (self._n_blocks + 1) * self._sigma * counter_bits
        c_bits = IntVector(self._c_array).size_in_bits()
        return block_bits + table_bits + c_bits

    def payload_size_in_bits(self) -> int:
        """Size of the compressed blocks alone (without the rank table)."""
        return sum(tree.size_in_bits() for tree in self._block_trees)

    def rank_table_size_in_bits(self) -> int:
        """Size of the dense per-block cumulative-rank table alone."""
        counter_bits = bits_needed(max(self._n - 1, 1))
        return (self._n_blocks + 1) * self._sigma * counter_bits

    @property
    def n_blocks(self) -> int:
        """Number of fixed-size BWT blocks."""
        return self._n_blocks
