"""Linear-scan pattern matching over the uncompressed trajectory string.

The paper's Section VI-A2 notes that naïve combinations of simple compression
techniques were excluded from the main comparison because they only support
linear-time pattern matching: in the authors' pre-study, Boyer–Moore search
over an in-memory uncompressed array was "at least four orders of magnitude
slower than CiNCT".  This module provides that baseline so the ablation bench
can reproduce the magnitude of the gap: a Boyer–Moore–Horspool matcher (plus a
naïve matcher as a correctness reference) over the raw 32-bit trajectory
string.

The class intentionally exposes the same ``count`` / ``contains`` surface as
the FM-indexes so the harness can time it, but it does not (and cannot,
without a suffix array) answer suffix-range queries.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import EMPTY_PATTERN_MESSAGE, QueryError
from ..strings.bwt import BWTResult
from .base import validate_pattern


class LinearScanIndex:
    """Boyer–Moore–Horspool matching over the raw trajectory string.

    Parameters
    ----------
    text:
        The trajectory string (integer symbols; trajectories stored reversed,
        exactly as indexed by the FM-index variants so counts agree).
    sigma:
        Alphabet size; inferred from the text when omitted.
    """

    name = "LinearScan"

    def __init__(self, text: Sequence[int] | np.ndarray, sigma: int | None = None):
        self._text = np.asarray(text, dtype=np.int64)
        if self._text.size == 0:
            raise QueryError("cannot search an empty trajectory string")
        self._sigma = int(sigma) if sigma is not None else int(self._text.max()) + 1

    @classmethod
    def from_bwt_result(cls, bwt_result: BWTResult) -> "LinearScanIndex":
        """Build the scanner from the same :class:`BWTResult` the indexes use."""
        return cls(bwt_result.text, sigma=bwt_result.sigma)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Length of the stored trajectory string."""
        return int(self._text.size)

    @property
    def sigma(self) -> int:
        """Alphabet size of the stored trajectory string."""
        return self._sigma

    def size_in_bits(self) -> int:
        """The raw array: 32 bits per symbol, as in the paper's ratio baseline."""
        return self.length * 32

    def bits_per_symbol(self) -> float:
        """Size per symbol (constant 32 for the uncompressed array)."""
        return self.size_in_bits() / self.length

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def occurrences(self, pattern: Sequence[int]) -> list[int]:
        """Start positions (in the stored text) of every occurrence of the path.

        The query path is given in travel order; because the trajectory string
        stores reversed trajectories the scanner searches for the *reversed*
        pattern, which makes its counts directly comparable with the
        suffix-range widths returned by the FM-indexes.
        """
        needle = self._validated_pattern(pattern)[::-1]
        return self._horspool(needle)

    def count(self, pattern: Sequence[int]) -> int:
        """Number of occurrences of the query path."""
        return len(self.occurrences(pattern))

    def count_many(self, patterns: Sequence[Sequence[int]]) -> list[int]:
        """Batched :meth:`count`.

        A linear scan has no shared frontier to vectorize, so this is a plain
        loop; it exists so the scanner satisfies the same batch query surface
        as the FM-index variants.
        """
        return [self.count(pattern) for pattern in patterns]

    def contains(self, pattern: Sequence[int]) -> bool:
        """True when the query path occurs at least once."""
        needle = self._validated_pattern(pattern)[::-1]
        return bool(self._horspool(needle, first_only=True))

    def count_naive(self, pattern: Sequence[int]) -> int:
        """Naïve O(n·m) occurrence count (reference used by the tests)."""
        needle = np.asarray(self._validated_pattern(pattern)[::-1], dtype=np.int64)
        m = needle.size
        n = self._text.size
        if m > n:
            return 0
        count = 0
        for start in range(n - m + 1):
            if np.array_equal(self._text[start : start + m], needle):
                count += 1
        return count

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _horspool(self, needle: list[int], first_only: bool = False) -> list[int]:
        text = self._text
        n = int(text.size)
        m = len(needle)
        if m == 0:
            raise QueryError(EMPTY_PATTERN_MESSAGE)
        if m > n:
            return []
        # Bad-character shift table keyed by symbol (dict: the alphabet is huge
        # but a pattern touches at most m distinct symbols).
        shift: dict[int, int] = {}
        for index, symbol in enumerate(needle[:-1]):
            shift[symbol] = m - 1 - index
        default_shift = m
        last = needle[-1]
        needle_arr = np.asarray(needle, dtype=np.int64)

        matches: list[int] = []
        position = 0
        while position <= n - m:
            window_last = int(text[position + m - 1])
            if window_last == last and np.array_equal(text[position : position + m], needle_arr):
                matches.append(position)
                if first_only:
                    return matches
            position += shift.get(window_last, default_shift)
        return matches

    def _validated_pattern(self, pattern: Sequence[int]) -> list[int]:
        return validate_pattern(pattern, self._sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LinearScanIndex(n={self.length}, sigma={self._sigma})"
