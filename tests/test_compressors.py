"""Tests for the compression baselines (MEL, Re-Pair, PRESS, zip/bzip2, Huffman)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import empirical_entropy_h0
from repro.compressors import (
    build_mel_labels,
    bz2_compressed_bits,
    huffman_compressed_bits,
    huffman_encoding_report,
    mel_compress,
    mel_entropy,
    press_compress,
    repair_compress,
    sequence_to_bytes,
    zlib_compressed_bits,
)
from repro.core import ETGraph, build_rml, label_bwt, labelled_entropy
from repro.exceptions import ConstructionError
from repro.trajectories import symbol_trajectories


class TestHuffmanCoder:
    def test_report_fields(self):
        report = huffman_encoding_report([0, 0, 1, 2, 0])
        assert report.n_symbols == 5
        assert report.distinct_symbols == 3
        assert report.total_bits == report.payload_bits + report.table_bits
        assert report.bits_per_symbol > 0

    def test_payload_within_entropy_band(self):
        sequence = [0] * 80 + [1] * 15 + [2] * 5
        report = huffman_encoding_report(sequence)
        entropy = empirical_entropy_h0(sequence)
        assert entropy * 100 - 1e-6 <= report.payload_bits <= (entropy + 1) * 100

    def test_empty_sequence(self):
        assert huffman_compressed_bits([]) == 0

    def test_single_symbol(self):
        report = huffman_encoding_report([4] * 32)
        assert report.payload_bits == 32


class TestMEL:
    def test_labels_distinct_within_constraint_groups(self, medium_bwt):
        """psi must separate any two segments sharing an ET-graph predecessor."""
        graph = ETGraph(medium_bwt.text, sigma=medium_bwt.sigma)
        counts = np.bincount(medium_bwt.text, minlength=medium_bwt.sigma)
        labels = build_mel_labels(graph, counts)
        for context in graph.contexts():
            if context < 2:
                # Special symbols do not constrain MEL (they are not part of
                # the road network the decoder walks).
                continue
            successors = [t for t in graph.out_neighbours(context) if t >= 2]
            seen = [labels[t] for t in successors if t in labels]
            assert len(seen) == len(set(seen))

    def test_frequent_segments_get_small_labels(self, medium_bwt):
        graph = ETGraph(medium_bwt.text, sigma=medium_bwt.sigma)
        counts = np.bincount(medium_bwt.text, minlength=medium_bwt.sigma)
        labels = build_mel_labels(graph, counts)
        # The globally most frequent segment is processed first by the greedy
        # assignment, so it always receives the smallest label.
        most_frequent = max(labels, key=lambda s: counts[s])
        assert labels[most_frequent] == 1
        # Label 1 carries the largest share of the total mass.
        mass_per_label: dict[int, int] = {}
        for symbol, label in labels.items():
            mass_per_label[label] = mass_per_label.get(label, 0) + int(counts[symbol])
        assert max(mass_per_label, key=mass_per_label.get) == 1

    def test_mel_compresses_below_raw_size(self, medium_dataset, medium_trajectory_string):
        trajectories = symbol_trajectories(medium_dataset)
        result = mel_compress(trajectories, medium_trajectory_string.text, medium_trajectory_string.sigma)
        raw_bits = sum(len(t) for t in trajectories) * 32
        assert result.total_bits < raw_bits
        assert result.max_label >= 1

    def test_mel_entropy_not_smaller_than_rml_on_dataset_analogue(self):
        """Theorem 6 at dataset scale: RML achieves a smaller H0 than MEL.

        (The exact theorem statement — any context-independent labelling can
        be emulated by a sub-optimal RML — is tested in test_rml.py via the
        "unigram" strategy; this test checks the Table-V comparison on a
        realistic dataset analogue.)
        """
        from repro.datasets import singapore2_like
        from repro.strings import burrows_wheeler_transform

        bundle = singapore2_like(scale=0.25)
        bwt = burrows_wheeler_transform(bundle.text, sigma=bundle.sigma)
        mel = mel_compress(bundle.symbol_trajectories, bundle.text, bundle.sigma)
        graph = ETGraph(bwt.text, sigma=bwt.sigma)
        rml = build_rml(graph, strategy="bigram")
        rml_h0 = labelled_entropy(label_bwt(bwt.bwt, bwt.c_array, rml))
        assert rml_h0 <= mel_entropy(mel) + 1e-9

    def test_mel_requires_trajectories(self, medium_trajectory_string):
        with pytest.raises(ConstructionError):
            mel_compress([], medium_trajectory_string.text, medium_trajectory_string.sigma)


class TestRePair:
    def test_roundtrip_simple(self):
        sequence = [1, 2, 1, 2, 1, 2, 3, 1, 2]
        result = repair_compress(sequence)
        assert result.expand() == sequence
        assert result.n_rules >= 1

    def test_roundtrip_repetitive(self):
        sequence = [5, 5, 5, 5, 5, 5, 5, 5]
        result = repair_compress(sequence)
        assert result.expand() == sequence

    def test_roundtrip_no_repeats(self):
        sequence = [1, 2, 3, 4, 5]
        result = repair_compress(sequence)
        assert result.expand() == sequence
        assert result.n_rules == 0
        assert result.compressed_sequence == sequence

    def test_compresses_repetitive_data(self):
        sequence = [1, 2, 3, 4] * 200
        result = repair_compress(sequence)
        assert result.total_bits() < len(sequence) * 32
        assert len(result.compressed_sequence) < len(sequence) / 4

    def test_roundtrip_on_trajectory_string(self, medium_trajectory_string):
        text = [int(x) for x in medium_trajectory_string.text]
        result = repair_compress(text, sigma=medium_trajectory_string.sigma)
        assert result.expand() == text

    def test_empty_rejected(self):
        with pytest.raises(ConstructionError):
            repair_compress([])

    def test_sigma_too_small_rejected(self):
        with pytest.raises(ConstructionError):
            repair_compress([1, 5], sigma=3)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=300))
    def test_roundtrip_property(self, sequence):
        result = repair_compress(sequence)
        assert result.expand() == sequence


class TestPress:
    def test_shortest_path_trips_compress_well(self, small_network):
        from repro.trajectories import shortest_path_trips

        rng = np.random.default_rng(1)
        trips = shortest_path_trips(small_network, 20, rng, min_hops=4)
        result = press_compress(trips, small_network)
        # Shortest-path trips are perfectly predictable: only the first edge
        # of each trip (plus rare tie-break deviations) must be stored.
        assert result.kept_fraction < 0.5
        assert result.total_bits < result.total_edges * 32

    def test_random_walks_compress_poorly_vs_trips(self, small_network):
        from repro.trajectories import shortest_path_trips, straight_biased_walks

        rng = np.random.default_rng(2)
        trips = shortest_path_trips(small_network, 15, rng, min_hops=4)
        walks = straight_biased_walks(small_network, 15, 8, 15, rng, straight_bias=0.0)
        trips_result = press_compress(trips, small_network)
        walks_result = press_compress(walks, small_network)
        assert trips_result.kept_fraction < walks_result.kept_fraction

    def test_requires_trajectories(self, small_network):
        with pytest.raises(ConstructionError):
            press_compress([], small_network)


class TestGenericCompressors:
    def test_serialisation_length(self):
        assert len(sequence_to_bytes([1, 2, 3])) == 12
        assert len(sequence_to_bytes([1, 2, 3], bytes_per_symbol=2)) == 6

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sequence_to_bytes([1], bytes_per_symbol=3)

    def test_zlib_and_bz2_compress_repetitive_data(self):
        sequence = [7, 8, 9] * 1000
        raw_bits = len(sequence) * 32
        assert zlib_compressed_bits(sequence) < raw_bits / 5
        assert bz2_compressed_bits(sequence) < raw_bits / 5

    def test_compressors_return_positive(self, medium_trajectory_string):
        text = medium_trajectory_string.text
        assert zlib_compressed_bits(text) > 0
        assert bz2_compressed_bits(text) > 0
