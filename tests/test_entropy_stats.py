"""Tests for empirical entropy measures and dataset statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    compression_ratio,
    dataset_statistics,
    empirical_entropy_h0,
    empirical_entropy_hk,
    entropy_of_distribution,
    huffman_encoded_bits,
    raw_size_bits,
)


class TestH0:
    def test_uniform_binary(self):
        assert empirical_entropy_h0([0, 1] * 50) == pytest.approx(1.0)

    def test_constant_sequence(self):
        assert empirical_entropy_h0([7] * 100) == pytest.approx(0.0)

    def test_empty(self):
        assert empirical_entropy_h0([]) == 0.0

    def test_four_symbols_uniform(self):
        assert empirical_entropy_h0([0, 1, 2, 3] * 25) == pytest.approx(2.0)

    def test_known_skewed_value(self):
        # p = (3/4, 1/4): H = 0.8113 bits
        sequence = [0, 0, 0, 1] * 25
        expected = -(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25))
        assert empirical_entropy_h0(sequence) == pytest.approx(expected)

    def test_accepts_numpy(self):
        assert empirical_entropy_h0(np.array([1, 2, 1, 2])) == pytest.approx(1.0)


class TestHk:
    def test_k0_equals_h0(self):
        sequence = [0, 1, 1, 2, 0, 1]
        assert empirical_entropy_hk(sequence, 0) == pytest.approx(empirical_entropy_h0(sequence))

    def test_deterministic_successor_has_zero_h1(self):
        # Cyclic abcabcabc...: the next symbol determines the previous exactly.
        sequence = [0, 1, 2] * 40
        assert empirical_entropy_hk(sequence, 1) == pytest.approx(0.0, abs=1e-9)

    def test_hk_decreasing_in_k(self, medium_bwt):
        text = medium_bwt.text
        h0 = empirical_entropy_h0(text)
        h1 = empirical_entropy_hk(text, 1)
        h2 = empirical_entropy_hk(text, 2)
        assert h0 >= h1 - 1e-9
        assert h1 >= h2 - 1e-9

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            empirical_entropy_hk([1, 2, 3], -1)

    def test_short_text(self):
        assert empirical_entropy_hk([5], 2) == 0.0

    def test_random_sequence_h1_close_to_h0(self):
        rng = np.random.default_rng(0)
        sequence = rng.integers(0, 4, 4000)
        h0 = empirical_entropy_h0(sequence)
        h1 = empirical_entropy_hk(sequence, 1)
        assert abs(h0 - h1) < 0.05


class TestEntropyHelpers:
    def test_distribution_entropy(self):
        assert entropy_of_distribution([0.5, 0.5]) == pytest.approx(1.0)
        assert entropy_of_distribution([1.0, 0.0]) == pytest.approx(0.0)

    def test_distribution_negative_rejected(self):
        with pytest.raises(ValueError):
            entropy_of_distribution([-0.1, 1.1])

    def test_huffman_encoded_bits_bounds(self):
        sequence = [0] * 70 + [1] * 20 + [2] * 10
        bits = huffman_encoded_bits(sequence)
        entropy = empirical_entropy_h0(sequence)
        assert entropy * len(sequence) - 1e-6 <= bits <= (entropy + 1) * len(sequence)

    def test_huffman_encoded_bits_degenerate(self):
        assert huffman_encoded_bits([]) == 0
        assert huffman_encoded_bits([3, 3, 3]) == 3


class TestDatasetStatistics:
    def test_fields_consistent(self, medium_trajectory_string):
        stats = dataset_statistics("fixture", medium_trajectory_string.text, medium_trajectory_string.sigma)
        assert stats.length == medium_trajectory_string.length
        assert stats.sigma == medium_trajectory_string.sigma
        assert stats.lg_sigma == pytest.approx(math.log2(stats.sigma))
        assert stats.h0 > stats.h0_labelled  # Eq. 10
        assert stats.h1 <= stats.h0 + 1e-9
        assert stats.max_out_degree >= stats.average_out_degree
        assert stats.n_et_edges > 0

    def test_as_row_keys(self, medium_trajectory_string):
        stats = dataset_statistics("fixture", medium_trajectory_string.text)
        row = stats.as_row()
        assert set(row) == {"dataset", "|T|", "lg sigma", "H0(T)", "H0(phi)", "H1(T)", "d_bar"}

    def test_precomputed_bwt_accepted(self, medium_bwt):
        stats = dataset_statistics("fixture", medium_bwt.text, bwt_result=medium_bwt)
        assert stats.length == medium_bwt.length


class TestRatios:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            compression_ratio(100, 0)

    def test_raw_size(self):
        assert raw_size_bits(10) == 320
        assert raw_size_bits(10, bytes_per_symbol=2) == 160


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=6), min_size=2, max_size=300))
def test_entropy_bounds_property(sequence):
    """0 <= Hk <= H0 <= lg(distinct symbols)."""
    h0 = empirical_entropy_h0(sequence)
    h1 = empirical_entropy_hk(sequence, 1)
    distinct = len(set(sequence))
    assert 0.0 <= h1 <= h0 + 1e-9
    assert h0 <= math.log2(distinct) + 1e-9 if distinct > 1 else h0 == 0.0
