"""Tests for the alphabet and trajectory-string construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AlphabetError, ConstructionError
from repro.strings import (
    END_SYMBOL,
    FIRST_EDGE_SYMBOL,
    SEP_SYMBOL,
    Alphabet,
    build_trajectory_string,
    trajectory_string_from_symbols,
)


class TestAlphabet:
    def test_special_symbols_reserved(self):
        assert END_SYMBOL == 0
        assert SEP_SYMBOL == 1
        assert FIRST_EDGE_SYMBOL == 2

    def test_encode_decode_roundtrip(self):
        alphabet = Alphabet(["e1", "e2", "e3"])
        for edge in ("e1", "e2", "e3"):
            assert alphabet.decode(alphabet.encode(edge)) == edge

    def test_insertion_order_determines_symbols(self):
        alphabet = Alphabet(["x", "y"])
        assert alphabet.encode("x") == FIRST_EDGE_SYMBOL
        assert alphabet.encode("y") == FIRST_EDGE_SYMBOL + 1

    def test_duplicates_ignored(self):
        alphabet = Alphabet(["a", "a", "b"])
        assert alphabet.n_edges == 2

    def test_sigma_includes_special_symbols(self):
        assert Alphabet(["a", "b"]).sigma == 4
        assert len(Alphabet(["a"])) == 3

    def test_unknown_edge_rejected(self):
        alphabet = Alphabet(["a"])
        with pytest.raises(AlphabetError):
            alphabet.encode("zzz")

    def test_unknown_symbol_rejected(self):
        alphabet = Alphabet(["a"])
        with pytest.raises(AlphabetError):
            alphabet.decode(0)
        with pytest.raises(AlphabetError):
            alphabet.decode(99)

    def test_contains(self):
        alphabet = Alphabet(["a"])
        assert "a" in alphabet
        assert "b" not in alphabet

    def test_from_trajectories(self):
        alphabet = Alphabet.from_trajectories([["a", "b"], ["b", "c"]])
        assert alphabet.n_edges == 3

    def test_encode_decode_path(self):
        alphabet = Alphabet(["a", "b", "c"])
        symbols = alphabet.encode_path(["c", "a"])
        assert alphabet.decode_path(symbols) == ["c", "a"]

    def test_is_edge_symbol(self):
        alphabet = Alphabet(["a"])
        assert not alphabet.is_edge_symbol(END_SYMBOL)
        assert not alphabet.is_edge_symbol(SEP_SYMBOL)
        assert alphabet.is_edge_symbol(FIRST_EDGE_SYMBOL)
        assert not alphabet.is_edge_symbol(FIRST_EDGE_SYMBOL + 1)

    def test_tuple_edge_ids(self):
        """Edge IDs used in practice are (tail, head) tuples."""
        alphabet = Alphabet([(0, 1), (1, 2)])
        assert alphabet.decode(alphabet.encode((1, 2))) == (1, 2)


class TestBuildTrajectoryString:
    def test_structure(self):
        ts = build_trajectory_string([["a", "b"], ["b", "c", "d"]])
        # rev(ab) $ rev(bcd) $ # -> 2 + 1 + 3 + 1 + 1 symbols
        assert ts.length == 8
        assert ts.text[-1] == END_SYMBOL
        assert int(np.count_nonzero(ts.text == SEP_SYMBOL)) == 2

    def test_reversal(self):
        ts = build_trajectory_string([["a", "b", "c"]])
        decoded = ts.alphabet.decode_path(int(s) for s in ts.text[:3])
        assert decoded == ["c", "b", "a"]

    def test_trajectory_accessors(self):
        ts = build_trajectory_string([["a", "b"], ["c"]])
        assert ts.trajectory_edges(0) == ["a", "b"]
        assert ts.trajectory_edges(1) == ["c"]
        assert ts.n_trajectories == 2
        with pytest.raises(ConstructionError):
            ts.trajectory_symbols(2)

    def test_offsets_point_at_reversed_starts(self):
        ts = build_trajectory_string([["a", "b", "c"], ["d", "e"]])
        assert ts.trajectory_offsets == [0, 4]

    def test_empty_dataset_rejected(self):
        with pytest.raises(ConstructionError):
            build_trajectory_string([])

    def test_empty_trajectory_rejected(self):
        with pytest.raises(ConstructionError):
            build_trajectory_string([["a"], []])

    def test_shared_alphabet(self):
        alphabet = Alphabet(["x"])
        ts = build_trajectory_string([["x", "y"]], alphabet=alphabet)
        assert "y" in alphabet
        assert ts.sigma == alphabet.sigma

    def test_encode_pattern(self):
        ts = build_trajectory_string([["a", "b", "c"]])
        pattern = ts.encode_pattern(["b", "c"])
        assert len(pattern) == 2
        assert all(symbol >= FIRST_EDGE_SYMBOL for symbol in pattern)


class TestTrajectoryStringFromSymbols:
    def test_basic(self):
        text = trajectory_string_from_symbols([[2, 3], [4]])
        assert list(text) == [3, 2, 1, 4, 1, 0]

    def test_rejects_reserved_symbols(self):
        with pytest.raises(ConstructionError):
            trajectory_string_from_symbols([[1, 2]])

    def test_rejects_empty(self):
        with pytest.raises(ConstructionError):
            trajectory_string_from_symbols([])
        with pytest.raises(ConstructionError):
            trajectory_string_from_symbols([[2], []])

    def test_rejects_symbol_beyond_sigma(self):
        with pytest.raises(ConstructionError):
            trajectory_string_from_symbols([[2, 9]], sigma=5)
