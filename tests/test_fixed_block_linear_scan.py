"""Tests for the fixed-block boosting FM-index and the linear-scan baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import QueryError
from repro.fmindex import FixedBlockFMIndex, LinearScanIndex, sample_patterns


@pytest.fixture(scope="module", params=[32, 128, 4096])
def fixed_block(request, medium_bwt):
    return FixedBlockFMIndex(medium_bwt, block_length=request.param, rrr_block_size=31)


class TestFixedBlockFMIndex:
    def test_rank_matches_reference(self, fixed_block, medium_bwt, medium_reference):
        rng = np.random.default_rng(0)
        positions = rng.integers(0, medium_bwt.length + 1, size=50)
        symbols = rng.integers(0, medium_bwt.sigma, size=50)
        for symbol, position in zip(symbols, positions):
            assert fixed_block.rank_bwt(int(symbol), int(position)) == medium_reference.rank_bwt(
                int(symbol), int(position)
            )

    def test_access_matches_bwt(self, fixed_block, medium_bwt):
        for j in range(0, medium_bwt.length, 37):
            assert fixed_block.access_bwt(j) == int(medium_bwt.bwt[j])

    def test_suffix_ranges_match_reference(self, fixed_block, medium_bwt, medium_reference):
        rng = np.random.default_rng(1)
        for pattern in sample_patterns(medium_bwt, 6, 20, rng):
            assert fixed_block.suffix_range(pattern) == medium_reference.suffix_range(pattern)

    def test_extraction_matches_reference(self, fixed_block, medium_reference):
        assert fixed_block.extract(0, 12) == medium_reference.extract(0, 12)
        assert fixed_block.extract(5, 7) == medium_reference.extract(5, 7)

    def test_block_count(self, medium_bwt):
        index = FixedBlockFMIndex(medium_bwt, block_length=100)
        expected = (medium_bwt.length + 99) // 100
        assert index.n_blocks == expected

    def test_rank_table_overhead_is_charged(self, fixed_block):
        # Problem P3: the dense cumulative-rank table costs
        # (n_blocks + 1) * sigma counters and must be part of the total size.
        assert fixed_block.rank_table_size_in_bits() > 0
        assert fixed_block.size_in_bits() >= (
            fixed_block.payload_size_in_bits() + fixed_block.rank_table_size_in_bits()
        )

    def test_rejects_bad_block_length(self, medium_bwt):
        with pytest.raises(ValueError):
            FixedBlockFMIndex(medium_bwt, block_length=0)


class TestLinearScanIndex:
    @pytest.fixture(scope="class")
    def scanner(self, medium_bwt):
        return LinearScanIndex.from_bwt_result(medium_bwt)

    def test_counts_match_fmindex(self, scanner, medium_bwt, medium_reference):
        rng = np.random.default_rng(2)
        for pattern in sample_patterns(medium_bwt, 5, 25, rng):
            assert scanner.count(pattern) == medium_reference.count(pattern)

    def test_horspool_matches_naive(self, scanner, medium_bwt):
        rng = np.random.default_rng(3)
        for pattern in sample_patterns(medium_bwt, 4, 10, rng):
            assert scanner.count(pattern) == scanner.count_naive(pattern)

    def test_contains(self, scanner, medium_bwt, medium_reference):
        rng = np.random.default_rng(4)
        for pattern in sample_patterns(medium_bwt, 6, 10, rng):
            assert scanner.contains(pattern) == medium_reference.contains(pattern)

    def test_absent_pattern(self, scanner):
        # The separator cannot be followed by the terminator twice in a row
        # within a valid trajectory string of more than one trajectory.
        assert scanner.count([scanner.sigma - 1, scanner.sigma - 1, scanner.sigma - 1, scanner.sigma - 1]) >= 0

    def test_occurrence_positions_are_real_matches(self, scanner, medium_bwt):
        rng = np.random.default_rng(5)
        patterns = sample_patterns(medium_bwt, 5, 5, rng)
        text = medium_bwt.text
        for pattern in patterns:
            needle = list(pattern)[::-1]
            for position in scanner.occurrences(pattern):
                assert list(text[position : position + len(needle)]) == needle

    def test_pattern_longer_than_text(self):
        scanner = LinearScanIndex([2, 3, 1, 0])
        assert scanner.count([2, 3, 2, 3, 2, 3]) == 0

    def test_rejects_empty_pattern(self, scanner):
        with pytest.raises(QueryError):
            scanner.count([])

    def test_rejects_out_of_alphabet_symbol(self, scanner):
        with pytest.raises(QueryError):
            scanner.count([scanner.sigma + 5])

    def test_size_is_32_bits_per_symbol(self, scanner):
        assert scanner.bits_per_symbol() == 32.0

    def test_empty_text_rejected(self):
        with pytest.raises(QueryError):
            LinearScanIndex([])
