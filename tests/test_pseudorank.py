"""Tests for PseudoRank (Theorem 2) and the correction terms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ETGraph, build_rml, compute_correction_terms, label_bwt, pseudo_rank
from repro.exceptions import QueryError
from repro.wavelet import HuffmanWaveletTree


@pytest.fixture(scope="module")
def machinery(medium_bwt):
    """ET-graph, RML, labelled BWT, corrections and an HWT over the labels."""
    graph = ETGraph(medium_bwt.text, sigma=medium_bwt.sigma)
    rml = build_rml(graph)
    labelled = label_bwt(medium_bwt.bwt, medium_bwt.c_array, rml)
    corrections = compute_correction_terms(medium_bwt.bwt, labelled, medium_bwt.c_array, rml)
    tree = HuffmanWaveletTree(labelled)
    return graph, rml, labelled, corrections, tree


def true_rank(bwt: np.ndarray, symbol: int, j: int) -> int:
    return int(np.count_nonzero(bwt[:j] == symbol))


class TestCorrectionTerms:
    def test_one_term_per_et_edge(self, machinery, medium_bwt):
        graph, _, _, corrections, _ = machinery
        assert len(corrections) == graph.n_edges

    def test_membership(self, machinery):
        graph, _, _, corrections, _ = machinery
        edge = next(iter(graph.edges()))
        assert (edge.context, edge.target) in corrections
        assert (10**6, 10**6) not in corrections

    def test_unknown_edge_raises(self, machinery):
        _, _, _, corrections, _ = machinery
        with pytest.raises(QueryError):
            corrections.get(10**6, 10**6)

    def test_definition_of_z(self, machinery, medium_bwt):
        """Z_{w'w} = rank_eta(phi(Tbwt), C[w']) - rank_w(Tbwt, C[w'])  (Eq. 7)."""
        graph, rml, labelled, corrections, _ = machinery
        c = medium_bwt.c_array
        for edge in list(graph.edges())[:200]:
            eta = rml.label(edge.target, edge.context)
            boundary = int(c[edge.context])
            expected = true_rank(labelled, eta, boundary) - true_rank(
                medium_bwt.bwt, edge.target, boundary
            )
            assert corrections.get(edge.context, edge.target) == expected

    def test_size_in_bits(self, machinery):
        graph, _, _, corrections, _ = machinery
        assert corrections.size_in_bits() >= len(corrections)


class TestTheorem2:
    """PseudoRank equals the true rank for every valid (w, j) pair."""

    def test_pseudo_rank_equals_true_rank(self, machinery, medium_bwt):
        graph, rml, _, corrections, tree = machinery
        c = medium_bwt.c_array
        checked = 0
        for edge in list(graph.edges())[:60]:
            lower, upper = int(c[edge.context]), int(c[edge.context + 1])
            positions = {lower, upper, (lower + upper) // 2, lower + 1 if lower + 1 <= upper else upper}
            for j in positions:
                expected = true_rank(medium_bwt.bwt, edge.target, j)
                got = pseudo_rank(tree, j, edge.target, edge.context, rml, corrections, c)
                assert got == expected
                checked += 1
        assert checked > 0

    def test_balancing_equation(self, machinery, medium_bwt):
        """Eq. 5: rank differences of symbol and label agree inside a context."""
        graph, rml, labelled, _, _ = machinery
        c = medium_bwt.c_array
        for edge in list(graph.edges())[:40]:
            eta = rml.label(edge.target, edge.context)
            lower, upper = int(c[edge.context]), int(c[edge.context + 1])
            j = (lower + upper) // 2
            lhs = true_rank(medium_bwt.bwt, edge.target, j) - true_rank(
                medium_bwt.bwt, edge.target, lower
            )
            rhs = true_rank(labelled, eta, j) - true_rank(labelled, eta, lower)
            assert lhs == rhs

    def test_precondition_violation_target_not_neighbour(self, machinery, medium_bwt):
        graph, rml, _, corrections, tree = machinery
        c = medium_bwt.c_array
        context = graph.contexts()[0]
        non_neighbour = None
        for candidate in range(medium_bwt.sigma):
            if not graph.has_edge(context, candidate):
                non_neighbour = candidate
                break
        assert non_neighbour is not None
        with pytest.raises(QueryError):
            pseudo_rank(tree, int(c[context]), non_neighbour, context, rml, corrections, c)

    def test_precondition_violation_position_outside_context(self, machinery, medium_bwt):
        graph, rml, _, corrections, tree = machinery
        c = medium_bwt.c_array
        edge = next(iter(graph.edges()))
        bad_position = int(c[edge.context + 1]) + 1
        if bad_position <= medium_bwt.length:
            with pytest.raises(QueryError):
                pseudo_rank(tree, bad_position, edge.target, edge.context, rml, corrections, c)


class TestPaperExamplePseudoRank:
    def test_exhaustive_on_paper_example(self, paper_bwt):
        """Every valid (edge, j) pair on the 16-symbol example (Fig. 8)."""
        graph = ETGraph(paper_bwt.text, sigma=paper_bwt.sigma)
        rml = build_rml(graph)
        labelled = label_bwt(paper_bwt.bwt, paper_bwt.c_array, rml)
        corrections = compute_correction_terms(paper_bwt.bwt, labelled, paper_bwt.c_array, rml)
        tree = HuffmanWaveletTree(labelled)
        c = paper_bwt.c_array
        for edge in graph.edges():
            for j in range(int(c[edge.context]), int(c[edge.context + 1]) + 1):
                expected = true_rank(paper_bwt.bwt, edge.target, j)
                got = pseudo_rank(tree, j, edge.target, edge.context, rml, corrections, c)
                assert got == expected
