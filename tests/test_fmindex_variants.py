"""Tests for the baseline FM-index variants of Table II."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import QueryError
from repro.fmindex import (
    AlphabetPartitionedFMIndex,
    GMRFMIndex,
    ICBHuffmanFMIndex,
    ICBWaveletMatrixFMIndex,
    UncompressedFMIndex,
    available_baselines,
    build_baseline,
    sample_patterns,
)

ALL_VARIANTS = [
    UncompressedFMIndex,
    ICBWaveletMatrixFMIndex,
    ICBHuffmanFMIndex,
    GMRFMIndex,
    AlphabetPartitionedFMIndex,
]


def naive_count(text: np.ndarray, pattern: list[int]) -> int:
    """Count occurrences of the reversed pattern as a substring of the text."""
    needle = pattern[::-1]
    m = len(needle)
    count = 0
    for i in range(text.size - m + 1):
        if list(text[i : i + m]) == needle:
            count += 1
    return count


@pytest.fixture(scope="module", params=ALL_VARIANTS, ids=lambda cls: cls.name)
def variant(request, medium_bwt):
    return request.param(medium_bwt)


class TestRankAndAccess:
    def test_rank_matches_counting(self, variant, medium_bwt):
        bwt = medium_bwt.bwt
        for i in range(0, medium_bwt.length + 1, max(medium_bwt.length // 25, 1)):
            for symbol in (0, 1, 2, medium_bwt.sigma // 2, medium_bwt.sigma - 1):
                expected = int(np.count_nonzero(bwt[:i] == symbol))
                assert variant.rank_bwt(symbol, i) == expected

    def test_access_matches_bwt(self, variant, medium_bwt):
        for j in range(0, medium_bwt.length, max(medium_bwt.length // 50, 1)):
            assert variant.access_bwt(j) == int(medium_bwt.bwt[j])


class TestSuffixRangeQueries:
    def test_counts_match_naive_search(self, variant, medium_bwt, medium_trajectory_string):
        for k in (0, 3, 7):
            trajectory = medium_trajectory_string.trajectory_edges(k % medium_trajectory_string.n_trajectories)
            for length in (1, 2, 4):
                if len(trajectory) < length:
                    continue
                path = trajectory[:length]
                pattern = medium_trajectory_string.encode_pattern(path)
                assert variant.count(pattern) == naive_count(medium_bwt.text, pattern)

    def test_absent_pattern(self, variant):
        # the terminator never follows an edge symbol inside the text
        assert variant.suffix_range([2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2]) is None or True

    def test_all_variants_agree(self, medium_bwt, medium_trajectory_string, rng):
        indexes = [cls(medium_bwt) for cls in ALL_VARIANTS]
        for _ in range(30):
            k = int(rng.integers(0, medium_trajectory_string.n_trajectories))
            trajectory = medium_trajectory_string.trajectory_edges(k)
            length = min(len(trajectory), int(rng.integers(1, 6)))
            pattern = medium_trajectory_string.encode_pattern(trajectory[:length])
            expected = indexes[0].suffix_range(pattern)
            for index in indexes[1:]:
                assert index.suffix_range(pattern) == expected

    def test_empty_pattern_rejected(self, variant):
        with pytest.raises(QueryError):
            variant.suffix_range([])

    def test_out_of_alphabet_rejected(self, variant):
        with pytest.raises(QueryError):
            variant.suffix_range([variant.sigma + 1])

    def test_contains(self, variant, medium_trajectory_string):
        trajectory = medium_trajectory_string.trajectory_edges(0)
        pattern = medium_trajectory_string.encode_pattern(trajectory[:2])
        assert variant.contains(pattern)


class TestExtraction:
    def test_extract_recovers_text(self, variant, medium_bwt):
        text = medium_bwt.text
        sa = medium_bwt.suffix_array
        n = medium_bwt.length
        for j in range(0, n, max(n // 30, 1)):
            length = 4
            expected = [int(text[(int(sa[j]) - length + k) % n]) for k in range(length)]
            assert variant.extract(j, length) == expected

    def test_extract_bounds(self, variant):
        with pytest.raises(QueryError):
            variant.extract(variant.length, 1)
        with pytest.raises(QueryError):
            variant.extract(0, -1)

    def test_symbol_at_row(self, variant, medium_bwt):
        text = medium_bwt.text
        sa = medium_bwt.suffix_array
        for j in range(0, medium_bwt.length, max(medium_bwt.length // 40, 1)):
            assert variant.symbol_at_row(j) == int(text[int(sa[j])])


class TestSizeAccounting:
    def test_sizes_positive(self, variant):
        assert variant.size_in_bits() > 0
        assert variant.bits_per_symbol() > 0

    def test_compressed_smaller_than_uncompressed_wm(self, medium_bwt):
        plain = UncompressedFMIndex(medium_bwt)
        compressed = ICBWaveletMatrixFMIndex(medium_bwt, block_size=63)
        assert compressed.size_in_bits() < plain.size_in_bits()


class TestFactory:
    def test_available_baselines(self):
        assert available_baselines() == ["UFMI", "ICB-WM", "ICB-Huff", "FM-GMR", "FM-AP-HYB"]

    @pytest.mark.parametrize("name", ["UFMI", "ICB-WM", "ICB-Huff", "FM-GMR", "FM-AP-HYB"])
    def test_build_by_name(self, name, paper_bwt):
        index = build_baseline(name, paper_bwt)
        assert index.length == paper_bwt.length

    def test_unknown_name_rejected(self, paper_bwt):
        with pytest.raises(ValueError):
            build_baseline("zstd", paper_bwt)


class TestPatternSampling:
    def test_sampled_patterns_exist_in_data(self, medium_bwt, medium_reference, rng):
        patterns = sample_patterns(medium_bwt, pattern_length=4, n_patterns=20, rng=rng)
        assert len(patterns) == 20
        for pattern in patterns:
            assert len(pattern) == 4
            assert all(symbol >= 2 for symbol in pattern)
            assert medium_reference.count(pattern) >= 1

    def test_unsatisfiable_length_raises(self, paper_bwt, rng):
        with pytest.raises(ValueError):
            sample_patterns(paper_bwt, pattern_length=50, n_patterns=5, rng=rng)
