"""Serving tier: config, wire protocol, coalescer semantics, HTTP surface.

The contract under test: every answer the service produces — through the
coalescer directly or over HTTP — is bit-identical to a direct
``engine.run`` of the same typed query, including the ``degraded`` and
``failed_shards`` reliability flags; concurrent submissions coalesce into at
most ``ceil(N / max_batch_size)`` engine batches; admission control sheds
with the canonical :class:`~repro.exceptions.ServiceOverloadError` /
:class:`~repro.exceptions.DeadlineExceededError`; and shutdown drains
in-flight batches while shedding queued requests with a retriable status.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine import (
    ContainsQuery,
    CountQuery,
    EngineConfig,
    ExtractQuery,
    LocateQuery,
    StrictPathQuery,
    build_engine,
)
from repro.exceptions import (
    AlphabetError,
    ConstructionError,
    DeadlineExceededError,
    QueryError,
    ServiceError,
    ServiceOverloadError,
)
from repro.reliability import faults
from repro.service import (
    MicroBatchCoalescer,
    ServiceConfig,
    query_from_json,
    result_to_json,
    serve_in_background,
)
from repro.trajectories import Trajectory


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


@pytest.fixture(scope="module")
def dataset():
    # String edge ids so every query round-trips through the JSON protocol;
    # overlapping ring walks so paths repeat across trajectories.
    rng = np.random.default_rng(1234)
    ring = [f"e{i}" for i in range(12)]
    trajectories = []
    for trajectory_id in range(16):
        length = int(rng.integers(5, 12))
        start = int(rng.integers(0, len(ring)))
        walk = [ring[(start + step) % len(ring)] for step in range(length)]
        departure = float(rng.uniform(0, 300))
        dwell = rng.uniform(4, 16, size=length)
        trajectories.append(
            Trajectory(
                edges=walk,
                timestamps=list(departure + np.cumsum(dwell) - dwell[0]),
                trajectory_id=trajectory_id,
            )
        )
    return trajectories


@pytest.fixture(scope="module")
def engine(dataset):
    return build_engine(dataset, EngineConfig(backend="cinct", sa_sample_rate=4))


@pytest.fixture(scope="module")
def sharded(dataset):
    return build_engine(
        dataset,
        EngineConfig(backend="cinct", sa_sample_rate=4, num_shards=2, shard_workers=1),
    )


@pytest.fixture(scope="module")
def probe_edge(dataset):
    return dataset[0].edges[0]


def _all_query_types(dataset):
    """One query of every type, all answerable by the fixture engines."""
    edges = list(dataset[0].edges[:2])
    return [
        CountQuery(edges),
        ContainsQuery(edges),
        LocateQuery(edges),
        ExtractQuery(row=1, length=3),
        StrictPathQuery(edges, t_start=0.0, t_end=1e9),
    ]


class _RecordingEngine:
    """Engine proxy that records every batch handed to ``run_many``."""

    def __init__(self, engine, delay: float = 0.0):
        self._engine = engine
        self._delay = delay
        self.batches: list[int] = []

    def run_many(self, queries):
        self.batches.append(len(queries))
        if self._delay:
            time.sleep(self._delay)
        return self._engine.run_many(queries)

    def __getattr__(self, name):
        return getattr(self._engine, name)


# --------------------------------------------------------------------------- #
# ServiceConfig
# --------------------------------------------------------------------------- #
class TestServiceConfig:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.max_batch_size >= 1
        assert config.max_queue_depth >= 1
        assert config.default_deadline is None

    @pytest.mark.parametrize(
        "overrides",
        [
            {"host": "  "},
            {"port": -1},
            {"port": 70000},
            {"batch_window_ms": -1.0},
            {"max_batch_size": 0},
            {"max_queue_depth": 0},
            {"default_deadline": 0.0},
            {"worker_threads": 0},
            {"drain_timeout": -0.5},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ConstructionError):
            ServiceConfig(**overrides)

    def test_from_env_reads_prefixed_variables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "9999")
        monkeypatch.setenv("REPRO_SERVE_BATCH_WINDOW_MS", "12.5")
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH_SIZE", "7")
        monkeypatch.setenv("REPRO_SERVE_DEFAULT_DEADLINE", "2.5")
        config = ServiceConfig.from_env()
        assert config.port == 9999
        assert config.batch_window_ms == 12.5
        assert config.max_batch_size == 7
        assert config.default_deadline == 2.5

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "9999")
        config = ServiceConfig.from_env(port=4321, max_batch_size=None)
        assert config.port == 4321  # flag wins over env
        assert config.max_batch_size == ServiceConfig().max_batch_size  # None = unset

    def test_malformed_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "not-a-port")
        with pytest.raises(ConstructionError, match="REPRO_SERVE_PORT"):
            ServiceConfig.from_env()

    def test_dict_round_trip(self):
        config = ServiceConfig(port=0, batch_window_ms=2.0, max_batch_size=3)
        assert ServiceConfig.from_dict(config.as_dict()) == config
        with pytest.raises(ConstructionError, match="unknown"):
            ServiceConfig.from_dict({"bogus": 1})


# --------------------------------------------------------------------------- #
# wire protocol
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_parses_every_query_type(self):
        query, timeout = query_from_json({"type": "count", "path": ["a", 2]})
        assert query == CountQuery(["a", 2])
        assert timeout is None
        query, _ = query_from_json({"type": "contains", "path": ["a"]})
        assert query == ContainsQuery(["a"])
        query, _ = query_from_json({"type": "locate", "path": ["a"]})
        assert query == LocateQuery(["a"])
        query, _ = query_from_json({"type": "extract", "row": 3, "length": 2})
        assert query == ExtractQuery(row=3, length=2)
        query, timeout = query_from_json(
            {"type": "strict_path", "path": ["a"], "t_start": 1.0, "t_end": 2.0,
             "deadline_ms": 250}
        )
        assert query == StrictPathQuery(["a"], t_start=1.0, t_end=2.0)
        assert timeout == pytest.approx(0.25)

    @pytest.mark.parametrize(
        "document",
        [
            "not an object",
            {"type": "nope", "path": ["a"]},
            {"type": "count"},
            {"type": "count", "path": []},
            {"type": "count", "path": [True]},
            {"type": "count", "path": ["a"], "deadline_ms": 0},
            {"type": "count", "path": ["a"], "deadline_ms": "soon"},
            {"type": "extract", "row": 1.5, "length": 2},
            {"type": "extract", "row": 1},
        ],
    )
    def test_malformed_documents_raise_query_error(self, document):
        with pytest.raises(QueryError):
            query_from_json(document)

    def test_result_round_trip_matches_engine(self, engine, dataset):
        for query in _all_query_types(dataset):
            document = result_to_json(engine.run(query))
            assert document["degraded"] is False
            assert document["failed_shards"] == []
            assert json.loads(json.dumps(document)) == document  # JSON-safe


# --------------------------------------------------------------------------- #
# coalescer
# --------------------------------------------------------------------------- #
class TestCoalescer:
    @pytest.mark.parametrize("fixture", ["engine", "sharded"])
    def test_bit_identity_with_direct_run(self, request, dataset, fixture):
        target = request.getfixturevalue(fixture)
        queries = _all_query_types(dataset)
        expected = [target.run(query) for query in queries]

        async def main():
            coalescer = MicroBatchCoalescer(
                target, ServiceConfig(batch_window_ms=20.0, max_batch_size=16)
            )
            try:
                return await asyncio.gather(
                    *[coalescer.submit(query) for query in queries]
                )
            finally:
                await coalescer.aclose()

        assert asyncio.run(main()) == expected

    def test_concurrent_submissions_coalesce(self, engine, probe_edge):
        n_clients, max_batch = 20, 8
        recorder = _RecordingEngine(engine)

        async def main():
            coalescer = MicroBatchCoalescer(
                recorder,
                ServiceConfig(batch_window_ms=200.0, max_batch_size=max_batch),
            )
            tasks = [
                asyncio.create_task(coalescer.submit(CountQuery([probe_edge])))
                for _ in range(n_clients)
            ]
            results = await asyncio.gather(*tasks)
            stats = coalescer.stats()
            await coalescer.aclose()
            return results, stats

        results, stats = asyncio.run(main())
        assert len(recorder.batches) <= math.ceil(n_clients / max_batch)
        assert sum(recorder.batches) == n_clients
        assert stats["batches"] == len(recorder.batches)
        assert stats["served"] == n_clients
        assert stats["largest_batch"] == max_batch
        expected = engine.run(CountQuery([probe_edge]))
        assert all(result == expected for result in results)

    def test_queue_full_sheds_with_overload_error(self, engine, probe_edge):
        slow = _RecordingEngine(engine, delay=0.3)

        async def main():
            coalescer = MicroBatchCoalescer(
                slow,
                ServiceConfig(
                    batch_window_ms=1.0,
                    max_batch_size=4,
                    max_queue_depth=2,
                    worker_threads=1,
                ),
            )
            first = asyncio.create_task(coalescer.submit(CountQuery([probe_edge])))
            second = asyncio.create_task(coalescer.submit(CountQuery([probe_edge])))
            await asyncio.sleep(0.05)  # both now occupy the queue (in flight)
            with pytest.raises(ServiceOverloadError) as excinfo:
                await coalescer.submit(CountQuery([probe_edge]))
            assert excinfo.value.reason == "queue_full"
            assert excinfo.value.retriable is True
            assert isinstance(excinfo.value, ServiceError)
            shed = coalescer.stats()["shed"]
            results = await asyncio.gather(first, second)
            await coalescer.aclose()
            return shed, results

        shed, results = asyncio.run(main())
        assert shed["queue_full"] == 1
        assert results == [engine.run(CountQuery([probe_edge]))] * 2

    def test_deadline_shorter_than_window_sheds_immediately(self, engine, probe_edge):
        async def main():
            coalescer = MicroBatchCoalescer(
                engine, ServiceConfig(batch_window_ms=200.0)
            )
            with pytest.raises(DeadlineExceededError):
                await coalescer.submit(CountQuery([probe_edge]), timeout=0.01)
            stats = coalescer.stats()
            await coalescer.aclose()
            return stats

        stats = asyncio.run(main())
        assert stats["shed"]["deadline"] == 1
        assert stats["submitted"] == 0  # shed before joining a window

    def test_deadline_lapsing_in_window_sheds_at_dispatch(self, engine, probe_edge):
        async def main():
            coalescer = MicroBatchCoalescer(
                engine, ServiceConfig(batch_window_ms=0.0)
            )
            # Admitted (deadline is past the zero-length window's close), but
            # certainly expired by the time the flush callback actually runs.
            with pytest.raises(DeadlineExceededError):
                await coalescer.submit(CountQuery([probe_edge]), timeout=1e-9)
            stats = coalescer.stats()
            await coalescer.aclose()
            return stats

        stats = asyncio.run(main())
        assert stats["shed"]["deadline"] == 1
        assert stats["submitted"] == 1  # joined a window, shed at dispatch

    def test_default_deadline_comes_from_config(self, engine, probe_edge):
        async def main():
            coalescer = MicroBatchCoalescer(
                engine,
                ServiceConfig(batch_window_ms=200.0, default_deadline=0.01),
            )
            with pytest.raises(DeadlineExceededError):
                await coalescer.submit(CountQuery([probe_edge]))  # no timeout arg
            await coalescer.aclose()

        asyncio.run(main())

    def test_bad_query_does_not_fail_its_batch_neighbours(
        self, engine, dataset, probe_edge
    ):
        good = CountQuery([probe_edge])

        async def main():
            coalescer = MicroBatchCoalescer(
                engine, ServiceConfig(batch_window_ms=30.0, max_batch_size=8)
            )
            good_task = asyncio.create_task(coalescer.submit(good))
            bad_task = asyncio.create_task(
                coalescer.submit(CountQuery(["no-such-segment"]))
            )
            results = await asyncio.gather(good_task, bad_task, return_exceptions=True)
            await coalescer.aclose()
            return results

        good_result, bad_result = asyncio.run(main())
        assert good_result == engine.run(good)
        assert isinstance(bad_result, AlphabetError)

    def test_graceful_drain(self, engine, probe_edge):
        slow = _RecordingEngine(engine, delay=0.2)

        async def main():
            coalescer = MicroBatchCoalescer(
                slow,
                ServiceConfig(batch_window_ms=5.0, max_batch_size=2, worker_threads=1),
            )
            # Two fill a batch and dispatch immediately (in flight)...
            in_flight = [
                asyncio.create_task(coalescer.submit(CountQuery([probe_edge])))
                for _ in range(2)
            ]
            await asyncio.sleep(0.02)
            # ...one more waits in a fresh window when the drain begins.
            queued = asyncio.create_task(coalescer.submit(CountQuery([probe_edge])))
            await asyncio.sleep(0.001)
            await coalescer.aclose()
            queued_outcome = await asyncio.gather(queued, return_exceptions=True)
            served = await asyncio.gather(*in_flight)
            with pytest.raises(ServiceOverloadError) as excinfo:
                await coalescer.submit(CountQuery([probe_edge]))
            return served, queued_outcome[0], excinfo.value, coalescer.stats()

        served, queued_outcome, late_error, stats = asyncio.run(main())
        # In-flight work completed with real answers.
        assert served == [engine.run(CountQuery([probe_edge]))] * 2
        # The queued request was shed with a retriable shutdown status.
        assert isinstance(queued_outcome, ServiceOverloadError)
        assert queued_outcome.reason == "shutdown"
        assert queued_outcome.retriable is True
        # Post-drain submissions shed the same way.
        assert late_error.reason == "shutdown"
        assert stats["shed"]["shutdown"] == 2
        assert stats["draining"] is True

    def test_degraded_results_flow_through(self, sharded, probe_edge):
        sharded.configure_reliability(degraded_results=True)
        try:
            query = CountQuery([probe_edge])
            with faults.shard_fault(0, "raise"):
                expected = sharded.run(query)

                async def main():
                    coalescer = MicroBatchCoalescer(
                        sharded, ServiceConfig(batch_window_ms=5.0)
                    )
                    result = await coalescer.submit(query)
                    await coalescer.aclose()
                    return result

                result = asyncio.run(main())
            assert result == expected
            assert result.degraded is True
            assert result.failed_shards == (0,)
        finally:
            sharded.configure_reliability(degraded_results=False)


# --------------------------------------------------------------------------- #
# HTTP surface
# --------------------------------------------------------------------------- #
def _post(url: str, document: object, timeout: float = 10.0):
    request = urllib.request.Request(
        url + "/query",
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _get(url: str, route: str, timeout: float = 10.0):
    with urllib.request.urlopen(url + route, timeout=timeout) as response:
        return json.load(response)


class TestHTTPSurface:
    @pytest.fixture(scope="class")
    def handle(self, engine):
        with serve_in_background(
            engine, ServiceConfig(port=0, batch_window_ms=2.0)
        ) as handle:
            yield handle

    def test_query_answers_match_direct_run(self, handle, engine, dataset):
        for query in _all_query_types(dataset):
            request = _request_document(query)
            assert _post(handle.url, request) == result_to_json(engine.run(query))

    def test_health_aggregates_engine_and_service(self, handle, engine):
        health = _get(handle.url, "/health")
        assert health["status"] == "ok"
        assert health["epochs"] == [engine.epoch]
        assert health["engine_health"]["num_shards"] == 1
        assert set(health) >= {"cache", "queue_depth", "shed", "served", "coalesced"}

    def test_stats_surface(self, handle):
        stats = _get(handle.url, "/stats")
        assert stats["engine"]["engine"] == "single"
        assert stats["config"]["max_batch_size"] == ServiceConfig().max_batch_size
        assert stats["service"]["shed"] == {
            "queue_full": 0, "deadline": 0, "shutdown": 0,
        }

    @pytest.mark.parametrize(
        "body, expected_status",
        [
            (b"this is not json", 400),
            (b'{"type": "bogus"}', 400),
            (b'{"type": "count", "path": []}', 400),
            (b'{"type": "count", "path": ["no-such-segment"]}', 400),
        ],
    )
    def test_bad_requests_get_400(self, handle, body, expected_status):
        request = urllib.request.Request(handle.url + "/query", data=body)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == expected_status
        payload = json.load(excinfo.value)
        assert payload["reason"] == "bad_request"
        assert payload["retriable"] is False

    def test_unknown_route_is_404_and_get_query_is_405(self, handle):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(handle.url + "/nope", timeout=10.0)
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(handle.url + "/query", timeout=10.0)
        assert excinfo.value.code == 405

    def test_expired_deadline_is_504(self, engine, probe_edge):
        with serve_in_background(
            engine, ServiceConfig(port=0, batch_window_ms=100.0)
        ) as handle:
            request = urllib.request.Request(
                handle.url + "/query",
                data=json.dumps(
                    {"type": "count", "path": [probe_edge], "deadline_ms": 1}
                ).encode(),
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            assert excinfo.value.code == 504
            assert json.load(excinfo.value)["reason"] == "deadline"

    def test_overload_is_503_with_retry_after(self, engine, probe_edge):
        slow = _RecordingEngine(engine, delay=0.5)
        config = ServiceConfig(
            port=0,
            batch_window_ms=1.0,
            max_batch_size=1,
            max_queue_depth=1,
            worker_threads=1,
        )
        with serve_in_background(slow, config) as handle:
            statuses: list[int] = []
            lock = threading.Lock()

            def client():
                try:
                    _post(handle.url, {"type": "count", "path": [probe_edge]})
                    outcome = 200
                except urllib.error.HTTPError as error:
                    outcome = error.code
                    if error.code == 503:
                        assert error.headers["Retry-After"] is not None
                        payload = json.load(error)
                        assert payload["retriable"] is True
                        assert payload["reason"] in {"queue_full", "shutdown"}
                with lock:
                    statuses.append(outcome)

            threads = [threading.Thread(target=client) for _ in range(6)]
            for thread in threads:
                thread.start()
                time.sleep(0.02)  # let earlier requests occupy the queue
            for thread in threads:
                thread.join()
        assert 200 in statuses  # the service kept serving under overload
        assert 503 in statuses  # and shed the excess

    def test_degraded_flag_reaches_json_clients(self, sharded, probe_edge):
        sharded.configure_reliability(degraded_results=True)
        try:
            with faults.shard_fault(0, "raise"):
                with serve_in_background(
                    sharded, ServiceConfig(port=0, batch_window_ms=2.0)
                ) as handle:
                    document = _post(
                        handle.url, {"type": "count", "path": [probe_edge]}
                    )
            assert document["degraded"] is True
            assert document["failed_shards"] == [0]
        finally:
            sharded.configure_reliability(degraded_results=False)


def _request_document(query) -> dict:
    """The wire request that parses back into ``query``."""
    if isinstance(query, CountQuery):
        return {"type": "count", "path": list(query.path)}
    if isinstance(query, ContainsQuery):
        return {"type": "contains", "path": list(query.path)}
    if isinstance(query, LocateQuery):
        return {"type": "locate", "path": list(query.path)}
    if isinstance(query, ExtractQuery):
        return {"type": "extract", "row": query.row, "length": query.length}
    return {
        "type": "strict_path",
        "path": list(query.path),
        "t_start": query.t_start,
        "t_end": query.t_end,
    }
