"""Tests for the trajectory data model and synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.network import grid_network
from repro.trajectories import (
    Trajectory,
    TrajectoryDataset,
    inject_gaps,
    interpolate_gaps,
    random_walk_symbols,
    shortest_path_trips,
    sparse_state_walks,
    straight_biased_walks,
    symbol_trajectories,
)


class TestTrajectoryModel:
    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            Trajectory(edges=[])

    def test_timestamp_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            Trajectory(edges=[(0, 1), (1, 2)], timestamps=[0.0])

    def test_time_interval(self):
        trajectory = Trajectory(edges=[(0, 1), (1, 2)], timestamps=[5.0, 9.0])
        assert trajectory.time_interval() == (5.0, 9.0)
        assert Trajectory(edges=[(0, 1)]).time_interval() is None

    def test_iteration_and_length(self):
        trajectory = Trajectory(edges=[(0, 1), (1, 2)])
        assert len(trajectory) == 2
        assert list(trajectory) == [(0, 1), (1, 2)]

    def test_dataset_assigns_ids(self, medium_dataset):
        ids = [t.trajectory_id for t in medium_dataset]
        assert ids == list(range(len(medium_dataset)))

    def test_dataset_statistics(self, medium_dataset):
        assert medium_dataset.total_edges == sum(len(t) for t in medium_dataset)
        assert medium_dataset.distinct_edges() <= medium_dataset.network.n_edges

    def test_dataset_requires_trajectories(self):
        with pytest.raises(DatasetError):
            TrajectoryDataset(name="empty", trajectories=[])

    def test_dataset_subset(self, medium_dataset):
        subset = medium_dataset.subset(5)
        assert len(subset) == 5
        with pytest.raises(DatasetError):
            medium_dataset.subset(0)

    def test_symbol_trajectories_roundtrip(self, medium_dataset):
        symbols = symbol_trajectories(medium_dataset)
        alphabet = medium_dataset.alphabet
        assert alphabet.decode_path(symbols[0]) == medium_dataset.trajectories[0].edges

    def test_to_trajectory_string_length(self, medium_dataset):
        ts = medium_dataset.to_trajectory_string()
        assert ts.length == medium_dataset.total_edges + len(medium_dataset) + 1


class TestStraightBiasedWalks:
    def test_connected_and_within_length_bounds(self, small_network):
        rng = np.random.default_rng(0)
        walks = straight_biased_walks(small_network, 20, 5, 12, rng)
        assert len(walks) == 20
        for walk in walks:
            assert 1 <= len(walk) <= 12
            assert walk.is_connected(small_network)

    def test_timestamps_monotone(self, small_network):
        rng = np.random.default_rng(1)
        walks = straight_biased_walks(small_network, 5, 5, 10, rng)
        for walk in walks:
            diffs = np.diff(walk.timestamps)
            assert np.all(diffs >= 0)

    def test_straight_bias_reduces_turns(self, small_network):
        def turn_fraction(bias):
            rng = np.random.default_rng(3)
            walks = straight_biased_walks(small_network, 30, 10, 20, rng, straight_bias=bias)
            turns = total = 0
            for walk in walks:
                for first, second in zip(walk.edges, walk.edges[1:]):
                    total += 1
                    if small_network.turn_angle(first, second) > 0.1:
                        turns += 1
            return turns / total

        assert turn_fraction(5.0) < turn_fraction(0.0)

    def test_parameter_validation(self, small_network):
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            straight_biased_walks(small_network, 0, 3, 5, rng)
        with pytest.raises(DatasetError):
            straight_biased_walks(small_network, 3, 6, 5, rng)


class TestShortestPathTrips:
    def test_trips_are_connected_shortest_paths(self, small_network):
        rng = np.random.default_rng(2)
        trips = shortest_path_trips(small_network, 10, rng, min_hops=4)
        assert len(trips) == 10
        for trip in trips:
            assert len(trip) >= 4
            assert trip.is_connected(small_network)
            source = small_network.segment(trip.edges[0]).tail
            target = small_network.segment(trip.edges[-1]).head
            optimal = small_network.shortest_path_length(source, target)
            travelled = sum(small_network.segment(e).length for e in trip.edges)
            assert travelled == pytest.approx(optimal)

    def test_unsatisfiable_request_raises(self):
        tiny = grid_network(2, 2)
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            shortest_path_trips(tiny, 5, rng, min_hops=50)


class TestGapInjectionAndRepair:
    def test_inject_gaps_disconnects(self, small_network):
        rng = np.random.default_rng(4)
        walks = straight_biased_walks(small_network, 15, 8, 15, rng)
        dataset = TrajectoryDataset(name="clean", trajectories=walks, network=small_network)
        gapped = inject_gaps(walks, small_network, gap_probability=0.4, rng=rng)
        gapped_dataset = TrajectoryDataset(name="gapped", trajectories=gapped, network=small_network)
        assert gapped_dataset.connected_fraction() < dataset.connected_fraction()

    def test_inject_zero_probability_is_identity(self, small_network):
        rng = np.random.default_rng(5)
        walks = straight_biased_walks(small_network, 5, 5, 10, rng)
        unchanged = inject_gaps(walks, small_network, gap_probability=0.0, rng=rng)
        for original, copy in zip(walks, unchanged):
            assert original.edges == copy.edges

    def test_inject_invalid_probability(self, small_network):
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            inject_gaps([], small_network, gap_probability=1.5, rng=rng)

    def test_interpolation_restores_connectivity(self, small_network):
        rng = np.random.default_rng(6)
        walks = straight_biased_walks(small_network, 15, 8, 15, rng)
        gapped = inject_gaps(walks, small_network, gap_probability=0.3, rng=rng)
        repaired = interpolate_gaps(gapped, small_network)
        dataset = TrajectoryDataset(name="repaired", trajectories=repaired, network=small_network)
        assert dataset.connected_fraction() == pytest.approx(1.0)

    def test_interpolation_preserves_original_edges(self, small_network):
        rng = np.random.default_rng(7)
        walks = straight_biased_walks(small_network, 5, 6, 10, rng)
        gapped = inject_gaps(walks, small_network, gap_probability=0.3, rng=rng)
        repaired = interpolate_gaps(gapped, small_network)
        for original, fixed in zip(gapped, repaired):
            # every originally reported segment survives, in order
            iterator = iter(fixed.edges)
            assert all(edge in iterator for edge in original.edges)

    def test_interpolation_keeps_timestamps_monotone(self, small_network):
        rng = np.random.default_rng(8)
        walks = straight_biased_walks(small_network, 8, 6, 12, rng)
        gapped = inject_gaps(walks, small_network, gap_probability=0.3, rng=rng)
        repaired = interpolate_gaps(gapped, small_network)
        for trajectory in repaired:
            assert trajectory.timestamps is not None
            assert np.all(np.diff(trajectory.timestamps) >= -1e-9)


class TestSymbolGenerators:
    def test_random_walk_symbols_shape(self):
        rng = np.random.default_rng(9)
        walks = random_walk_symbols(sigma=100, average_out_degree=4.0, total_symbols=2000, rng=rng, walk_length=50)
        total = sum(len(w) for w in walks)
        assert total >= 2000
        for walk in walks:
            assert len(walk) == 50
            assert all(2 <= symbol < 102 for symbol in walk)

    def test_random_walk_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            random_walk_symbols(sigma=1, average_out_degree=4.0, total_symbols=100, rng=rng)
        with pytest.raises(DatasetError):
            random_walk_symbols(sigma=10, average_out_degree=0, total_symbols=100, rng=rng)
        with pytest.raises(DatasetError):
            random_walk_symbols(sigma=10, average_out_degree=2, total_symbols=10, rng=rng, walk_length=50)

    def test_random_walk_out_degree_controls_density(self):
        from repro.core import ETGraph
        from repro.strings import trajectory_string_from_symbols

        def average_degree(d):
            rng = np.random.default_rng(11)
            walks = random_walk_symbols(sigma=200, average_out_degree=d, total_symbols=6000, rng=rng)
            graph = ETGraph(trajectory_string_from_symbols(walks))
            return graph.average_out_degree()

        assert average_degree(8.0) > average_degree(2.0)

    def test_sparse_state_walks_are_sparse(self):
        from repro.core import ETGraph
        from repro.strings import trajectory_string_from_symbols

        rng = np.random.default_rng(12)
        walks = sparse_state_walks(n_states=300, n_walks=200, walk_length=10, rng=rng)
        graph = ETGraph(trajectory_string_from_symbols(walks))
        assert graph.average_out_degree() < 2.5

    def test_sparse_state_walks_validation(self):
        with pytest.raises(DatasetError):
            sparse_state_walks(n_states=2, n_walks=5, walk_length=5, rng=np.random.default_rng(0))
