"""Tests for relative movement labeling (RML) and its optimality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import empirical_entropy_h0
from repro.core import ETGraph, build_rml, label_bwt, labelled_entropy
from repro.exceptions import ConstructionError, QueryError


@pytest.fixture(scope="module")
def paper_graph(paper_trajectory_string):
    return ETGraph(paper_trajectory_string.text, sigma=paper_trajectory_string.sigma)


@pytest.fixture(scope="module")
def paper_rml(paper_graph):
    return build_rml(paper_graph, strategy="bigram")


@pytest.fixture(scope="module")
def medium_graph(medium_bwt):
    return ETGraph(medium_bwt.text, sigma=medium_bwt.sigma)


class TestRequirement:
    """The RML function must be one-to-one per context (Section III-B1)."""

    def test_one_to_one_per_context(self, medium_graph):
        rml = build_rml(medium_graph, strategy="bigram")
        for context in medium_graph.contexts():
            labels = rml.labels_for_context(context)
            assert len(set(labels.values())) == len(labels)
            assert set(labels.values()) == set(range(1, len(labels) + 1))

    def test_random_strategy_also_one_to_one(self, medium_graph):
        rml = build_rml(medium_graph, strategy="random", rng=np.random.default_rng(3))
        for context in medium_graph.contexts():
            labels = rml.labels_for_context(context)
            assert len(set(labels.values())) == len(labels)

    def test_decode_inverts_label(self, medium_graph):
        rml = build_rml(medium_graph, strategy="bigram")
        for context in medium_graph.contexts():
            for target, label in rml.labels_for_context(context).items():
                assert rml.decode(label, context) == target
                assert rml.label(target, context) == label

    def test_undefined_transition_raises(self, paper_rml, paper_trajectory_string):
        alphabet = paper_trajectory_string.alphabet
        b, a = alphabet.encode("B"), alphabet.encode("A")
        assert not paper_rml.has_label(a, b)  # B is never followed by A
        with pytest.raises(QueryError):
            paper_rml.label(a, b)
        with pytest.raises(QueryError):
            paper_rml.decode(99, b)

    def test_max_label_bounded_by_max_out_degree(self, medium_graph):
        rml = build_rml(medium_graph, strategy="bigram")
        assert rml.max_label == medium_graph.max_out_degree()


class TestPaperExample:
    def test_most_frequent_successor_gets_label_one(self, paper_trajectory_string, paper_rml):
        alphabet = paper_trajectory_string.alphabet
        a, b, d = (alphabet.encode(x) for x in "ABD")
        # n_{BA} = 2 > n_{DA} = 1, so phi(B|A) = 1 and phi(D|A) = 2 (Fig. 6a).
        assert paper_rml.label(b, a) == 1
        assert paper_rml.label(d, a) == 2

    def test_labelled_bwt_entropy_drops(self, paper_bwt, paper_rml):
        labelled = label_bwt(paper_bwt.bwt, paper_bwt.c_array, paper_rml)
        h_original = empirical_entropy_h0(paper_bwt.bwt)
        h_labelled = empirical_entropy_h0(labelled)
        # The paper reports 2.8 -> 0.7 bits for this example.
        assert h_original == pytest.approx(2.8, abs=0.1)
        assert h_labelled == pytest.approx(0.7, abs=0.1)

    def test_labelled_bwt_alphabet_is_tiny(self, paper_bwt, paper_rml):
        labelled = label_bwt(paper_bwt.bwt, paper_bwt.c_array, paper_rml)
        assert labelled.min() >= 1
        assert labelled.max() <= paper_rml.max_label


class TestLabelBWT:
    def test_every_position_labelled(self, medium_bwt):
        graph = ETGraph(medium_bwt.text, sigma=medium_bwt.sigma)
        rml = build_rml(graph)
        labelled = label_bwt(medium_bwt.bwt, medium_bwt.c_array, rml)
        assert labelled.shape == medium_bwt.bwt.shape
        assert int(labelled.min()) >= 1

    def test_label_counts_preserved_within_context(self, medium_bwt):
        """Within a context block the labelled and original symbols are a bijection."""
        graph = ETGraph(medium_bwt.text, sigma=medium_bwt.sigma)
        rml = build_rml(graph)
        labelled = label_bwt(medium_bwt.bwt, medium_bwt.c_array, rml)
        c = medium_bwt.c_array
        for context in range(medium_bwt.sigma):
            start, end = int(c[context]), int(c[context + 1])
            if start == end:
                continue
            original_block = medium_bwt.bwt[start:end]
            labelled_block = labelled[start:end]
            mapping = rml.labels_for_context(context)
            expected = [mapping[int(s)] for s in original_block]
            assert list(labelled_block) == expected


class TestOptimality:
    """Theorem 3: bigram-sorted labelling minimises H0 over all labellings."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_bigram_beats_random(self, medium_bwt, seed):
        graph = ETGraph(medium_bwt.text, sigma=medium_bwt.sigma)
        optimal = build_rml(graph, strategy="bigram")
        random_rml = build_rml(graph, strategy="random", rng=np.random.default_rng(seed))
        h_optimal = labelled_entropy(label_bwt(medium_bwt.bwt, medium_bwt.c_array, optimal))
        h_random = labelled_entropy(label_bwt(medium_bwt.bwt, medium_bwt.c_array, random_rml))
        assert h_optimal <= h_random + 1e-9

    def test_bigram_beats_unigram_ordering(self, medium_bwt):
        """Theorem 6 via emulation: the MEL-style (unigram) ordering cannot win."""
        graph = ETGraph(medium_bwt.text, sigma=medium_bwt.sigma)
        counts = np.bincount(medium_bwt.text, minlength=medium_bwt.sigma)
        optimal = build_rml(graph, strategy="bigram")
        unigram = build_rml(graph, strategy="unigram", unigram_counts=counts)
        h_optimal = labelled_entropy(label_bwt(medium_bwt.bwt, medium_bwt.c_array, optimal))
        h_unigram = labelled_entropy(label_bwt(medium_bwt.bwt, medium_bwt.c_array, unigram))
        assert h_optimal <= h_unigram + 1e-9

    def test_labelled_entropy_below_original(self, medium_bwt):
        """Eq. 10: H0(phi(Tbwt)) << H0(Tbwt) on trajectory-like data."""
        graph = ETGraph(medium_bwt.text, sigma=medium_bwt.sigma)
        rml = build_rml(graph)
        labelled = label_bwt(medium_bwt.bwt, medium_bwt.c_array, rml)
        assert empirical_entropy_h0(labelled) < empirical_entropy_h0(medium_bwt.bwt)


class TestStrategies:
    def test_unknown_strategy_rejected(self, medium_graph):
        with pytest.raises(ConstructionError):
            build_rml(medium_graph, strategy="magic")  # type: ignore[arg-type]

    def test_unigram_requires_counts(self, medium_graph):
        with pytest.raises(ConstructionError):
            build_rml(medium_graph, strategy="unigram")

    def test_random_strategy_is_seeded(self, medium_graph):
        first = build_rml(medium_graph, strategy="random", rng=np.random.default_rng(7))
        second = build_rml(medium_graph, strategy="random", rng=np.random.default_rng(7))
        for context in medium_graph.contexts():
            assert first.labels_for_context(context) == second.labels_for_context(context)

    def test_len_counts_edges(self, medium_graph):
        rml = build_rml(medium_graph)
        assert len(rml) == medium_graph.n_edges

    def test_labelled_entropy_of_empty(self):
        assert labelled_entropy([]) == 0.0
