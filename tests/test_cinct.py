"""Tests for the CiNCT index: equivalence with the reference FM-index,
extraction, locate, sizes and configuration options."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CiNCT
from repro.exceptions import ConstructionError, QueryError
from repro.fmindex import UncompressedFMIndex
from repro.strings import build_trajectory_string, burrows_wheeler_transform


def all_substrings(trajectory, max_length):
    for start in range(len(trajectory)):
        for length in range(1, max_length + 1):
            if start + length <= len(trajectory):
                yield trajectory[start : start + length]


class TestPaperExampleQueries:
    @pytest.mark.parametrize(
        "path,expected",
        [
            (["A"], 3),
            (["B"], 3),
            (["A", "B"], 2),
            (["B", "C"], 2),
            (["A", "B", "C"], 1),
            (["A", "B", "E", "F"], 1),
            (["A", "D"], 1),
            (["E", "F"], 1),
            (["B", "A"], 0),
            (["D", "A"], 0),
            (["C", "B"], 0),
            (["F", "E"], 0),
        ],
    )
    def test_counts(self, paper_cinct, paper_trajectory_string, path, expected):
        pattern = paper_trajectory_string.encode_pattern(path)
        assert paper_cinct.count(pattern) == expected

    def test_suffix_range_matches_reference(self, paper_cinct, paper_reference, paper_trajectory_string):
        for path in (["A"], ["A", "B"], ["B", "C"], ["A", "B", "E", "F"], ["A", "D"]):
            pattern = paper_trajectory_string.encode_pattern(path)
            assert paper_cinct.suffix_range(pattern) == paper_reference.suffix_range(pattern)

    def test_contains(self, paper_cinct, paper_trajectory_string):
        assert paper_cinct.contains(paper_trajectory_string.encode_pattern(["A", "B"]))
        assert not paper_cinct.contains(paper_trajectory_string.encode_pattern(["D", "A"]))


class TestEquivalenceWithAlgorithm1:
    """Algorithm 3 must return exactly the ranges of Algorithm 1."""

    def test_exhaustive_on_paper_example(self, paper_cinct, paper_reference, paper_trajectory_string):
        for k in range(paper_trajectory_string.n_trajectories):
            trajectory = paper_trajectory_string.trajectory_edges(k)
            for path in all_substrings(trajectory, 4):
                pattern = paper_trajectory_string.encode_pattern(path)
                assert paper_cinct.suffix_range(pattern) == paper_reference.suffix_range(pattern)

    def test_sampled_on_medium_dataset(self, medium_cinct, medium_reference, medium_trajectory_string, rng):
        checked = 0
        for k in range(0, medium_trajectory_string.n_trajectories, 3):
            trajectory = medium_trajectory_string.trajectory_edges(k)
            for length in (1, 2, 3, 5, 8):
                if len(trajectory) < length:
                    continue
                start = int(rng.integers(0, len(trajectory) - length + 1))
                path = trajectory[start : start + length]
                pattern = medium_trajectory_string.encode_pattern(path)
                expected = medium_reference.suffix_range(pattern)
                assert medium_cinct.suffix_range(pattern) == expected
                assert expected is not None
                checked += 1
        assert checked >= 20

    def test_random_negative_patterns(self, medium_cinct, medium_reference, rng):
        sigma = medium_cinct.sigma
        for _ in range(100):
            pattern = [int(s) for s in rng.integers(2, sigma, size=4)]
            assert medium_cinct.suffix_range(pattern) == medium_reference.suffix_range(pattern)

    def test_count_never_negative(self, medium_cinct, rng):
        sigma = medium_cinct.sigma
        for _ in range(50):
            pattern = [int(s) for s in rng.integers(2, sigma, size=3)]
            assert medium_cinct.count(pattern) >= 0


class TestExtraction:
    def test_matches_reference_extract(self, medium_cinct, medium_reference):
        n = medium_cinct.length
        for j in range(0, n, max(n // 40, 1)):
            for length in (1, 3, 7):
                assert medium_cinct.extract(j, length) == medium_reference.extract(j, length)

    def test_extract_against_suffix_array(self, paper_cinct, paper_bwt):
        """extract(j, l) returns T[SA[j]-l .. SA[j]) (cyclically)."""
        text = paper_bwt.text
        n = paper_bwt.length
        sa = paper_bwt.suffix_array
        for j in range(n):
            for length in (1, 2, 3):
                got = paper_cinct.extract(j, length)
                expected = [int(text[(int(sa[j]) - length + k) % n]) for k in range(length)]
                assert got == expected

    def test_extract_full_text(self, paper_cinct, paper_bwt):
        recovered = paper_cinct.extract_full_text()
        expected = list(np.roll(paper_bwt.text, 1))
        assert recovered == expected

    def test_zero_length(self, medium_cinct):
        assert medium_cinct.extract(0, 0) == []

    def test_extract_bounds(self, medium_cinct):
        with pytest.raises(QueryError):
            medium_cinct.extract(-1, 2)
        with pytest.raises(QueryError):
            medium_cinct.extract(medium_cinct.length, 2)
        with pytest.raises(QueryError):
            medium_cinct.extract(0, -1)


class TestLocate:
    def test_locate_requires_sampling(self, medium_cinct):
        with pytest.raises(QueryError):
            medium_cinct.locate(0)

    def test_locate_returns_suffix_array_values(self, medium_bwt):
        index = CiNCT(medium_bwt, block_size=31, sa_sample_rate=8)
        sa = medium_bwt.suffix_array
        for j in range(0, medium_bwt.length, max(medium_bwt.length // 60, 1)):
            assert index.locate(j) == int(sa[j])

    def test_locate_bounds(self, medium_bwt):
        index = CiNCT(medium_bwt, block_size=31, sa_sample_rate=8)
        with pytest.raises(QueryError):
            index.locate(medium_bwt.length)

    def test_sampling_increases_size(self, medium_bwt):
        plain = CiNCT(medium_bwt, block_size=31)
        sampled = CiNCT(medium_bwt, block_size=31, sa_sample_rate=8)
        assert sampled.size_in_bits() > plain.size_in_bits()


class TestConfiguration:
    def test_invalid_backend_rejected(self, paper_bwt):
        with pytest.raises(ConstructionError):
            CiNCT(paper_bwt, bitvector_backend="lz77")  # type: ignore[arg-type]

    def test_invalid_sample_rate_rejected(self, paper_bwt):
        with pytest.raises(ConstructionError):
            CiNCT(paper_bwt, sa_sample_rate=0)

    @pytest.mark.parametrize("block_size", [15, 31, 63])
    def test_block_sizes_all_correct(self, medium_bwt, medium_reference, medium_trajectory_string, block_size):
        index = CiNCT(medium_bwt, block_size=block_size)
        trajectory = medium_trajectory_string.trajectory_edges(0)
        pattern = medium_trajectory_string.encode_pattern(trajectory[:4])
        assert index.suffix_range(pattern) == medium_reference.suffix_range(pattern)

    def test_plain_backend_correct(self, medium_bwt, medium_reference, medium_trajectory_string):
        index = CiNCT(medium_bwt, bitvector_backend="plain")
        trajectory = medium_trajectory_string.trajectory_edges(1)
        pattern = medium_trajectory_string.encode_pattern(trajectory[:3])
        assert index.suffix_range(pattern) == medium_reference.suffix_range(pattern)

    def test_random_labelling_still_correct(self, medium_bwt, medium_reference, medium_trajectory_string):
        """Any valid RML yields correct answers; only size/speed change."""
        index = CiNCT(
            medium_bwt,
            labeling_strategy="random",
            rng=np.random.default_rng(5),
        )
        for k in (0, 1, 2):
            trajectory = medium_trajectory_string.trajectory_edges(k)
            pattern = medium_trajectory_string.encode_pattern(trajectory[:3])
            assert index.suffix_range(pattern) == medium_reference.suffix_range(pattern)

    def test_empty_pattern_rejected(self, medium_cinct):
        with pytest.raises(QueryError):
            medium_cinct.suffix_range([])

    def test_out_of_alphabet_pattern_rejected(self, medium_cinct):
        with pytest.raises(QueryError):
            medium_cinct.suffix_range([medium_cinct.sigma + 5])

    def test_from_trajectories_classmethod(self):
        index, ts = CiNCT.from_trajectories([["a", "b", "c"], ["b", "c", "d"]], block_size=15)
        assert index.count(ts.encode_pattern(["b", "c"])) == 2
        assert index.count(ts.encode_pattern(["c", "b"])) == 0

    def test_construction_breakdown_recorded(self, medium_bwt):
        index = CiNCT(medium_bwt)
        breakdown = index.construction
        assert breakdown.et_graph_seconds >= 0
        assert breakdown.labeling_seconds >= 0
        assert breakdown.wavelet_tree_seconds > 0
        assert breakdown.total_seconds >= breakdown.wavelet_tree_seconds


class TestSizeAccounting:
    def test_et_graph_inclusion(self, medium_cinct):
        with_graph = medium_cinct.size_in_bits(include_et_graph=True)
        without_graph = medium_cinct.size_in_bits(include_et_graph=False)
        assert with_graph > without_graph > 0

    def test_bits_per_symbol(self, medium_cinct):
        assert medium_cinct.bits_per_symbol() == pytest.approx(
            medium_cinct.size_in_bits() / medium_cinct.length
        )

    def test_labelled_bwt_property_is_copy(self, medium_cinct):
        labelled = medium_cinct.labelled_bwt
        labelled[0] = 10**6
        assert medium_cinct.labelled_bwt[0] != 10**6

    def test_smaller_than_icb_huff_on_realistic_data(self, medium_bwt):
        """The headline size claim, at test scale, against the closest baseline."""
        from repro.fmindex import ICBHuffmanFMIndex

        cinct_bits = CiNCT(medium_bwt, block_size=63).size_in_bits(include_et_graph=False)
        icb_bits = ICBHuffmanFMIndex(medium_bwt, block_size=63).size_in_bits()
        assert cinct_bits < icb_bits


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=12),
        min_size=2,
        max_size=8,
    ),
    st.integers(min_value=0, max_value=1000),
)
def test_cinct_equals_reference_on_arbitrary_trajectories(raw_trajectories, pattern_seed):
    """Property: for arbitrary symbolic trajectories, CiNCT's suffix ranges,
    counts and extractions match the uncompressed reference index."""
    trajectories = [[f"e{v}" for v in t] for t in raw_trajectories]
    ts = build_trajectory_string(trajectories)
    bwt = burrows_wheeler_transform(ts.text, sigma=ts.sigma)
    cinct = CiNCT(bwt, block_size=15)
    reference = UncompressedFMIndex(bwt)
    rng = np.random.default_rng(pattern_seed)
    # positive patterns: windows of the data
    for k in range(min(3, ts.n_trajectories)):
        trajectory = ts.trajectory_edges(k)
        length = min(len(trajectory), 1 + int(rng.integers(0, 3)))
        start = int(rng.integers(0, len(trajectory) - length + 1))
        pattern = ts.encode_pattern(trajectory[start : start + length])
        assert cinct.suffix_range(pattern) == reference.suffix_range(pattern)
    # negative/random patterns
    for _ in range(3):
        pattern = [int(s) for s in rng.integers(2, ts.sigma, size=2)]
        assert cinct.suffix_range(pattern) == reference.suffix_range(pattern)
    # extraction
    j = int(rng.integers(0, ts.length))
    assert cinct.extract(j, 3) == reference.extract(j, 3)
