"""Tests for the timestamp compression companions (Section VII composition)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConstructionError, QueryError
from repro.queries import (
    BoundedErrorTimestampCodec,
    CompressedTimestampStore,
    DeltaTimestampCodec,
)
from repro.trajectories import Trajectory


def make_trajectory(times, edges=None):
    edges = edges or [f"e{i}" for i in range(len(times))]
    return Trajectory(edges=edges, timestamps=list(times))


class TestDeltaCodec:
    def test_lossless_on_integral_seconds(self):
        codec = DeltaTimestampCodec(resolution=1.0)
        times = [0.0, 5.0, 12.0, 12.0, 40.0]
        encoded = codec.encode(times)
        np.testing.assert_allclose(encoded.decode(), times)

    def test_single_timestamp(self):
        codec = DeltaTimestampCodec()
        encoded = codec.encode([42.0])
        assert encoded.n_samples == 1
        np.testing.assert_allclose(encoded.decode(), [42.0])

    def test_rejects_empty(self):
        with pytest.raises(ConstructionError):
            DeltaTimestampCodec().encode([])

    def test_rejects_decreasing(self):
        with pytest.raises(ConstructionError):
            DeltaTimestampCodec().encode([10.0, 5.0])

    def test_rejects_nonpositive_resolution(self):
        with pytest.raises(ConstructionError):
            DeltaTimestampCodec(resolution=0.0)

    def test_encode_trajectory_requires_timestamps(self):
        codec = DeltaTimestampCodec()
        with pytest.raises(ConstructionError):
            codec.encode_trajectory(Trajectory(edges=["a", "b"]))

    def test_size_smaller_than_raw_doubles(self):
        codec = DeltaTimestampCodec(resolution=1.0)
        times = list(np.cumsum(np.random.default_rng(0).integers(1, 60, size=500)).astype(float))
        encoded = codec.encode(times)
        raw_bits = 64 * len(times)
        assert encoded.size_in_bits() < raw_bits

    @given(
        st.lists(st.integers(min_value=0, max_value=3600), min_size=1, max_size=60),
        st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_bounded_error(self, deltas, resolution):
        times = np.cumsum([0] + deltas).astype(float)
        codec = BoundedErrorTimestampCodec(resolution=resolution)
        encoded = codec.encode(times)
        decoded = encoded.decode()
        assert decoded.shape == times.shape
        # Every reconstructed delta is within half a resolution step.
        original_deltas = np.diff(times)
        decoded_deltas = np.diff(decoded)
        assert np.all(np.abs(decoded_deltas - original_deltas) <= resolution / 2 + 1e-9)
        # The start time is exact.
        assert decoded[0] == pytest.approx(times[0])


class TestBoundedErrorCodec:
    def test_coarser_resolution_is_smaller(self):
        rng = np.random.default_rng(1)
        times = np.cumsum(rng.integers(1, 90, size=300)).astype(float)
        fine = DeltaTimestampCodec(resolution=1.0).encode(times)
        coarse = BoundedErrorTimestampCodec(resolution=30.0).encode(times)
        assert coarse.size_in_bits() < fine.size_in_bits()

    def test_max_error_reported(self):
        codec = BoundedErrorTimestampCodec(resolution=10.0)
        assert codec.max_error() == 5.0


class TestCompressedTimestampStore:
    @pytest.fixture()
    def trajectories(self):
        rng = np.random.default_rng(2)
        out = []
        for _ in range(10):
            n = int(rng.integers(2, 30))
            times = np.cumsum(rng.integers(0, 120, size=n)).astype(float)
            out.append(make_trajectory(times))
        return out

    def test_lossless_store_reconstructs_exactly(self, trajectories):
        store = CompressedTimestampStore(trajectories)
        for trajectory_id, trajectory in enumerate(trajectories):
            np.testing.assert_allclose(store.timestamps(trajectory_id), trajectory.timestamps)
        stats = store.statistics()
        assert stats.max_absolute_error == pytest.approx(0.0)
        assert stats.n_trajectories == len(trajectories)

    def test_lossy_store_trades_error_for_size(self, trajectories):
        lossless = CompressedTimestampStore(trajectories)
        lossy = CompressedTimestampStore(trajectories, codec=BoundedErrorTimestampCodec(60.0))
        assert lossy.size_in_bits() < lossless.size_in_bits()
        assert lossy.statistics().max_absolute_error > 0.0

    def test_timestamp_lookup(self, trajectories):
        store = CompressedTimestampStore(trajectories)
        assert store.timestamp(0, 0) == pytest.approx(trajectories[0].timestamps[0])
        assert store.timestamp(3, 1) == pytest.approx(trajectories[3].timestamps[1])

    def test_out_of_range_lookups(self, trajectories):
        store = CompressedTimestampStore(trajectories)
        with pytest.raises(QueryError):
            store.timestamp(99, 0)
        with pytest.raises(QueryError):
            store.timestamp(0, 999)

    def test_requires_trajectories(self):
        with pytest.raises(ConstructionError):
            CompressedTimestampStore([])

    def test_bits_per_timestamp(self, trajectories):
        stats = CompressedTimestampStore(trajectories).statistics()
        assert stats.bits_per_timestamp > 0
