"""Property tests for the batch query API and the flat-node wavelet refactor.

The contract of every ``*_many`` method is *bit-identical* agreement with its
scalar counterpart: batching is purely an execution strategy.  These tests pin
that contract on randomized inputs across every bitvector backend, every
wavelet structure and every FM-index variant, and additionally pin the wavelet
``rank``/``access`` results against naive reference implementations so the
flat-node refactor cannot drift from the original tuple-keyed tree.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CiNCT
from repro.exceptions import QueryError
from repro.fmindex import FixedBlockFMIndex
from repro.fmindex.variants import available_baselines, build_baseline
from repro.succinct import BitVector, RRRBitVector
from repro.wavelet import (
    BalancedWaveletTree,
    HuffmanWaveletTree,
    WaveletMatrix,
    rrr_bitvector_factory,
)

BITVECTOR_BACKENDS = {
    "plain": lambda bits: BitVector(bits),
    "rrr-15": lambda bits: RRRBitVector(bits, block_size=15),
    "rrr-63": lambda bits: RRRBitVector(bits, block_size=63, sample_rate=4),
}


# --------------------------------------------------------------------- #
# succinct layer
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", sorted(BITVECTOR_BACKENDS))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_rank_many_matches_scalar(backend, data):
    bits = data.draw(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    bv = BITVECTOR_BACKENDS[backend](bits)
    positions = data.draw(
        st.lists(st.integers(0, len(bits)), min_size=0, max_size=50)
    )
    expected1 = [bv.rank1(p) for p in positions]
    expected0 = [bv.rank0(p) for p in positions]
    assert bv.rank1_many(positions).tolist() == expected1
    assert bv.rank0_many(positions).tolist() == expected0


@pytest.mark.parametrize("backend", sorted(BITVECTOR_BACKENDS))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_access_many_matches_scalar(backend, data):
    bits = data.draw(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    bv = BITVECTOR_BACKENDS[backend](bits)
    positions = data.draw(
        st.lists(st.integers(0, len(bits) - 1), min_size=0, max_size=50)
    )
    assert bv.access_many(positions).tolist() == [bv.access(p) for p in positions]
    assert bv.to_list() == [int(b) for b in bits]


@pytest.mark.parametrize("backend", sorted(BITVECTOR_BACKENDS))
def test_rank_many_bounds_checked(backend):
    bv = BITVECTOR_BACKENDS[backend]([1, 0, 1])
    with pytest.raises(QueryError):
        bv.rank1_many([0, 4])
    with pytest.raises(QueryError):
        bv.access_many([-1])


@pytest.mark.parametrize("backend", sorted(BITVECTOR_BACKENDS))
def test_select_directories_on_long_vectors(backend):
    """Select must agree with rank over multiple select-sample buckets."""
    rng = np.random.default_rng(7)
    bits = rng.integers(0, 2, 3000).tolist()
    bv = BITVECTOR_BACKENDS[backend](bits)
    ones = 0
    zeros = 0
    for position, bit in enumerate(bits):
        if bit:
            ones += 1
            if ones % 97 == 0:
                assert bv.select1(ones) == position
        else:
            zeros += 1
            if zeros % 97 == 0:
                assert bv.select0(zeros) == position


# --------------------------------------------------------------------- #
# wavelet layer
# --------------------------------------------------------------------- #
WAVELET_STRUCTURES = {
    "hwt-plain": lambda seq: HuffmanWaveletTree(seq),
    "hwt-rrr": lambda seq: HuffmanWaveletTree(seq, rrr_bitvector_factory(31)),
    "balanced": lambda seq: BalancedWaveletTree(seq),
    "wm": lambda seq: WaveletMatrix(seq),
}


@pytest.mark.parametrize("name", sorted(WAVELET_STRUCTURES))
@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_wavelet_flat_nodes_match_naive(name, data):
    """Regression: the flat-node refactor leaves rank/access unchanged."""
    sequence = data.draw(
        st.lists(st.integers(0, 15), min_size=1, max_size=150)
    )
    structure = WAVELET_STRUCTURES[name](np.asarray(sequence, dtype=np.int64))
    n = len(sequence)
    for i in {0, n // 3, n // 2, n}:
        for symbol in set(sequence[:4]) | {0, 15, 17}:
            assert structure.rank(symbol, i) == sequence[:i].count(symbol)
    for i in {0, n // 2, n - 1}:
        assert structure.access(i) == sequence[i]


@pytest.mark.parametrize("name", sorted(WAVELET_STRUCTURES))
@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_wavelet_many_matches_scalar(name, data):
    sequence = data.draw(
        st.lists(st.integers(0, 15), min_size=1, max_size=150)
    )
    structure = WAVELET_STRUCTURES[name](np.asarray(sequence, dtype=np.int64))
    n = len(sequence)
    rank_positions = data.draw(st.lists(st.integers(0, n), min_size=0, max_size=30))
    symbol = data.draw(st.integers(0, 16))
    expected = [structure.rank(symbol, p) for p in rank_positions]
    assert structure.rank_many(symbol, rank_positions).tolist() == expected
    access_positions = data.draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=30)
    )
    assert structure.access_many(access_positions).tolist() == [
        structure.access(p) for p in access_positions
    ]


# --------------------------------------------------------------------- #
# FM-index layer
# --------------------------------------------------------------------- #
def _workload(bwt_result, rng, n_patterns=25, max_length=8):
    """Random patterns: data windows, absent paths and short single symbols."""
    text = bwt_result.text
    patterns = []
    for _ in range(n_patterns):
        length = int(rng.integers(1, max_length + 1))
        start = int(rng.integers(0, max(text.size - length, 1)))
        window = text[start : start + length]
        if window.size == 0:
            window = text[:1]
        patterns.append([int(s) for s in window[::-1]])
    # Patterns that likely do not occur at all.
    patterns.append([2] * 3)
    patterns.append([int(bwt_result.sigma - 1), 2])
    return patterns


@pytest.fixture(scope="module")
def fm_variants(medium_bwt):
    variants = [build_baseline(name, medium_bwt, block_size=31) for name in available_baselines()]
    variants.append(FixedBlockFMIndex(medium_bwt, block_length=256, rrr_block_size=31))
    return variants


def test_fm_batch_matches_scalar(fm_variants, medium_bwt, rng):
    patterns = _workload(medium_bwt, rng)
    for variant in fm_variants:
        expected_ranges = [variant.suffix_range(p) for p in patterns]
        assert variant.suffix_range_many(patterns) == expected_ranges, variant.name
        assert variant.count_many(patterns) == [variant.count(p) for p in patterns]


def test_fm_extract_many_matches_scalar(fm_variants, rng):
    for variant in fm_variants:
        rows = rng.integers(0, variant.length, 20).tolist()
        for length in (0, 1, 5):
            assert variant.extract_many(rows, length) == [
                variant.extract(row, length) for row in rows
            ], variant.name


def test_fm_rank_bwt_many_matches_scalar(fm_variants, medium_bwt, rng):
    positions = rng.integers(0, medium_bwt.length + 1, 40)
    symbols = rng.integers(0, medium_bwt.sigma, 6)
    for variant in fm_variants:
        for symbol in symbols:
            expected = [variant.rank_bwt(int(symbol), int(p)) for p in positions]
            assert variant.rank_bwt_many(int(symbol), positions).tolist() == expected
        rows = rng.integers(0, medium_bwt.length, 40)
        assert variant.access_bwt_many(rows).tolist() == [
            variant.access_bwt(int(j)) for j in rows
        ]


# --------------------------------------------------------------------- #
# CiNCT
# --------------------------------------------------------------------- #
def test_cinct_batch_matches_scalar(medium_cinct, medium_bwt, rng):
    patterns = _workload(medium_bwt, rng, n_patterns=40)
    expected = [medium_cinct.suffix_range(p) for p in patterns]
    assert medium_cinct.suffix_range_many(patterns) == expected
    assert medium_cinct.count_many(patterns) == [medium_cinct.count(p) for p in patterns]


def test_cinct_extract_many_matches_scalar(medium_cinct, rng):
    rows = rng.integers(0, medium_cinct.length, 25).tolist()
    for length in (0, 1, 6):
        assert medium_cinct.extract_many(rows, length) == [
            medium_cinct.extract(row, length) for row in rows
        ]


def test_cinct_locate_many_matches_scalar(medium_bwt, rng):
    index = CiNCT(medium_bwt, block_size=31, sa_sample_rate=4)
    rows = rng.integers(0, index.length, 30).tolist()
    assert index.locate_many(rows) == [index.locate(row) for row in rows]
    assert index.locate_many([]) == []


def test_cinct_locate_many_requires_sampling(medium_cinct):
    with pytest.raises(QueryError):
        medium_cinct.locate_many([0])


def test_batch_empty_and_validation(medium_cinct, fm_variants):
    assert medium_cinct.suffix_range_many([]) == []
    assert medium_cinct.count_many([]) == []
    for variant in fm_variants[:1]:
        assert variant.suffix_range_many([]) == []
        with pytest.raises(QueryError):
            variant.suffix_range_many([[0, 1], []])
    with pytest.raises(QueryError):
        medium_cinct.suffix_range_many([[medium_cinct.sigma + 5]])


# --------------------------------------------------------------------- #
# strict-path batch surface
# --------------------------------------------------------------------- #
def test_count_paths_matches_count_path(medium_dataset):
    from repro.queries import StrictPathIndex

    index = StrictPathIndex(medium_dataset, block_size=31, sa_sample_rate=8)
    paths = [list(t.edges[:3]) for t in medium_dataset.trajectories[:10] if len(t.edges) >= 3]
    assert index.count_paths(paths) == [index.count_path(p) for p in paths]
