"""Engine contract suite: every registered backend answers identically.

The engine facade promises that ``count`` / ``contains`` / ``locate`` /
``extract`` / ``strict_path`` return the same answers on every backend (CiNCT
is the reference), that the batch paths are bit-identical to the scalar ones,
and that the typed ``run``/``run_many`` layer round-trips query objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ContainsQuery,
    ContainsResult,
    CountQuery,
    CountResult,
    EngineConfig,
    ExtractQuery,
    ExtractResult,
    LocateQuery,
    StrictPathQuery,
    TrajectoryEngine,
    available_backends,
    backend_spec,
    build_engine,
    sample_paths,
)
from repro.network import grid_network
from repro.trajectories import TrajectoryDataset, straight_biased_walks

BACKENDS = available_backends()
LOCATE_BACKENDS = [name for name in BACKENDS if backend_spec(name).supports_locate]
REFERENCE = "cinct"
SHARD_COUNTS = (1, 3)


@pytest.fixture(scope="module")
def fleet_dataset():
    """A timestamped fleet on a grid network, shared by every backend."""
    network = grid_network(5, 5)
    rng = np.random.default_rng(7)
    trajectories = straight_biased_walks(
        network, n_trajectories=25, min_length=5, max_length=14, rng=rng
    )
    for trajectory in trajectories:
        departure = float(rng.uniform(0, 600))
        dwell = rng.uniform(5, 20, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return TrajectoryDataset(name="contract-fleet", trajectories=trajectories, network=network)


@pytest.fixture(scope="module")
def engines(fleet_dataset):
    """One engine per registered backend over the shared fleet."""
    return {
        name: TrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(backend=name, block_size=31, sa_sample_rate=8),
        )
        for name in BACKENDS
    }


@pytest.fixture(scope="module")
def probe_paths(fleet_dataset):
    """Sampled real sub-paths plus their reversals (mostly non-occurring)."""
    paths = []
    for length in (2, 3, 5):
        paths.extend(sample_paths(fleet_dataset, length, 5, seed=length))
    paths.extend([list(reversed(path)) for path in paths[:5]])
    return paths


@pytest.mark.parametrize("backend", BACKENDS)
class TestSpatialContract:
    def test_count_matches_reference(self, engines, probe_paths, backend):
        reference = engines[REFERENCE]
        engine = engines[backend]
        for path in probe_paths:
            assert engine.count(path) == reference.count(path), path

    def test_contains_matches_reference(self, engines, probe_paths, backend):
        reference = engines[REFERENCE]
        engine = engines[backend]
        for path in probe_paths:
            assert engine.contains(path) == reference.contains(path), path

    def test_count_many_equals_scalar(self, engines, probe_paths, backend):
        engine = engines[backend]
        assert engine.count_many(probe_paths) == [engine.count(p) for p in probe_paths]

    def test_locate_matches_reference(self, engines, probe_paths, backend):
        reference = engines[REFERENCE]
        engine = engines[backend]
        for path in probe_paths:
            assert engine.locate(path) == reference.locate(path), path

    def test_locate_count_consistency(self, engines, probe_paths, backend):
        # Every occurrence that does not straddle a trajectory boundary is a
        # resolved match, so locate can never return more than count.
        engine = engines[backend]
        for path in probe_paths:
            assert len(engine.locate(path)) <= engine.count(path)

    def test_extract_matches_reference(self, engines, backend):
        if not backend_spec(backend).supports_extract:
            pytest.skip(f"{backend} has no suffix structure to extract from")
        reference = engines[REFERENCE]
        engine = engines[backend]
        rows = [0, 1, engine.length // 2, engine.length - 1]
        for row in rows:
            assert engine.extract(row, 4) == reference.extract(row, 4)

    def test_strict_path_matches_reference(self, engines, probe_paths, backend):
        reference = engines[REFERENCE]
        engine = engines[backend]
        for path in probe_paths[:8]:
            full = engine.strict_path(path)
            assert full == reference.strict_path(path)
            if not full:
                continue
            window = (full[0].start_time, full[0].end_time)
            narrowed = engine.strict_path(path, window[0], window[1])
            assert narrowed == reference.strict_path(path, window[0], window[1])
            assert all(
                match.start_time >= window[0] and match.end_time <= window[1]
                for match in narrowed
            )


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_many_matches_scalar_run(engines, probe_paths, backend):
    engine = engines[backend]
    queries = [CountQuery(probe_paths[0]), ContainsQuery(probe_paths[1])]
    queries += [LocateQuery(probe_paths[2]), StrictPathQuery(probe_paths[3])]
    if backend_spec(backend).supports_extract:
        queries += [ExtractQuery(row=0, length=3), ExtractQuery(row=1, length=3)]
    batched = engine.run_many(queries)
    assert batched == [engine.run(query) for query in queries]


def test_run_returns_typed_results(engines):
    engine = engines[REFERENCE]
    path = engine.backend.trajectory_string.trajectory_edges(0)[:2]
    count = engine.run(CountQuery(path))
    assert isinstance(count, CountResult) and count.count >= 1
    found = engine.run(ContainsQuery(path))
    assert isinstance(found, ContainsResult) and found.found
    extracted = engine.run(ExtractQuery(row=0, length=3))
    assert isinstance(extracted, ExtractResult)
    assert len(extracted.symbols) == 3 and len(extracted.edges) == 3


def test_locate_resolves_real_traversals(engines, fleet_dataset):
    # Each match must point at an actual sub-path of the named trajectory.
    engine = engines[REFERENCE]
    path = list(fleet_dataset.trajectories[3].edges[1:4])
    matches = engine.locate(path)
    assert matches
    for match in matches:
        edges = fleet_dataset.trajectories[match.trajectory_id].edges
        assert list(edges[match.start_edge_index : match.end_edge_index + 1]) == path


@pytest.fixture(scope="module")
def sharded_engines(fleet_dataset):
    """Sharded fleets per (locate-capable backend, shard count)."""
    return {
        (name, num_shards): build_engine(
            fleet_dataset,
            EngineConfig(
                backend=name, block_size=31, sa_sample_rate=8, num_shards=num_shards
            ),
        )
        for name in LOCATE_BACKENDS
        for num_shards in SHARD_COUNTS
    }


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", LOCATE_BACKENDS)
class TestShardedContract:
    """A sharded fleet answers bit-identically to the unsharded engines."""

    def test_scalar_queries_match_unsharded(
        self, engines, sharded_engines, probe_paths, backend, num_shards
    ):
        reference = engines[backend]
        sharded = sharded_engines[(backend, num_shards)]
        for path in probe_paths:
            assert sharded.count(path) == reference.count(path), path
            assert sharded.contains(path) == reference.contains(path), path
            assert sharded.locate(path) == reference.locate(path), path
        for path in probe_paths[:6]:
            assert sharded.strict_path(path) == reference.strict_path(path), path

    def test_run_many_matches_unsharded(
        self, engines, sharded_engines, probe_paths, backend, num_shards
    ):
        reference = engines[backend]
        sharded = sharded_engines[(backend, num_shards)]
        queries = [
            CountQuery(probe_paths[0]),
            ContainsQuery(probe_paths[1]),
            LocateQuery(probe_paths[2]),
            StrictPathQuery(probe_paths[3]),
            CountQuery(probe_paths[0]),  # duplicate
            StrictPathQuery(probe_paths[2], 0.0, 1e9),
        ]
        assert sharded.run_many(queries) == reference.run_many(queries)


def test_temporal_index_built_for_timestamped_fleet(engines):
    engine = engines[REFERENCE]
    assert engine.temporal is not None
    assert engine.temporal.n_trajectories == engine.n_trajectories
    assert engine.size_in_bits() > engine.backend.size_in_bits()
