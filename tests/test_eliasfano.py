"""Tests for the Elias–Fano sparse bit vector."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConstructionError, QueryError
from repro.succinct import (
    BitVector,
    EliasFanoBitVector,
    elias_fano_from_bits,
    predicted_elias_fano_bits,
)


def reference_bits(length: int, ones: list[int]) -> list[int]:
    bits = [0] * length
    for position in ones:
        bits[position] = 1
    return bits


class TestConstruction:
    def test_empty_vector(self):
        ef = EliasFanoBitVector(10, [])
        assert len(ef) == 10
        assert ef.n_ones == 0
        assert ef.rank1(10) == 0

    def test_zero_length(self):
        ef = EliasFanoBitVector(0, [])
        assert len(ef) == 0

    def test_rejects_out_of_range_positions(self):
        with pytest.raises(ConstructionError):
            EliasFanoBitVector(5, [5])
        with pytest.raises(ConstructionError):
            EliasFanoBitVector(5, [-1])

    def test_rejects_unsorted_positions(self):
        with pytest.raises(ConstructionError):
            EliasFanoBitVector(10, [4, 2])

    def test_rejects_duplicates(self):
        with pytest.raises(ConstructionError):
            EliasFanoBitVector(10, [2, 2])

    def test_rejects_negative_length(self):
        with pytest.raises(ConstructionError):
            EliasFanoBitVector(-1, [])

    def test_from_bits_roundtrip(self):
        bits = [0, 1, 0, 0, 1, 1, 0, 0, 0, 1]
        ef = elias_fano_from_bits(bits)
        assert ef.to_list() == bits


class TestRankSelectAccess:
    @pytest.fixture(scope="class")
    def sparse(self):
        ones = [3, 17, 64, 90, 91, 500, 999]
        return EliasFanoBitVector(1000, ones), ones

    def test_access(self, sparse):
        ef, ones = sparse
        one_set = set(ones)
        for position in range(0, 1000, 7):
            assert ef.access(position) == int(position in one_set)
        for position in ones:
            assert ef[position] == 1

    def test_rank1_everywhere(self, sparse):
        ef, ones = sparse
        for i in range(0, 1001, 13):
            assert ef.rank1(i) == sum(1 for p in ones if p < i)
        assert ef.rank1(1000) == len(ones)

    def test_rank0_complements_rank1(self, sparse):
        ef, _ = sparse
        for i in range(0, 1001, 17):
            assert ef.rank0(i) + ef.rank1(i) == i

    def test_select1_inverts_rank1(self, sparse):
        ef, ones = sparse
        for k, position in enumerate(ones, start=1):
            assert ef.select1(k) == position
            assert ef.rank1(position) == k - 1

    def test_select0(self, sparse):
        ef, ones = sparse
        reference = reference_bits(1000, ones)
        zero_positions = [i for i, bit in enumerate(reference) if bit == 0]
        for k in range(1, len(zero_positions) + 1, 97):
            assert ef.select0(k) == zero_positions[k - 1]

    def test_out_of_range_queries_raise(self, sparse):
        ef, ones = sparse
        with pytest.raises(QueryError):
            ef.access(1000)
        with pytest.raises(QueryError):
            ef.rank1(1001)
        with pytest.raises(QueryError):
            ef.select1(0)
        with pytest.raises(QueryError):
            ef.select1(len(ones) + 1)
        with pytest.raises(QueryError):
            ef.select0(1000 - len(ones) + 1)


class TestSizeAccounting:
    def test_sparse_vector_is_smaller_than_plain(self):
        length = 100_000
        ones = list(range(0, length, 1000))
        ef = EliasFanoBitVector(length, ones)
        plain = BitVector(reference_bits(length, ones))
        assert ef.size_in_bits() < plain.size_in_bits()
        assert ef.compression_ratio_vs_plain() > 10

    def test_size_close_to_classic_bound(self):
        length = 50_000
        rng = np.random.default_rng(3)
        ones = sorted(rng.choice(length, size=200, replace=False).tolist())
        ef = EliasFanoBitVector(length, ones)
        predicted = predicted_elias_fano_bits(length, len(ones))
        assert ef.size_in_bits() <= 2 * predicted

    def test_predicted_bits_empty(self):
        assert predicted_elias_fano_bits(1000, 0) == 3 * 64


class TestPropertyBased:
    @given(
        length=st.integers(min_value=1, max_value=400),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_plain_bitvector(self, length, data):
        n_ones = data.draw(st.integers(min_value=0, max_value=length))
        ones = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=length - 1),
                    min_size=n_ones,
                    max_size=n_ones,
                    unique=True,
                )
            )
        )
        ef = EliasFanoBitVector(length, ones)
        reference = BitVector(reference_bits(length, ones))
        for i in range(length + 1):
            assert ef.rank1(i) == reference.rank1(i)
        for i in range(length):
            assert ef.access(i) == reference.access(i)
        for k in range(1, len(ones) + 1):
            assert ef.select1(k) == reference.select1(k)

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_to_list_roundtrip(self, bits):
        bits = [int(b) for b in bits]
        ef = elias_fano_from_bits(bits)
        assert ef.to_list() == bits
        assert ef.n_ones == sum(bits)
        assert list(ef) == bits
