"""Sharded fleet layer: routing, bit-identical fan-out/merge, shard caches.

The contract under test: a :class:`ShardedTrajectoryEngine` over any
locate-capable backend answers every query — scalar and ``run_many``, pre and
post growth, pre and post reload — bit-identically to an unsharded
:class:`TrajectoryEngine` built over the same fleet in the same order, while
growth on one shard leaves the other shards' cached plans untouched.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import (
    ContainsQuery,
    CountQuery,
    EngineConfig,
    ExtractQuery,
    LocateQuery,
    ShardRouter,
    ShardedTrajectoryEngine,
    StrictPathQuery,
    TrajectoryEngine,
    available_backends,
    backend_spec,
    build_engine,
    sample_paths,
)
from repro.exceptions import ConstructionError
from repro.io import load_index
from repro.network import grid_network
from repro.trajectories import TrajectoryDataset, straight_biased_walks

LOCATE_BACKENDS = [
    name for name in available_backends() if backend_spec(name).supports_locate
]
SHARD_COUNTS = (1, 3)


@pytest.fixture(scope="module")
def fleet_dataset():
    """A timestamped fleet on a grid network, shared by every backend."""
    network = grid_network(5, 5)
    rng = np.random.default_rng(41)
    trajectories = straight_biased_walks(
        network, n_trajectories=22, min_length=5, max_length=12, rng=rng
    )
    for trajectory in trajectories:
        departure = float(rng.uniform(0, 400))
        dwell = rng.uniform(4, 16, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return TrajectoryDataset(name="shard-fleet", trajectories=trajectories, network=network)


@pytest.fixture(scope="module")
def growth_batch(fleet_dataset):
    network = fleet_dataset.network
    rng = np.random.default_rng(43)
    trajectories = straight_biased_walks(
        network, n_trajectories=5, min_length=5, max_length=9, rng=rng
    )
    for trajectory in trajectories:
        departure = float(rng.uniform(500, 800))
        dwell = rng.uniform(4, 16, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return trajectories


def _config(backend, num_shards, **kwargs):
    return EngineConfig(
        backend=backend,
        block_size=31,
        sa_sample_rate=8,
        num_shards=num_shards,
        **kwargs,
    )


def assert_query_parity(sharded, unsharded, fleet_dataset, seed=5):
    """Scalar and batched answers must be bit-identical between the engines."""
    paths = sample_paths(fleet_dataset, 2, 4, seed=seed)
    paths += sample_paths(fleet_dataset, 4, 4, seed=seed + 1)
    paths += [list(reversed(path)) for path in paths[:3]]  # mostly non-occurring
    for path in paths:
        assert sharded.count(path) == unsharded.count(path), path
        assert sharded.contains(path) == unsharded.contains(path), path
        assert sharded.locate(path) == unsharded.locate(path), path
        assert sharded.strict_path(path) == unsharded.strict_path(path), path
    assert sharded.count_many(paths) == unsharded.count_many(paths)
    # A windowed strict-path query anchored on a real traversal.
    for path in paths:
        full = unsharded.strict_path(path)
        if full:
            window = (full[0].start_time, full[0].end_time)
            assert sharded.strict_path(path, *window) == unsharded.strict_path(
                path, *window
            )
            break
    queries = [
        CountQuery(paths[0]),
        StrictPathQuery(paths[1]),
        ContainsQuery(paths[0]),
        LocateQuery(paths[2]),
        CountQuery(paths[0]),
        StrictPathQuery(paths[3], 0.0, 1e9),
        ContainsQuery(list(reversed(paths[4]))),
    ]
    assert sharded.run_many(queries) == unsharded.run_many(queries)


@pytest.mark.parametrize("shard_executor", ["threads", "processes"])
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", LOCATE_BACKENDS)
class TestShardParity:
    @staticmethod
    def _sharded(fleet_dataset, backend, num_shards, shard_executor):
        if num_shards == 1 and shard_executor != "threads":
            pytest.skip("unsharded engines have no fan-out executor")
        return build_engine(
            fleet_dataset, _config(backend, num_shards, shard_executor=shard_executor)
        )

    def test_scalar_and_batched_queries(
        self, fleet_dataset, backend, num_shards, shard_executor
    ):
        sharded = self._sharded(fleet_dataset, backend, num_shards, shard_executor)
        unsharded = TrajectoryEngine.build(fleet_dataset, _config(backend, 1))
        if num_shards == 1:
            assert isinstance(sharded, TrajectoryEngine)
        else:
            assert isinstance(sharded, ShardedTrajectoryEngine)
            assert sharded.num_shards == num_shards
            assert sharded.n_trajectories == unsharded.n_trajectories
            assert sharded.executor_info()["mode"] == shard_executor
        assert_query_parity(sharded, unsharded, fleet_dataset)
        if num_shards > 1:
            sharded.close()

    def test_parity_survives_reload(
        self, fleet_dataset, backend, num_shards, shard_executor, tmp_path
    ):
        sharded = self._sharded(fleet_dataset, backend, num_shards, shard_executor)
        unsharded = TrajectoryEngine.build(fleet_dataset, _config(backend, 1))
        sharded.save(tmp_path / "fleet")
        reloaded = load_index(tmp_path / "fleet")
        assert type(reloaded) is type(sharded)
        assert reloaded.config == sharded.config
        assert_query_parity(reloaded, unsharded, fleet_dataset, seed=7)
        if num_shards > 1:
            sharded.close()
            reloaded.close()

    def test_parity_survives_growth_and_reload(
        self, fleet_dataset, growth_batch, backend, num_shards, shard_executor, tmp_path
    ):
        if not backend_spec(backend).supports_growth:
            pytest.skip(f"{backend} cannot grow")
        sharded = self._sharded(fleet_dataset, backend, num_shards, shard_executor)
        unsharded = TrajectoryEngine.build(fleet_dataset, _config(backend, 1))
        sharded.add_batch(growth_batch)
        unsharded.add_batch(growth_batch)
        assert sharded.n_trajectories == unsharded.n_trajectories
        assert_query_parity(sharded, unsharded, fleet_dataset, seed=9)
        # Matches on grown trajectories resolve to the same global ids.
        probe = list(growth_batch[0].edges[:3])
        assert sharded.locate(probe) == unsharded.locate(probe)
        sharded.save(tmp_path / "grown")
        reloaded = load_index(tmp_path / "grown")
        assert_query_parity(reloaded, unsharded, fleet_dataset, seed=11)
        reloaded.add_batch(growth_batch[:2])
        unsharded.add_batch(growth_batch[:2])
        assert_query_parity(reloaded, unsharded, fleet_dataset, seed=13)
        if num_shards > 1:
            sharded.close()
            reloaded.close()


@pytest.mark.parametrize("backend", ["cinct", "icb-huff"])
def test_extract_row_space_concatenates_shards(fleet_dataset, backend):
    sharded = ShardedTrajectoryEngine.build(fleet_dataset, _config(backend, 3))
    assert sharded.length == sum(shard.length for shard in sharded.shards)
    offset = 0
    for shard in sharded.shards:
        for local_row in (0, shard.length // 2, shard.length - 1):
            assert sharded.extract(offset + local_row, 3) == shard.extract(local_row, 3)
        offset += shard.length
    # run_many routes each extraction to exactly one shard.
    rows = [0, sharded.length // 2, sharded.length - 1]
    batched = sharded.run_many([ExtractQuery(row=row, length=4) for row in rows])
    assert [list(result.edges) for result in batched] == [
        sharded.extract(row, 4) for row in rows
    ]
    # Returned symbols are globalised: decoding them against the *fleet*
    # alphabet must agree with the result's edges (shard-local ids would
    # silently decode to different edges).
    for result in batched:
        for symbol, edge in zip(result.symbols, result.edges):
            if sharded.alphabet.is_edge_symbol(symbol):
                assert sharded.alphabet.decode(symbol) == edge


class TestShardRouter:
    def test_round_robin_bijection(self):
        router = ShardRouter(4)
        for global_id in range(100):
            shard = router.shard_of(global_id)
            local = router.local_of(global_id)
            assert shard == global_id % 4
            assert router.global_of(shard, local) == global_id

    def test_split_is_stable_across_batches(self):
        router = ShardRouter(3)
        one_shot = router.split(list(range(10)), first_global_id=0)
        streamed = [list() for _ in range(3)]
        for start, stop in ((0, 4), (4, 7), (7, 10)):
            chunk = list(range(start, stop))
            for shard, items in enumerate(router.split(chunk, first_global_id=start)):
                streamed[shard].extend(items)
        assert streamed == one_shot

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConstructionError, match="num_shards"):
            ShardRouter(0)


class TestShardScopedInvalidation:
    def test_growth_on_one_shard_keeps_other_caches(self, fleet_dataset, growth_batch):
        engine = ShardedTrajectoryEngine.build(
            fleet_dataset, _config("partitioned-cinct", 3)
        )
        paths = sample_paths(fleet_dataset, 3, 12, seed=21)
        engine.count_many(paths)  # fill every shard's cache
        warm_sizes = [shard.cache_stats()["size"] for shard in engine.shards]
        assert all(size > 0 for size in warm_sizes)

        # One new trajectory routes to exactly one shard...
        target = engine.router.shard_of(engine.n_trajectories)
        epochs_before = engine.epochs
        engine.add_batch([growth_batch[0]])
        assert engine.epochs == tuple(
            epoch + (1 if shard == target else 0)
            for shard, epoch in enumerate(epochs_before)
        )
        # ...so only that shard's cache is invalidated.
        for shard_id, shard in enumerate(engine.shards):
            stats = shard.cache_stats()
            if shard_id == target:
                assert stats["invalidations"] == 1
                assert stats["size"] == 0
            else:
                assert stats["invalidations"] == 0
                assert stats["size"] == warm_sizes[shard_id]

        # The replay is answered from the untouched shards' warm entries
        # (every plan they are asked again is a hit) and stays correct.
        hits_before = [shard.cache_stats()["hits"] for shard in engine.shards]
        misses_before = [shard.cache_stats()["misses"] for shard in engine.shards]
        fresh = TrajectoryEngine.build(
            list(fleet_dataset.trajectories) + [growth_batch[0]],
            _config("partitioned-cinct", 1, cache_size=0),
        )
        assert engine.count_many(paths) == fresh.count_many(paths)
        for shard_id, shard in enumerate(engine.shards):
            stats = shard.cache_stats()
            if shard_id != target:
                assert stats["misses"] == misses_before[shard_id]
                assert stats["hits"] > hits_before[shard_id]

    def test_fleet_cache_stats_aggregate(self, fleet_dataset):
        engine = ShardedTrajectoryEngine.build(fleet_dataset, _config("cinct", 3))
        paths = sample_paths(fleet_dataset, 3, 6, seed=23)
        engine.count_many(paths)
        engine.count_many(paths)
        merged = engine.cache_stats()
        per_shard = engine.shard_cache_stats()
        for key in ("hits", "misses", "size", "capacity"):
            assert merged[key] == sum(stats[key] for stats in per_shard)
        assert merged["enabled"]
        engine.disable_cache()
        assert not engine.cache_stats()["enabled"]
        assert engine.cache_stats()["size"] == 0


class TestShardedPersistenceLayout:
    def test_manifest_and_shard_subdirectories(self, fleet_dataset, tmp_path):
        engine = ShardedTrajectoryEngine.build(fleet_dataset, _config("cinct", 3))
        engine.save(tmp_path / "fleet")
        document = json.loads(
            (tmp_path / "fleet" / "engine.json").read_text(encoding="utf-8")
        )
        assert document["format_version"] == 5
        assert document["num_shards"] == 3
        assert document["shards"] == ["shard_00", "shard_01", "shard_02"]
        for name in document["shards"]:
            shard_doc = json.loads(
                (tmp_path / "fleet" / name / "engine.json").read_text(encoding="utf-8")
            )
            assert shard_doc["config"]["num_shards"] == 1
            # Every shard directory is itself a loadable single engine.
            assert isinstance(load_index(tmp_path / "fleet" / name), TrajectoryEngine)

    def test_empty_shards_round_trip_as_null_entries(self, tmp_path):
        # Two trajectories over three shards: shard 2 is never populated.
        engine = ShardedTrajectoryEngine.build(
            [["a", "b", "c"], ["b", "c", "d"]], _config("cinct", 3)
        )
        assert engine.shards[2] is None
        assert engine.count(["b", "c"]) == 2
        engine.save(tmp_path / "sparse")
        document = json.loads(
            (tmp_path / "sparse" / "engine.json").read_text(encoding="utf-8")
        )
        assert document["shards"][2] is None
        reloaded = load_index(tmp_path / "sparse")
        assert reloaded.shards[2] is None
        assert reloaded.count(["b", "c"]) == 2

    def test_sharded_load_classmethod_rejects_unsharded(self, fleet_dataset, tmp_path):
        TrajectoryEngine.build(fleet_dataset, _config("cinct", 1)).save(tmp_path / "one")
        with pytest.raises(ConstructionError, match="unsharded"):
            ShardedTrajectoryEngine.load(tmp_path / "one")
        sharded = ShardedTrajectoryEngine.build(fleet_dataset, _config("cinct", 2))
        sharded.save(tmp_path / "two")
        assert isinstance(
            ShardedTrajectoryEngine.load(tmp_path / "two"), ShardedTrajectoryEngine
        )

    def test_corrupt_manifest_rejected(self, fleet_dataset, tmp_path):
        engine = ShardedTrajectoryEngine.build(fleet_dataset, _config("cinct", 2))
        engine.save(tmp_path / "fleet")
        document_path = tmp_path / "fleet" / "engine.json"
        document = json.loads(document_path.read_text(encoding="utf-8"))
        document["num_shards"] = 5
        document_path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ConstructionError, match="shard manifest"):
            load_index(tmp_path / "fleet")


class TestShardedConstruction:
    def test_unsharded_build_rejects_multi_shard_config(self, fleet_dataset):
        # A monolithic engine must not silently claim a fleet layout.
        with pytest.raises(ConstructionError, match="build_engine"):
            TrajectoryEngine.build(fleet_dataset, _config("cinct", 4))

    def test_config_names_must_match_shards(self, fleet_dataset):
        inner = TrajectoryEngine.build(fleet_dataset, _config("cinct", 1))
        with pytest.raises(ConstructionError, match="shards"):
            ShardedTrajectoryEngine([inner], _config("cinct", 2), inner.alphabet)

    def test_shard_workers_one_forces_sequential_fanout(self, fleet_dataset):
        engine = ShardedTrajectoryEngine.build(
            fleet_dataset, _config("cinct", 3, shard_workers=1)
        )
        unsharded = TrajectoryEngine.build(fleet_dataset, _config("cinct", 1))
        assert_query_parity(engine, unsharded, fleet_dataset, seed=25)
        assert engine._pool is None  # never spun up

    def test_close_and_context_manager(self, fleet_dataset):
        with ShardedTrajectoryEngine.build(fleet_dataset, _config("cinct", 2)) as engine:
            paths = sample_paths(fleet_dataset, 3, 4, seed=27)
            engine.count_many(paths)
        assert engine._pool is None
        # Still queryable after close (fan-out recreates the pool on demand).
        assert engine.count_many(paths) == engine.count_many(paths)
        engine.close()

    def test_windowed_strict_path_on_partially_timestamped_fleet(self):
        # Trajectory 1 (and with it a whole shard) carries no timestamps: the
        # fan-out must skip that shard — not let its planner reject the
        # window — and stay bit-identical to the unsharded engine.
        from repro.trajectories import Trajectory

        fleet = [
            Trajectory(edges=["a", "b", "c"], timestamps=[0.0, 5.0, 10.0]),
            Trajectory(edges=["a", "b", "d"]),
            Trajectory(edges=["a", "b", "e"], timestamps=[100.0, 105.0, 110.0]),
        ]
        sharded = ShardedTrajectoryEngine.build(fleet, _config("cinct", 2))
        unsharded = TrajectoryEngine.build(fleet, _config("cinct", 1))
        assert not sharded.shards[1].timestamp_store.any_timestamped
        for window in ((0.0, 10.0), (0.0, 1e9), (50.0, 120.0)):
            assert sharded.strict_path(["a", "b"], *window) == unsharded.strict_path(
                ["a", "b"], *window
            )
        matches = sharded.strict_path(["a", "b"], 0.0, 10.0)
        assert [m.trajectory_id for m in matches] == [0]

    def test_unsharded_load_rejects_sharded_directory(self, fleet_dataset, tmp_path):
        ShardedTrajectoryEngine.build(fleet_dataset, _config("cinct", 2)).save(
            tmp_path / "fleet"
        )
        with pytest.raises(ConstructionError, match="sharded fleet"):
            TrajectoryEngine.load(tmp_path / "fleet")
        assert isinstance(load_index(tmp_path / "fleet"), ShardedTrajectoryEngine)

    def test_timestamps_route_by_global_id(self, fleet_dataset):
        engine = ShardedTrajectoryEngine.build(fleet_dataset, _config("cinct", 3))
        unsharded = TrajectoryEngine.build(fleet_dataset, _config("cinct", 1))
        assert engine.timestamps == unsharded.timestamps
        for global_id in (0, 5, len(fleet_dataset.trajectories) - 1):
            assert engine.timestamps_of(global_id) == unsharded.timestamps_of(global_id)
        assert engine.timestamps_of(10_000) is None

    def test_growth_capable_fleet_starts_empty(self, growth_batch):
        engine = ShardedTrajectoryEngine.build([], _config("partitioned-cinct", 3))
        assert engine.n_trajectories == 0
        engine.add_batch(growth_batch)
        unsharded = TrajectoryEngine.build(
            growth_batch, _config("partitioned-cinct", 1)
        )
        probe = list(growth_batch[0].edges[:2])
        assert engine.count(probe) == unsharded.count(probe)
        assert engine.locate(probe) == unsharded.locate(probe)

    def test_consolidate_every_shard(self, fleet_dataset, growth_batch):
        engine = ShardedTrajectoryEngine.build(
            fleet_dataset, _config("partitioned-cinct", 3)
        )
        engine.add_batch(growth_batch)
        assert engine.n_partitions == 6  # two batches landed on every shard
        engine.consolidate()
        assert engine.n_partitions == 3
        unsharded = TrajectoryEngine.build(
            list(fleet_dataset.trajectories) + list(growth_batch),
            _config("partitioned-cinct", 1),
        )
        assert_query_parity(engine, unsharded, fleet_dataset, seed=29)
