"""Process-per-shard execution: worker pool lifecycle, faults and parity.

The contract under test: with ``EngineConfig.shard_executor="processes"`` a
sharded fleet answers every query bit-identically to the thread and serial
executors — including degraded merges under injected worker crashes, growth
(epoch-lazy engine sync over the pipe), and reload — while worker death is a
*retryable* fan-out failure: a crashed or hung worker is killed, respawned,
and the attempt history names the dead worker's pid.  ``close()`` (and
interpreter exit) reap the pool; nothing is orphaned.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    CountQuery,
    EngineConfig,
    ShardedTrajectoryEngine,
    TrajectoryEngine,
    WorkerCrashError,
    build_engine,
    sample_paths,
)
from repro.engine.workers import START_METHOD_ENV
from repro.exceptions import ShardExecutionError
from repro.io import load_index
from repro.network import grid_network
from repro.reliability import faults
from repro.trajectories import TrajectoryDataset, straight_biased_walks


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


@pytest.fixture(scope="module")
def fleet_dataset():
    network = grid_network(5, 5)
    rng = np.random.default_rng(61)
    trajectories = straight_biased_walks(
        network, n_trajectories=18, min_length=5, max_length=12, rng=rng
    )
    for trajectory in trajectories:
        departure = float(rng.uniform(0, 300))
        dwell = rng.uniform(4, 16, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return TrajectoryDataset(
        name="worker-fleet", trajectories=trajectories, network=network
    )


@pytest.fixture(scope="module")
def growth_batch(fleet_dataset):
    network = fleet_dataset.network
    rng = np.random.default_rng(63)
    trajectories = straight_biased_walks(
        network, n_trajectories=4, min_length=4, max_length=9, rng=rng
    )
    for trajectory in trajectories:
        trajectory.timestamps = list(
            float(rng.uniform(400, 600)) + np.arange(len(trajectory.edges)) * 5.0
        )
    return trajectories


@pytest.fixture(scope="module")
def probe_path(fleet_dataset):
    """A single-edge path present on *every* shard of a 3-shard fleet."""
    per_shard: dict[int, set] = {0: set(), 1: set(), 2: set()}
    for trajectory_id, trajectory in enumerate(fleet_dataset.trajectories):
        per_shard[trajectory_id % 3].update(trajectory.edges)
    common = per_shard[0] & per_shard[1] & per_shard[2]
    assert common, "fixture dataset must share an edge across all shards"
    return [sorted(common)[0]]


def _fleet(fleet_dataset, backend="cinct", **overrides):
    config = EngineConfig(
        backend=backend,
        num_shards=3,
        cache_size=0,
        shard_executor="processes",
        **overrides,
    )
    return build_engine(fleet_dataset, config)


def _worker_pids(engine) -> dict[int, int]:
    return {
        row["shard"]: row["pid"]
        for row in engine.executor_info()["workers"]
        if row["pid"] is not None
    }


# --------------------------------------------------------------------------- #
# executor parity
# --------------------------------------------------------------------------- #
def test_all_executors_answer_bit_identically(fleet_dataset):
    engines = {
        mode: build_engine(
            fleet_dataset,
            EngineConfig(
                backend="cinct", num_shards=3, cache_size=0, shard_executor=mode
            ),
        )
        for mode in ("serial", "threads", "processes")
    }
    paths = sample_paths(fleet_dataset, 2, 6, seed=31)
    reference = engines["serial"].count_many(paths)
    for mode, engine in engines.items():
        assert engine.executor_info()["mode"] == mode
        assert engine.count_many(paths) == reference
        for path in paths[:3]:
            assert engine.locate(path) == engines["serial"].locate(path)
        engine.close()


def test_configure_executor_swaps_strategy_in_place(fleet_dataset, probe_path):
    engine = _fleet(fleet_dataset)
    with_processes = engine.count(probe_path)
    assert _worker_pids(engine)  # workers actually forked
    engine.configure_executor("threads")
    assert engine.executor_info()["mode"] == "threads"
    assert engine.executor_info()["workers"] == []  # pool reaped on swap
    assert engine.count(probe_path) == with_processes
    engine.configure_executor("processes")
    assert engine.count(probe_path) == with_processes
    engine.close()


def test_workers_are_reused_across_batches(fleet_dataset, probe_path):
    engine = _fleet(fleet_dataset)
    engine.count(probe_path)
    pids = _worker_pids(engine)
    for _ in range(3):
        engine.count(probe_path)
    assert _worker_pids(engine) == pids  # persistent pool, not per-batch forks
    assert all(row["restarts"] == 0 for row in engine.executor_info()["workers"])
    engine.close()


def test_growth_syncs_workers_and_stays_bit_identical(
    fleet_dataset, growth_batch, tmp_path
):
    engine = _fleet(fleet_dataset, backend="partitioned-cinct")
    unsharded = TrajectoryEngine.build(
        fleet_dataset, EngineConfig(backend="partitioned-cinct", cache_size=0)
    )
    paths = sample_paths(fleet_dataset, 3, 6, seed=33)
    assert engine.count_many(paths) == unsharded.count_many(paths)  # fork pool
    engine.add_batch(growth_batch)
    unsharded.add_batch(growth_batch)
    # The grown engines are shipped to the (already forked) workers lazily,
    # on the next dispatch; answers must include the new trajectories.
    assert engine.count_many(paths) == unsharded.count_many(paths)
    probe = list(growth_batch[0].edges[:2])
    assert engine.locate(probe) == unsharded.locate(probe)
    engine.consolidate()
    unsharded.consolidate()
    assert engine.count_many(paths) == unsharded.count_many(paths)
    # ...and the reloaded fleet keeps the configured executor.
    engine.save(tmp_path / "grown")
    engine.close()
    reloaded = load_index(tmp_path / "grown")
    assert reloaded.config.shard_executor == "processes"
    assert reloaded.count_many(paths) == unsharded.count_many(paths)
    reloaded.close()


# --------------------------------------------------------------------------- #
# worker death is retryable
# --------------------------------------------------------------------------- #
def test_worker_crash_respawns_and_retry_recovers(fleet_dataset, probe_path):
    engine = _fleet(fleet_dataset, shard_retries=2)
    reference = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    assert engine.count(probe_path) == reference.count(probe_path)  # fork pool
    pids = _worker_pids(engine)
    with faults.shard_fault(1, "worker_crash", times=1):
        assert engine.count(probe_path) == reference.count(probe_path)
    after = _worker_pids(engine)
    assert after[1] != pids[1]  # shard 1 got a fresh process...
    assert after[0] == pids[0] and after[2] == pids[2]  # ...its peers did not
    rows = {row["shard"]: row for row in engine.executor_info()["workers"]}
    assert rows[1]["restarts"] == 1
    assert engine.health()["shards"][1]["worker"]["restarts"] == 1
    engine.close()


def test_worker_crash_without_retry_names_shard_and_pid(fleet_dataset, probe_path):
    engine = _fleet(fleet_dataset)
    engine.count(probe_path)
    pid = _worker_pids(engine)[1]
    with faults.shard_fault(1, "worker_crash"):
        with pytest.raises(ShardExecutionError) as excinfo:
            engine.count(probe_path)
    error = excinfo.value
    assert error.shard_id == 1
    assert "shard 1" in str(error)
    assert f"pid {pid}" in str(error)
    assert "WorkerCrashError" in error.attempts[0].error
    engine.close()


def test_worker_crash_degraded_merge_matches_surviving_shards(
    fleet_dataset, probe_path
):
    engine = _fleet(fleet_dataset, degraded_results=True)
    serial = build_engine(
        fleet_dataset,
        EngineConfig(
            backend="cinct", num_shards=3, cache_size=0, shard_executor="serial"
        ),
    )
    expected = sum(
        shard.count(probe_path)
        for shard_id, shard in enumerate(serial.shards)
        if shard_id != 1 and shard is not None
    )
    engine.count(probe_path)  # fork pool
    with faults.shard_fault(1, "worker_crash"):
        result = engine.run_many([CountQuery(tuple(probe_path))])[0]
    assert result.degraded is True
    assert result.failed_shards == (1,)
    assert result.count == expected
    # The respawned worker serves the very next batch at full strength.
    healthy = engine.run_many([CountQuery(tuple(probe_path))])[0]
    assert healthy.degraded is False
    engine.close()


def test_hung_worker_killed_within_deadline(fleet_dataset, probe_path):
    engine = _fleet(fleet_dataset, shard_deadline=0.4, degraded_results=True)
    engine.count(probe_path)  # fork pool
    pid = _worker_pids(engine)[1]
    with faults.shard_fault(1, "hang", delay_ms=30_000):
        started = time.perf_counter()
        result = engine.run_many([CountQuery(tuple(probe_path))])[0]
        elapsed = time.perf_counter() - started
    assert result.degraded is True
    assert result.failed_shards == (1,)
    assert elapsed < 5.0  # bounded by the deadline, not the 30 s hang
    assert _worker_pids(engine)[1] != pid  # the hung process was killed
    engine.close()


def test_env_driven_worker_crash(fleet_dataset, probe_path, monkeypatch):
    engine = _fleet(fleet_dataset, shard_retries=2)
    reference = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    engine.count(probe_path)
    monkeypatch.setenv("REPRO_SHARD_FAULT", "1:worker_crash:0:1")
    faults.reload_env()
    assert engine.count(probe_path) == reference.count(probe_path)
    rows = {row["shard"]: row for row in engine.executor_info()["workers"]}
    assert rows[1]["restarts"] == 1
    engine.close()


# --------------------------------------------------------------------------- #
# pool lifecycle
# --------------------------------------------------------------------------- #
def test_close_reaps_workers_and_engine_stays_queryable(fleet_dataset, probe_path):
    engine = _fleet(fleet_dataset)
    before = engine.count(probe_path)
    pids = list(_worker_pids(engine).values())
    assert pids
    engine.close()
    for pid in pids:
        _assert_pid_gone(pid)
    assert engine.executor_info()["workers"] == []
    # Still queryable after close (a fresh pool forks on demand).
    assert engine.count(probe_path) == before
    engine.close()


def test_interpreter_exit_leaves_no_orphans(fleet_dataset, probe_path, tmp_path):
    """A process that never calls ``close()`` must not leak shard workers."""
    engine = _fleet(fleet_dataset)
    engine.save(tmp_path / "fleet")
    engine.close()
    probe_file = tmp_path / "probe.pickle"
    probe_file.write_bytes(pickle.dumps(list(probe_path)))
    script = textwrap.dedent(
        """
        import pickle
        import sys
        from repro.io import load_index

        engine = load_index(sys.argv[1], mmap=True)
        probe = pickle.loads(open(sys.argv[2], "rb").read())
        engine.count(probe)  # forks the worker pool
        pids = [row["pid"] for row in engine.executor_info()["workers"]]
        assert pids, "the probe must actually fan out"
        print(" ".join(str(pid) for pid in pids))
        # exit WITHOUT engine.close(): the exit-time finalizer must reap.
        """
    )
    completed = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path / "fleet"), str(probe_file)],
        capture_output=True,
        text=True,
        timeout=120,
        env={**os.environ, "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
    )
    assert completed.returncode == 0, completed.stderr
    pids = [int(token) for token in completed.stdout.split()]
    assert pids
    for pid in pids:
        _assert_pid_gone(pid)


def _assert_pid_gone(pid: int, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.05)
    raise AssertionError(f"worker pid {pid} is still alive")


# --------------------------------------------------------------------------- #
# start methods
# --------------------------------------------------------------------------- #
def test_spawn_start_method_parity(fleet_dataset, probe_path, monkeypatch):
    """The pool works under ``spawn`` too (engines pickled to fresh children)."""
    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    engine = _fleet(fleet_dataset)
    reference = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    try:
        assert engine.count(probe_path) == reference.count(probe_path)
        paths = sample_paths(fleet_dataset, 2, 4, seed=35)
        assert engine.count_many(paths) == reference.count_many(paths)
        assert all(row["alive"] for row in engine.executor_info()["workers"])
    finally:
        engine.close()


def test_invalid_start_method_rejected(monkeypatch):
    from repro.engine import workers

    monkeypatch.setenv(START_METHOD_ENV, "bogus-method")
    with pytest.raises(ValueError):
        workers._resolve_context()


# --------------------------------------------------------------------------- #
# observability
# --------------------------------------------------------------------------- #
def test_stats_and_health_report_worker_rows(fleet_dataset, probe_path):
    engine = _fleet(fleet_dataset)
    # Before any fan-out the executor exists but has forked nothing.
    info = engine.executor_info()
    assert info["mode"] == "processes"
    assert info["workers"] == []
    engine.count(probe_path)
    stats = engine.stats()
    executor = stats["executor"]
    assert executor["mode"] == "processes"
    assert executor["started"] is True
    rows = {row["shard"]: row for row in executor["workers"]}
    assert rows, "fan-out must have forked shard workers"
    for row in rows.values():
        assert row["alive"] is True
        assert isinstance(row["pid"], int)
        assert row["restarts"] == 0
    health = engine.health()
    assert health["executor"] == "processes"
    for shard_id, shard_row in enumerate(health["shards"]):
        worker = shard_row["worker"]
        if worker is not None:
            assert worker["pid"] == rows[shard_id]["pid"]
    engine.close()


def test_unsharded_engine_reports_inline_executor(fleet_dataset):
    engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    assert engine.stats()["executor"]["mode"] == "inline"
    assert engine.health()["executor"] == "inline"


def test_worker_crash_error_is_exported():
    error = WorkerCrashError(2, 1234, 17)
    assert error.shard_id == 2
    assert error.pid == 1234
    assert "pid 1234" in str(error)
    assert isinstance(error, Exception)


def test_sharded_engine_pickles_for_spawn(fleet_dataset, probe_path):
    """Every shard engine must survive the pickle trip a spawn pool takes."""
    engine = ShardedTrajectoryEngine.build(
        fleet_dataset,
        EngineConfig(backend="cinct", num_shards=3, shard_executor="processes"),
    )
    for shard in engine.shards:
        if shard is None:
            continue
        clone = pickle.loads(pickle.dumps(shard))
        # probe_path is present on every shard, so every clone must agree.
        assert clone.count(probe_path) == shard.count(probe_path)
        assert clone.locate(probe_path) == shard.locate(probe_path)
    engine.close()
