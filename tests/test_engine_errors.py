"""Error normalization: identical exception types and messages everywhere.

Empty patterns, unknown road segments and queries on empty indexes must raise
the same :class:`~repro.exceptions.QueryError` / AlphabetError with the
canonical messages of :mod:`repro.exceptions`, both through the engine facade
(for every registered backend) and through the individual index classes.
"""

from __future__ import annotations

import pytest

from repro.core import CiNCT, PartitionedCiNCT
from repro.engine import (
    EngineConfig,
    TrajectoryEngine,
    available_backends,
    backend_spec,
    build_engine,
)
from repro.exceptions import (
    EMPTY_INDEX_MESSAGE,
    EMPTY_PATH_MESSAGE,
    EMPTY_PATTERN_MESSAGE,
    AlphabetError,
    ConstructionError,
    QueryError,
    symbol_out_of_range_message,
    unknown_segment_message,
)
from repro.fmindex import LinearScanIndex, UncompressedFMIndex

BACKENDS = available_backends()
TRAJECTORIES = [["A", "B", "E", "F"], ["A", "B", "C"], ["B", "C"], ["A", "D"]]


@pytest.fixture(scope="module")
def engines():
    return {
        name: TrajectoryEngine.build(
            TRAJECTORIES, EngineConfig(backend=name, block_size=15, sa_sample_rate=4)
        )
        for name in BACKENDS
    }


@pytest.mark.parametrize("backend", BACKENDS)
class TestEngineNormalization:
    def test_empty_path_raises_canonical_query_error(self, engines, backend):
        engine = engines[backend]
        for method in (engine.count, engine.contains, engine.locate, engine.strict_path):
            with pytest.raises(QueryError, match=EMPTY_PATH_MESSAGE):
                method([])

    def test_unknown_segment_raises_canonical_alphabet_error(self, engines, backend):
        engine = engines[backend]
        expected = unknown_segment_message("ZZ")
        for method in (engine.count, engine.contains, engine.locate, engine.strict_path):
            with pytest.raises(AlphabetError) as excinfo:
                method(["A", "ZZ"])
            assert str(excinfo.value) == expected

    def test_half_open_time_window_rejected(self, engines, backend):
        engine = engines[backend]
        with pytest.raises(QueryError, match="both t_start and t_end"):
            engine.strict_path(["A", "B"], t_start=0.0)

    def test_window_without_timestamps_rejected(self, engines, backend):
        engine = engines[backend]
        with pytest.raises(QueryError, match="no timestamps"):
            engine.strict_path(["A", "B"], 0.0, 1.0)

    def test_extract_capability_is_enforced(self, engines, backend):
        engine = engines[backend]
        if backend_spec(backend).supports_extract:
            assert len(engine.extract(0, 2)) == 2
        else:
            with pytest.raises(QueryError, match="not supported"):
                engine.extract(0, 2)

    def test_building_from_zero_trajectories(self, backend):
        config = EngineConfig(backend=backend, block_size=15)
        if backend_spec(backend).supports_growth:
            engine = TrajectoryEngine.build([], config)
            with pytest.raises(QueryError, match=EMPTY_INDEX_MESSAGE):
                engine.count(["A"])
        else:
            with pytest.raises(ConstructionError, match="zero trajectories"):
                TrajectoryEngine.build([], config)

    def test_growth_capability_is_enforced(self, engines, backend):
        engine = engines[backend]
        if backend_spec(backend).supports_growth:
            assert engine.n_partitions >= 1
        else:
            assert engine.n_partitions == 1
            with pytest.raises(ConstructionError, match="immutable once built"):
                engine.add_batch([["A", "B"]])
            with pytest.raises(ConstructionError, match="monolithic"):
                engine.consolidate()

    def test_decreasing_timestamps_rejected(self, backend):
        from repro.trajectories import Trajectory

        bad = [Trajectory(edges=["A", "B", "C"], timestamps=[10.0, 5.0, 0.0])]
        with pytest.raises(ConstructionError, match="decreasing timestamps"):
            TrajectoryEngine.build(bad, EngineConfig(backend=backend, block_size=15))


class TestShardedNormalization(TestEngineNormalization):
    """A sharded fleet raises the identical canonical errors.

    Inherits every normalization case of :class:`TestEngineNormalization`
    and runs it against 3-shard fleets; the capability/growth/zero cases
    whose expectations are shard-aware are overridden below.
    """

    @pytest.fixture(scope="class")
    def engines(self):
        return {
            name: build_engine(
                TRAJECTORIES,
                EngineConfig(backend=name, block_size=15, sa_sample_rate=4, num_shards=3),
            )
            for name in BACKENDS
        }

    def test_building_from_zero_trajectories(self, backend):
        config = EngineConfig(backend=backend, block_size=15, num_shards=3)
        if backend_spec(backend).supports_growth:
            engine = build_engine([], config)
            with pytest.raises(QueryError, match=EMPTY_INDEX_MESSAGE):
                engine.count(["A"])
        else:
            with pytest.raises(ConstructionError, match="zero trajectories"):
                build_engine([], config)

    def test_growth_capability_is_enforced(self, engines, backend):
        engine = engines[backend]
        if backend_spec(backend).supports_growth:
            assert engine.n_partitions >= 1
        else:
            # One backend partition per populated shard.
            assert engine.n_partitions == 3
            with pytest.raises(ConstructionError, match="immutable once built"):
                engine.add_batch([["A", "B"]])
            with pytest.raises(ConstructionError, match="monolithic"):
                engine.consolidate()

    def test_decreasing_timestamps_rejected(self, backend):
        from repro.trajectories import Trajectory

        bad = [
            Trajectory(edges=["A", "B"], timestamps=[0.0, 1.0]),
            Trajectory(edges=["A", "B", "C"], timestamps=[10.0, 5.0, 0.0]),
        ]
        # The message carries the *global* trajectory id, not a shard-local one.
        with pytest.raises(ConstructionError, match="trajectory 1 has decreasing"):
            build_engine(bad, EngineConfig(backend=backend, block_size=15, num_shards=3))


class TestDirectEntryPointNormalization:
    """The pre-facade entry points share the exact canonical messages."""

    def test_empty_pattern_message_is_shared(self, paper_bwt):
        indexes = [
            CiNCT(paper_bwt, block_size=15),
            UncompressedFMIndex(paper_bwt),
            LinearScanIndex(paper_bwt.text, sigma=paper_bwt.sigma),
        ]
        for index in indexes:
            with pytest.raises(QueryError, match=EMPTY_PATTERN_MESSAGE):
                index.count([])

    def test_out_of_range_symbol_message_is_shared(self, paper_bwt):
        bad_symbol = paper_bwt.sigma + 5
        expected = symbol_out_of_range_message(bad_symbol, paper_bwt.sigma)
        indexes = [
            CiNCT(paper_bwt, block_size=15),
            UncompressedFMIndex(paper_bwt),
            LinearScanIndex(paper_bwt.text, sigma=paper_bwt.sigma),
        ]
        for index in indexes:
            with pytest.raises(QueryError) as excinfo:
                index.count([bad_symbol])
            assert str(excinfo.value) == expected

    def test_partitioned_empty_index_message(self):
        partitioned = PartitionedCiNCT()
        with pytest.raises(QueryError, match=EMPTY_INDEX_MESSAGE):
            partitioned.count(["A"])

    def test_partitioned_empty_path_message(self):
        partitioned = PartitionedCiNCT()
        partitioned.add_batch(TRAJECTORIES)
        with pytest.raises(QueryError, match=EMPTY_PATH_MESSAGE):
            partitioned.count([])
