"""Shared fixtures for the test suite.

Most fixtures are session-scoped because index construction (BWT + wavelet
trees) is the expensive part; the structures themselves are immutable so
sharing them across tests is safe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CiNCT
from repro.fmindex import UncompressedFMIndex
from repro.network import grid_network
from repro.strings import build_trajectory_string, burrows_wheeler_transform
from repro.trajectories import TrajectoryDataset, straight_biased_walks

# The worked example of the paper (Fig. 1a): four NCTs on six segments A-F.
PAPER_TRAJECTORIES = [
    ["A", "B", "E", "F"],
    ["A", "B", "C"],
    ["B", "C"],
    ["A", "D"],
]


@pytest.fixture(scope="session")
def paper_trajectory_string():
    """Trajectory string of the paper's running example (Eq. 1)."""
    return build_trajectory_string(PAPER_TRAJECTORIES)


@pytest.fixture(scope="session")
def paper_bwt(paper_trajectory_string):
    """BWT of the paper's running example."""
    return burrows_wheeler_transform(
        paper_trajectory_string.text, sigma=paper_trajectory_string.sigma
    )


@pytest.fixture(scope="session")
def paper_cinct(paper_bwt):
    """CiNCT index over the paper's running example."""
    return CiNCT(paper_bwt, block_size=15)


@pytest.fixture(scope="session")
def paper_reference(paper_bwt):
    """Uncompressed reference FM-index over the paper's running example."""
    return UncompressedFMIndex(paper_bwt)


@pytest.fixture(scope="session")
def small_network():
    """A 6x6 grid road network used by network/trajectory tests."""
    return grid_network(6, 6)


@pytest.fixture(scope="session")
def medium_dataset(small_network):
    """A realistic small dataset of turn-biased walks on the grid network."""
    rng = np.random.default_rng(42)
    trajectories = straight_biased_walks(
        small_network,
        n_trajectories=40,
        min_length=6,
        max_length=20,
        rng=rng,
        straight_bias=2.5,
    )
    return TrajectoryDataset(
        name="test-grid-walks",
        trajectories=trajectories,
        network=small_network,
        description="fixture dataset",
    )


@pytest.fixture(scope="session")
def medium_trajectory_string(medium_dataset):
    """Trajectory string of the medium fixture dataset."""
    return medium_dataset.to_trajectory_string()


@pytest.fixture(scope="session")
def medium_bwt(medium_trajectory_string):
    """BWT of the medium fixture dataset."""
    return burrows_wheeler_transform(
        medium_trajectory_string.text, sigma=medium_trajectory_string.sigma
    )


@pytest.fixture(scope="session")
def medium_cinct(medium_bwt):
    """CiNCT over the medium fixture dataset (block size 31)."""
    return CiNCT(medium_bwt, block_size=31)


@pytest.fixture(scope="session")
def medium_reference(medium_bwt):
    """Reference FM-index over the medium fixture dataset."""
    return UncompressedFMIndex(medium_bwt)


@pytest.fixture(scope="session")
def rng():
    """A seeded random generator for deterministic sampling inside tests."""
    return np.random.default_rng(12345)
